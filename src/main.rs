//! `taopt-sim` — command-line front end for the TaOPT reproduction.
//!
//! ```text
//! taopt-sim run   --app Zedge --tool ape --mode duration [--instances 5]
//!                 [--minutes 60] [--seed 2025] [--event-loss 0.1]
//! taopt-sim apps                      # list the Table-3 catalog
//! taopt-sim dump  --app Zedge         # uiautomator-style XML of the hub
//! ```

use std::sync::Arc;

use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::catalog_entries;
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  taopt-sim run --app <name> [--tool monkey|ape|wctester|badge] \\\n              \
         [--mode baseline|duration|resource|paraaim|pats] [--instances N] \\\n              \
         [--minutes M] [--seed S] [--event-loss F]\n  taopt-sim apps\n  taopt-sim dump --app <name>"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn find_app(name: &str) -> Arc<taopt_app_sim::App> {
    let entry = catalog_entries()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown app `{name}`; run `taopt-sim apps` for the catalog");
            std::process::exit(2);
        });
    Arc::new(entry.generate())
}

fn cmd_apps() {
    println!(
        "{:<20} {:<10} {:<18} {:<8} login",
        "App", "Version", "Category", "Installs"
    );
    for e in catalog_entries() {
        println!(
            "{:<20} {:<10} {:<18} {:<8} {}",
            e.name,
            e.version,
            e.category,
            e.downloads,
            if e.login { "yes" } else { "no" }
        );
    }
}

fn cmd_dump(args: &[String]) {
    let name = flag(args, "--app").unwrap_or_else(|| usage());
    let app = find_app(&name);
    let hub = app.start_screen();
    print!("{}", taopt_ui_model::to_xml(&app.render_screen(hub, 0)));
}

fn cmd_run(args: &[String]) {
    let name = flag(args, "--app").unwrap_or_else(|| usage());
    let app = find_app(&name);
    let tool = match flag(args, "--tool").as_deref().unwrap_or("ape") {
        "monkey" => ToolKind::Monkey,
        "ape" => ToolKind::Ape,
        "wctester" => ToolKind::WcTester,
        "badge" => ToolKind::Badge,
        other => {
            eprintln!("unknown tool `{other}`");
            usage()
        }
    };
    let mode = match flag(args, "--mode").as_deref().unwrap_or("duration") {
        "baseline" => RunMode::Baseline,
        "duration" => RunMode::TaoptDuration,
        "resource" => RunMode::TaoptResource,
        "paraaim" => RunMode::ActivityPartition,
        "pats" => RunMode::PatsMasterSlave,
        other => {
            eprintln!("unknown mode `{other}`");
            usage()
        }
    };
    let mut cfg = SessionConfig::new(tool, mode);
    if let Some(n) = flag(args, "--instances").and_then(|v| v.parse().ok()) {
        cfg.instances = n;
    }
    if let Some(m) = flag(args, "--minutes").and_then(|v| v.parse().ok()) {
        cfg.duration = VirtualDuration::from_mins(m);
    }
    if let Some(s) = flag(args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }
    if let Some(f) = flag(args, "--event-loss").and_then(|v| v.parse().ok()) {
        cfg.emulator.event_loss = f;
    }

    eprintln!(
        "running {} on {} — {} x {} instances, {} virtual, seed {}",
        tool.name(),
        app.name(),
        mode.label(),
        cfg.instances,
        cfg.duration,
        cfg.seed
    );
    let t0 = std::time::Instant::now();
    let r = ParallelSession::run(Arc::clone(&app), &cfg);
    eprintln!(
        "(simulated in {:.2}s real time)",
        t0.elapsed().as_secs_f64()
    );

    println!(
        "coverage: {} / {} methods ({:.1}%)",
        r.union_coverage(),
        app.method_count(),
        100.0 * r.union_coverage() as f64 / app.method_count() as f64
    );
    println!(
        "machine time: {}  wall clock: {}  instances: {} (peak {})",
        r.machine_time,
        r.wall_clock,
        r.instances.len(),
        r.peak_concurrency()
    );
    let confirmed: Vec<_> = r.subspaces.iter().filter(|s| s.confirmed).collect();
    if !confirmed.is_empty() {
        println!("subspaces dedicated: {}", confirmed.len());
        for s in confirmed.iter().take(10) {
            println!(
                "  {} — {} screens via {:?} (owner {:?})",
                s.id,
                s.screens.len(),
                s.entrypoints
                    .first()
                    .map(|e| e.widget_rid.as_str())
                    .unwrap_or("?"),
                s.owner
            );
        }
    }
    let triage = r.triage_report();
    if triage.unique_count() > 0 {
        println!("\n{}", triage.render(app.name()));
    } else {
        println!("no crashes observed");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("apps") => cmd_apps(),
        Some("dump") => cmd_dump(&args[1..]),
        _ => usage(),
    }
}
