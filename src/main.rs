//! `taopt-sim` — command-line front end for the TaOPT reproduction.
//!
//! ```text
//! taopt-sim run   --app Zedge --tool ape --mode duration [--instances 5]
//!                 [--minutes 60] [--seed 2025] [--event-loss 0.1]
//! taopt-sim apps                      # list the Table-3 catalog
//! taopt-sim dump  --app Zedge         # uiautomator-style XML of the hub
//!
//! taopt-sim serve   --dir /var/lib/taopt [--addr 127.0.0.1:7070]
//!                   [--capacity N] [--workers W] [--recover]
//! taopt-sim submit  --addr HOST:PORT (--spec FILE | --app NAME
//!                   [--tool T] [--mode M] [--seed S] [--scale quick|paper])
//!                   [--priority P] [--wait]
//! taopt-sim status  --addr HOST:PORT --id N
//! taopt-sim migrate --from HOST:PORT --to HOST:PORT --id N
//! ```

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use taopt::experiments::ExperimentScale;
use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::catalog_entries;
use taopt_server::{migrate, serve, Client, ServerConfig};
use taopt_service::{AppSource, AppSpec, CampaignId, CampaignService, CampaignSpec, ServiceConfig};
use taopt_tools::ToolKind;
use taopt_ui_model::json::Value;
use taopt_ui_model::VirtualDuration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  taopt-sim run --app <name> [--tool monkey|ape|wctester|badge] \\\n              \
         [--mode baseline|duration|resource|paraaim|pats] [--instances N] \\\n              \
         [--minutes M] [--seed S] [--event-loss F]\n  taopt-sim apps\n  taopt-sim dump --app <name>\n  \
         taopt-sim serve --dir <dir> [--addr 127.0.0.1:7070] [--capacity N] \\\n              \
         [--workers W] [--recover]\n  \
         taopt-sim submit --addr <host:port> (--spec <file> | --app <name> [--tool T] \\\n              \
         [--mode M] [--seed S] [--scale quick|paper]) [--priority P] [--wait]\n  \
         taopt-sim status --addr <host:port> --id <n>\n  \
         taopt-sim migrate --from <host:port> --to <host:port> --id <n>"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn find_app(name: &str) -> Arc<taopt_app_sim::App> {
    let entry = catalog_entries()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown app `{name}`; run `taopt-sim apps` for the catalog");
            std::process::exit(2);
        });
    Arc::new(entry.generate())
}

fn cmd_apps() {
    println!(
        "{:<20} {:<10} {:<18} {:<8} login",
        "App", "Version", "Category", "Installs"
    );
    for e in catalog_entries() {
        println!(
            "{:<20} {:<10} {:<18} {:<8} {}",
            e.name,
            e.version,
            e.category,
            e.downloads,
            if e.login { "yes" } else { "no" }
        );
    }
}

fn cmd_dump(args: &[String]) {
    let name = flag(args, "--app").unwrap_or_else(|| usage());
    let app = find_app(&name);
    let hub = app.start_screen();
    print!("{}", taopt_ui_model::to_xml(&app.render_screen(hub, 0)));
}

fn cmd_run(args: &[String]) {
    let name = flag(args, "--app").unwrap_or_else(|| usage());
    let app = find_app(&name);
    let tool = parse_tool(flag(args, "--tool").as_deref().unwrap_or("ape"));
    let mode = parse_mode(flag(args, "--mode").as_deref().unwrap_or("duration"));
    let mut cfg = SessionConfig::new(tool, mode);
    if let Some(n) = flag(args, "--instances").and_then(|v| v.parse().ok()) {
        cfg.instances = n;
    }
    if let Some(m) = flag(args, "--minutes").and_then(|v| v.parse().ok()) {
        cfg.duration = VirtualDuration::from_mins(m);
    }
    if let Some(s) = flag(args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }
    if let Some(f) = flag(args, "--event-loss").and_then(|v| v.parse().ok()) {
        cfg.emulator.event_loss = f;
    }

    eprintln!(
        "running {} on {} — {} x {} instances, {} virtual, seed {}",
        tool.name(),
        app.name(),
        mode.label(),
        cfg.instances,
        cfg.duration,
        cfg.seed
    );
    let t0 = std::time::Instant::now();
    let r = ParallelSession::run(Arc::clone(&app), &cfg);
    eprintln!(
        "(simulated in {:.2}s real time)",
        t0.elapsed().as_secs_f64()
    );

    println!(
        "coverage: {} / {} methods ({:.1}%)",
        r.union_coverage(),
        app.method_count(),
        100.0 * r.union_coverage() as f64 / app.method_count() as f64
    );
    println!(
        "machine time: {}  wall clock: {}  instances: {} (peak {})",
        r.machine_time,
        r.wall_clock,
        r.instances.len(),
        r.peak_concurrency()
    );
    let confirmed: Vec<_> = r.subspaces.iter().filter(|s| s.confirmed).collect();
    if !confirmed.is_empty() {
        println!("subspaces dedicated: {}", confirmed.len());
        for s in confirmed.iter().take(10) {
            println!(
                "  {} — {} screens via {:?} (owner {:?})",
                s.id,
                s.screens.len(),
                s.entrypoints
                    .first()
                    .map(|e| e.widget_rid.as_str())
                    .unwrap_or("?"),
                s.owner
            );
        }
    }
    let triage = r.triage_report();
    if triage.unique_count() > 0 {
        println!("\n{}", triage.render(app.name()));
    } else {
        println!("no crashes observed");
    }
}

/// Resolves `--<name> host:port` into a socket address or exits.
fn addr_flag(args: &[String], name: &str) -> SocketAddr {
    let raw = flag(args, name).unwrap_or_else(|| usage());
    raw.to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve address `{raw}`");
            std::process::exit(2);
        })
}

fn id_flag(args: &[String]) -> CampaignId {
    CampaignId(
        flag(args, "--id")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage()),
    )
}

fn parse_tool(s: &str) -> ToolKind {
    match s {
        "monkey" => ToolKind::Monkey,
        "ape" => ToolKind::Ape,
        "wctester" => ToolKind::WcTester,
        "badge" => ToolKind::Badge,
        other => {
            eprintln!("unknown tool `{other}`");
            usage()
        }
    }
}

fn parse_mode(s: &str) -> RunMode {
    match s {
        "baseline" => RunMode::Baseline,
        "duration" => RunMode::TaoptDuration,
        "resource" => RunMode::TaoptResource,
        "paraaim" => RunMode::ActivityPartition,
        "pats" => RunMode::PatsMasterSlave,
        other => {
            eprintln!("unknown mode `{other}`");
            usage()
        }
    }
}

/// `serve`: start (or recover) a campaign service and put it on the
/// network; blocks until killed.
fn cmd_serve(args: &[String]) {
    let dir = flag(args, "--dir").unwrap_or_else(|| usage());
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_owned());
    let mut config = ServiceConfig::new(dir);
    if let Some(c) = flag(args, "--capacity").and_then(|v| v.parse().ok()) {
        config.farm_capacity = c;
    }
    if let Some(e) = flag(args, "--checkpoint-every").and_then(|v| v.parse().ok()) {
        config.checkpoint_every = e;
    }
    let service = if args.iter().any(|a| a == "--recover") {
        match CampaignService::recover(config) {
            Ok((service, report)) => {
                eprintln!(
                    "recovered {} campaigns ({} unreadable checkpoints left on disk)",
                    report.resumed.len(),
                    report.rejected.len()
                );
                service
            }
            Err(e) => {
                eprintln!("cannot recover service: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match CampaignService::start(config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot start service: {e}");
                std::process::exit(1);
            }
        }
    };
    let mut server_config = ServerConfig::new(addr);
    if let Some(w) = flag(args, "--workers").and_then(|v| v.parse().ok()) {
        server_config.workers = w;
    }
    let handle = match serve(service, server_config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind server: {e}");
            std::process::exit(1);
        }
    };
    println!("taopt-server listening on {}", handle.addr());
    loop {
        std::thread::park();
    }
}

/// `submit`: send a campaign spec (from a JSON file or assembled from
/// flags) to a shard over the wire.
fn cmd_submit(args: &[String]) {
    let client = Client::new(addr_flag(args, "--addr"));
    let spec = if let Some(path) = flag(args, "--spec") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let value = Value::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path} is not json: {e}");
            std::process::exit(1);
        });
        CampaignSpec::from_value(&value).unwrap_or_else(|e| {
            eprintln!("{path} is not a campaign spec: {e}");
            std::process::exit(1);
        })
    } else {
        let app = flag(args, "--app").unwrap_or_else(|| usage());
        let tool = parse_tool(flag(args, "--tool").as_deref().unwrap_or("ape"));
        let mode = parse_mode(flag(args, "--mode").as_deref().unwrap_or("duration"));
        let seed = flag(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(2025);
        let scale = match flag(args, "--scale").as_deref().unwrap_or("quick") {
            "paper" => ExperimentScale::paper(),
            _ => ExperimentScale::quick(),
        };
        CampaignSpec::new(
            app.clone(),
            vec![AppSpec {
                source: AppSource::Catalog(app),
                tool,
                mode,
                seed,
            }],
            scale,
        )
    };
    let priority = flag(args, "--priority")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    match client.submit(&spec, priority) {
        Ok(id) => {
            println!("submitted campaign {} at priority {priority}", id.0);
            if args.iter().any(|a| a == "--wait") {
                match client.wait(id, Duration::from_secs(24 * 3600)) {
                    Ok(status) => {
                        eprintln!("campaign {} finished: {status:?}", id.0);
                        if let Ok(report) = client.result(id) {
                            println!("{report}");
                        }
                    }
                    Err(e) => {
                        eprintln!("wait failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `status`: one status probe over the wire.
fn cmd_status(args: &[String]) {
    let client = Client::new(addr_flag(args, "--addr"));
    match client.status(id_flag(args)) {
        Ok(status) => println!("{status:?}"),
        Err(e) => {
            eprintln!("status failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `migrate`: move a campaign's checkpoint from one shard to another.
fn cmd_migrate(args: &[String]) {
    let from = Client::new(addr_flag(args, "--from"));
    let to = Client::new(addr_flag(args, "--to"));
    let id = id_flag(args);
    match migrate(&from, &to, id) {
        Ok(new_id) => println!(
            "migrated campaign {} from {} to {} (new id {})",
            id.0,
            from.addr(),
            to.addr(),
            new_id.0
        ),
        Err(e) => {
            eprintln!("migrate failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("apps") => cmd_apps(),
        Some("dump") => cmd_dump(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        _ => usage(),
    }
}
