//! Facade crate for the TaOPT reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`)
//! have a single import root. See `README.md` for the project overview
//! and `DESIGN.md` for the system inventory.
//!
//! * [`ui_model`] — widget hierarchies, actions, abstraction, similarity,
//!   transition graphs, traces;
//! * [`app_sim`] — synthetic GS-LD apps, the app runtime and the 18-app
//!   catalog;
//! * [`device`] — emulators, device farm, coverage tracer, logcat;
//! * [`tools`] — Monkey, Ape and WCTester reimplementations;
//! * [`toller`] — monitoring + entrypoint-enforcement shim;
//! * [`core`] — TaOPT itself: `FindSpace`, the online analyzer, the test
//!   coordinator, sessions, metrics and experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use taopt as core;
pub use taopt_app_sim as app_sim;
pub use taopt_device as device;
pub use taopt_toller as toller;
pub use taopt_tools as tools;
pub use taopt_ui_model as ui_model;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_line_up() {
        // A compile-time smoke test that the key types are reachable
        // through the facade.
        fn assert_exists<T>() {}
        assert_exists::<crate::core::session::SessionConfig>();
        assert_exists::<crate::app_sim::App>();
        assert_exists::<crate::device::Emulator>();
        assert_exists::<crate::toller::InstrumentedInstance>();
        assert_exists::<crate::ui_model::UiHierarchy>();
    }
}
