//! Campaign runtime integration tests: determinism under parallelism,
//! shared-farm safety, device-loss recovery and serial parity.

use std::sync::Arc;

use taopt::campaign::{run_campaign, CampaignApp, CampaignConfig, KillEvent};
use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn small_app(name: &str, seed: u64) -> Arc<App> {
    Arc::new(generate_app(&GeneratorConfig::small(name, seed)).unwrap())
}

fn quick_config(tool: ToolKind, mode: RunMode, seed: u64) -> SessionConfig {
    let mut c = SessionConfig::new(tool, mode);
    c.instances = 3;
    c.duration = VirtualDuration::from_mins(8);
    c.tick = VirtualDuration::from_secs(10);
    c.seed = seed;
    c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    c
}

/// A mixed-mode five-app catalog (the shapes the paper evaluates).
fn catalog() -> Vec<CampaignApp> {
    let specs = [
        ("alpha", 11, ToolKind::Monkey, RunMode::TaoptDuration),
        ("bravo", 22, ToolKind::Ape, RunMode::TaoptDuration),
        ("charlie", 33, ToolKind::Monkey, RunMode::TaoptResource),
        ("delta", 44, ToolKind::WcTester, RunMode::Baseline),
        ("echo", 55, ToolKind::Ape, RunMode::TaoptDuration),
    ];
    specs
        .iter()
        .map(|(name, seed, tool, mode)| {
            let mut config = quick_config(*tool, *mode, *seed);
            if *mode == RunMode::TaoptResource {
                config.machine_budget = Some(VirtualDuration::from_mins(12));
            }
            CampaignApp {
                name: (*name).to_owned(),
                app: small_app(name, *seed),
                config,
            }
        })
        .collect()
}

#[test]
fn campaign_is_deterministic_across_worker_counts() {
    // The headline correctness property: the coverage report — every
    // per-app, per-instance, per-round observable — is byte-identical no
    // matter how many workers advance the steps. Contended capacity (7 of
    // 15 wanted devices) exercises the lease rotation too.
    let reports: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let config = CampaignConfig {
                workers,
                capacity: Some(7),
                ..CampaignConfig::default()
            };
            run_campaign(catalog(), &config).coverage_report()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "1-worker and 2-worker campaigns diverged"
    );
    assert_eq!(
        reports[0], reports[2],
        "1-worker and 4-worker campaigns diverged"
    );
}

#[test]
fn campaign_is_deterministic_across_host_budgets() {
    // The compute-pool counterpart of the worker-count law: the host
    // thread budget decides only how fast rounds advance, never what
    // they compute. Reports are byte-identical across budgets, with and
    // without the legacy scoped-thread path, at fixed logical workers.
    let reference = {
        let config = CampaignConfig {
            workers: 2,
            host_threads: 1,
            capacity: Some(7),
            ..CampaignConfig::default()
        };
        run_campaign(catalog(), &config).coverage_report()
    };
    for host_threads in [2usize, 4, 8] {
        let config = CampaignConfig {
            workers: 2,
            host_threads,
            capacity: Some(7),
            ..CampaignConfig::default()
        };
        let report = run_campaign(catalog(), &config).coverage_report();
        assert_eq!(
            reference, report,
            "host_threads={host_threads} diverged from host_threads=1"
        );
    }
    let scoped = {
        let config = CampaignConfig {
            workers: 2,
            scoped_threads: true,
            capacity: Some(7),
            ..CampaignConfig::default()
        };
        run_campaign(catalog(), &config).coverage_report()
    };
    assert_eq!(reference, scoped, "legacy scoped-thread path diverged");
    // Host timing is observability, never part of the report — but it
    // must be *recorded*: every round lands in the global histogram
    // that /metrics surfaces.
    let snap = taopt_telemetry::global()
        .histogram("campaign_round_host_us")
        .snapshot();
    assert!(snap.count > 0, "campaign rounds recorded no host timings");
}

#[test]
fn shared_farm_never_double_allocates() {
    let before = taopt_telemetry::global()
        .counter("campaign_lease_conflicts_total")
        .get();
    let config = CampaignConfig {
        workers: 4,
        capacity: Some(5),
        ..CampaignConfig::default()
    };
    let result = run_campaign(catalog(), &config);
    // Ledger-side and telemetry-side views agree: no device was ever
    // leased to two apps at once, and the farm never exceeded capacity.
    assert_eq!(result.lease_conflicts, 0);
    let after = taopt_telemetry::global()
        .counter("campaign_lease_conflicts_total")
        .get();
    assert_eq!(after, before, "conflict counter moved during the campaign");
    assert!(
        result.peak_active <= 5,
        "peak {} devices exceeds capacity 5",
        result.peak_active
    );
    assert_eq!(result.farm_active_at_end, 0, "devices leaked at the end");
    assert!(result.grants > 0);
    for app in &result.apps {
        assert!(
            app.session.union_coverage() > 0,
            "{} covered nothing",
            app.name
        );
    }
}

#[test]
fn contended_campaign_matches_uncontended_coverage_order() {
    // Sanity on the leasing layer: halving capacity still completes every
    // app and total coverage stays in the same ballpark (stolen time, not
    // lost work — sessions run on frozen clocks while queued).
    let full = run_campaign(catalog(), &CampaignConfig::default());
    let config = CampaignConfig {
        capacity: Some(7),
        ..CampaignConfig::default()
    };
    let half = run_campaign(catalog(), &config);
    assert_eq!(full.peak_active, 13, "uncontended peak is the total demand");
    // Duration-constrained apps end by wall-clock however many devices
    // they hold, so contention can only stretch the campaign, not shrink
    // it (and often doesn't stretch it when the slowest app is the
    // resource-mode one running near one device in both cases).
    assert!(
        half.rounds >= full.rounds,
        "contention shrank the campaign: {} vs {}",
        half.rounds,
        full.rounds
    );
    for (f, h) in full.apps.iter().zip(half.apps.iter()) {
        assert!(h.session.union_coverage() > 0, "{} starved", h.name);
        // Same app, same seed: coverage within 2× of the dedicated run.
        assert!(
            h.session.union_coverage() * 2 >= f.session.union_coverage(),
            "{}: contended coverage {} collapsed vs dedicated {}",
            f.name,
            h.session.union_coverage(),
            f.session.union_coverage()
        );
    }
}

#[test]
fn killed_devices_are_replaced_and_no_subspace_is_orphaned() {
    let config = CampaignConfig {
        workers: 2,
        kills: vec![
            KillEvent {
                round: 6,
                victim: 0,
            },
            KillEvent {
                round: 12,
                victim: 3,
            },
            KillEvent {
                round: 18,
                victim: 7,
            },
        ],
        ..CampaignConfig::default()
    };
    let result = run_campaign(catalog(), &config);
    let lost: usize = result.apps.iter().map(|a| a.devices_lost).sum();
    let replaced: usize = result.apps.iter().map(|a| a.replacements).sum();
    assert_eq!(lost, 3, "every scheduled kill landed");
    assert!(replaced > 0, "lost devices were never replaced");
    for app in &result.apps {
        assert_eq!(
            app.unresolved_orphans, 0,
            "{} finished with orphaned subspaces",
            app.name
        );
        assert!(app.session.union_coverage() > 0);
    }
    // Kills are deterministic too.
    let again = run_campaign(catalog(), &config);
    assert_eq!(result.coverage_report(), again.coverage_report());
}

#[test]
fn single_app_campaign_matches_serial_session() {
    // A one-app campaign on an uncontended farm is the serial session,
    // rescheduled — for a coordinator-free mode the results must be
    // identical field by field.
    let config = quick_config(ToolKind::Monkey, RunMode::Baseline, 77);
    let serial = ParallelSession::run(small_app("parity", 77), &config);
    let campaign = run_campaign(
        vec![CampaignApp {
            name: "parity".to_owned(),
            app: small_app("parity", 77),
            config,
        }],
        &CampaignConfig::default(),
    );
    let c = &campaign.apps[0].session;
    assert_eq!(c.union_coverage(), serial.union_coverage());
    assert_eq!(c.unique_crashes(), serial.unique_crashes());
    assert_eq!(c.machine_time, serial.machine_time);
    assert_eq!(c.wall_clock, serial.wall_clock);
    assert_eq!(c.instances.len(), serial.instances.len());
    for (a, b) in c.instances.iter().zip(serial.instances.iter()) {
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.cover_events, b.cover_events);
        assert_eq!(a.trace.len(), b.trace.len());
    }
}
