//! Integration tests of the coordination contract: enforcement really
//! seals subspaces, ownership is exclusive, and the tool-agnosticism
//! boundary holds across the whole stack.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taopt::coordinator::CoordinatorEvent;
use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_toller::InstanceId;
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn run(seed: u64, tool: ToolKind) -> (Arc<App>, taopt::session::SessionResult) {
    let app = Arc::new(generate_app(&GeneratorConfig::small("coord", seed)).unwrap());
    let mut cfg = SessionConfig::new(tool, RunMode::TaoptDuration);
    cfg.instances = 3;
    cfg.duration = VirtualDuration::from_mins(10);
    cfg.stall_timeout = VirtualDuration::from_secs(60);
    cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    cfg.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    let r = ParallelSession::run(Arc::clone(&app), &cfg);
    (app, r)
}

/// Reconstructs, per instance, the (screen, widget) pairs blocked on it
/// and the time of blocking, from the coordinator log.
fn blocked_rules(
    result: &taopt::session::SessionResult,
) -> BTreeMap<InstanceId, BTreeSet<(u64, String)>> {
    let mut map: BTreeMap<InstanceId, BTreeSet<(u64, String)>> = BTreeMap::new();
    for e in &result.coordinator_events {
        if let CoordinatorEvent::EntrypointBlocked { instance, rule, .. } = e {
            map.entry(*instance)
                .or_default()
                .insert((rule.screen.0, rule.widget_rid.clone()));
        }
    }
    map
}

#[test]
fn blocked_widgets_are_never_fired_while_blocked() {
    let (_, r) = run(11, ToolKind::Monkey);
    let blocked = blocked_rules(&r);
    // For every instance, once a (host screen, widget) pair is blocked it
    // must not appear as a fired action later in the trace. We verify the
    // weaker, order-free property for owners-excluded rules that were
    // installed at registration time (instances allocated later than the
    // dedication): for those, ANY firing is a violation.
    for i in &r.instances {
        let Some(rules) = blocked.get(&i.instance) else {
            continue;
        };
        // Rules installed at or before this instance's first event.
        for (host, rid) in rules {
            let fired_while_blocked = i.trace.events().windows(2).any(|w| {
                w[0].abstract_id.0 == *host
                    && w[1].action_widget_rid.as_deref() == Some(rid.as_str())
                    && w[1].time >= i.allocated_at
                    // Only count firings after blocking could have applied:
                    // instances allocated after the dedication are blocked
                    // from the start.
                    && i.allocated_at > r.coordinator_events.iter().filter_map(|e| match e {
                        CoordinatorEvent::SubspaceDedicated { at, .. } => Some(*at),
                        _ => None,
                    }).min().unwrap_or(i.allocated_at)
            });
            assert!(
                !fired_while_blocked,
                "{} fired blocked widget {rid} on screen {host}",
                i.instance
            );
        }
    }
}

#[test]
fn each_subspace_has_exactly_one_live_owner_per_dedication() {
    let (_, r) = run(12, ToolKind::Ape);
    // The last dedication event per subspace determines the final owner.
    let mut last_owner = BTreeMap::new();
    for e in &r.coordinator_events {
        if let CoordinatorEvent::SubspaceDedicated {
            subspace, owner, ..
        } = e
        {
            last_owner.insert(*subspace, *owner);
        }
    }
    for s in r.subspaces.iter().filter(|s| s.confirmed) {
        assert_eq!(
            s.owner,
            last_owner.get(&s.id).copied(),
            "{} final owner diverges from the event log",
            s.id
        );
    }
}

#[test]
fn confirmed_subspaces_meet_the_confirmation_policy() {
    let (_, r) = run(13, ToolKind::Monkey);
    for s in &r.subspaces {
        if s.confirmed {
            assert!(
                s.reporters.len() >= 2,
                "duration mode requires two independent reporters; {} has {:?}",
                s.id,
                s.reporters
            );
        }
    }
}

#[test]
fn subspace_screens_are_disjoint_from_hub_transit() {
    // The hub (start screen) must never be claimed by a subspace: blocking
    // it would break all navigation.
    let (app, r) = run(14, ToolKind::Monkey);
    let mut rt = taopt_app_sim::AppRuntime::launch(Arc::clone(&app), 0);
    let hub_abs = rt.observe(taopt_ui_model::VirtualTime::ZERO).abstract_id();
    for s in r.subspaces.iter().filter(|s| s.confirmed) {
        assert!(
            !s.screens.contains(&hub_abs),
            "{} claims the hub screen",
            s.id
        );
    }
}

#[test]
fn behavior_preservation_bound_holds_loosely() {
    // TaOPT must not lose most of the baseline's covered methods — the
    // paper reports >95% retention; the quick-scale bound here is 60%.
    let app = Arc::new(generate_app(&GeneratorConfig::small("coordbp", 15)).unwrap());
    let mk = |mode| {
        let mut cfg = SessionConfig::new(ToolKind::Monkey, mode);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(10);
        cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        ParallelSession::run(Arc::clone(&app), &cfg)
    };
    let base = mk(RunMode::Baseline);
    let taopt = mk(RunMode::TaoptDuration);
    let base_set = base.union_covered();
    let taopt_set = taopt.union_covered();
    let retained = base_set.intersection(&taopt_set).count();
    assert!(
        retained as f64 >= 0.6 * base_set.len() as f64,
        "TaOPT retained only {retained}/{} baseline methods",
        base_set.len()
    );
}
