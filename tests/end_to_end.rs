//! End-to-end integration tests: full parallel sessions across every tool
//! and run mode, on generated apps, checking the system-level invariants
//! the paper's design promises.

use std::sync::Arc;

use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_tools::ToolKind;
use taopt_ui_model::{VirtualDuration, VirtualTime};

fn quick_config(tool: ToolKind, mode: RunMode) -> SessionConfig {
    let mut cfg = SessionConfig::new(tool, mode);
    cfg.instances = 3;
    cfg.duration = VirtualDuration::from_mins(8);
    cfg.stall_timeout = VirtualDuration::from_secs(60);
    cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    cfg.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    cfg
}

fn app(seed: u64) -> Arc<App> {
    Arc::new(generate_app(&GeneratorConfig::small("e2e", seed)).expect("valid app"))
}

#[test]
fn every_tool_and_mode_completes() {
    for tool in ToolKind::ALL {
        for mode in [
            RunMode::Baseline,
            RunMode::TaoptDuration,
            RunMode::TaoptResource,
            RunMode::ActivityPartition,
        ] {
            let r = ParallelSession::run(app(1), &quick_config(tool, mode));
            assert!(r.union_coverage() > 0, "{tool:?}/{mode:?} covered nothing");
            assert!(!r.instances.is_empty());
            assert!(r.machine_time > VirtualDuration::ZERO);
        }
    }
}

#[test]
fn sessions_are_reproducible() {
    for mode in [
        RunMode::Baseline,
        RunMode::TaoptDuration,
        RunMode::TaoptResource,
    ] {
        let cfg = quick_config(ToolKind::Ape, mode);
        let a = ParallelSession::run(app(2), &cfg);
        let b = ParallelSession::run(app(2), &cfg);
        assert_eq!(
            a.union_coverage(),
            b.union_coverage(),
            "{mode:?} not deterministic"
        );
        assert_eq!(a.unique_crashes(), b.unique_crashes());
        assert_eq!(a.machine_time, b.machine_time);
        assert_eq!(a.subspaces.len(), b.subspaces.len());
        assert_eq!(a.instances.len(), b.instances.len());
    }
}

#[test]
fn different_seeds_change_baseline_outcomes() {
    let mut c1 = quick_config(ToolKind::Monkey, RunMode::Baseline);
    c1.seed = 1;
    let mut c2 = c1.clone();
    c2.seed = 99;
    let a = ParallelSession::run(app(3), &c1);
    let b = ParallelSession::run(app(3), &c2);
    assert_ne!(
        (a.union_coverage(), a.machine_time),
        (b.union_coverage(), b.machine_time),
        "seeds should matter"
    );
}

#[test]
fn duration_modes_respect_the_wall_clock() {
    for mode in [
        RunMode::Baseline,
        RunMode::TaoptDuration,
        RunMode::ActivityPartition,
    ] {
        let cfg = quick_config(ToolKind::Monkey, mode);
        let r = ParallelSession::run(app(4), &cfg);
        // Wall clock never exceeds the budget by more than one tick.
        assert!(
            r.wall_clock.as_secs() <= cfg.duration.as_secs() + cfg.tick.as_secs(),
            "{mode:?} ran {} > {}",
            r.wall_clock,
            cfg.duration
        );
        // No instance outlives the session.
        for i in &r.instances {
            assert!(i.deallocated_at <= VirtualTime::ZERO + cfg.duration + cfg.tick);
        }
    }
}

#[test]
fn resource_mode_respects_the_machine_budget() {
    let mut cfg = quick_config(ToolKind::WcTester, RunMode::TaoptResource);
    cfg.machine_budget = Some(VirtualDuration::from_mins(12));
    let r = ParallelSession::run(app(5), &cfg);
    let slack = cfg.tick.as_secs() * cfg.instances as u64 + 60;
    assert!(
        r.machine_time.as_secs() <= 12 * 60 + slack,
        "machine time {} exceeds 12m budget",
        r.machine_time
    );
}

#[test]
fn taopt_identifies_and_dedicates_subspaces() {
    // Confirmation needs a couple of analysis rounds past l_min; give this
    // session a little more room than the quick config's 8 minutes.
    let mut cfg = quick_config(ToolKind::Monkey, RunMode::TaoptDuration);
    cfg.duration = VirtualDuration::from_mins(12);
    let r = ParallelSession::run(app(6), &cfg);
    let confirmed: Vec<_> = r.subspaces.iter().filter(|s| s.confirmed).collect();
    assert!(!confirmed.is_empty(), "no subspaces identified");
    for s in &confirmed {
        assert!(s.owner.is_some(), "{} has no owner", s.id);
        assert!(!s.entrypoints.is_empty());
        assert!(s.screens.len() >= 3);
    }
}

#[test]
fn instance_coverage_is_a_subset_of_union() {
    let r = ParallelSession::run(app(7), &quick_config(ToolKind::Ape, RunMode::TaoptDuration));
    let union = r.union_covered();
    for i in &r.instances {
        assert!(i.covered.is_subset(&union));
        // Cover events reconstruct the covered set.
        let from_events: std::collections::BTreeSet<_> =
            i.cover_events.iter().map(|(_, m)| *m).collect();
        assert_eq!(
            from_events, i.covered,
            "{} cover events diverge",
            i.instance
        );
    }
    assert_eq!(r.union_coverage(), union.len());
}

#[test]
fn union_curve_is_monotone_and_consistent() {
    for mode in [RunMode::Baseline, RunMode::TaoptResource] {
        let r = ParallelSession::run(app(8), &quick_config(ToolKind::Monkey, mode));
        assert!(r
            .union_curve
            .windows(2)
            .all(|w| w[0].covered < w[1].covered && w[0].time <= w[1].time));
        assert!(r
            .union_curve
            .windows(2)
            .all(|w| w[0].machine_time <= w[1].machine_time));
        assert_eq!(
            r.union_curve.last().map(|p| p.covered).unwrap_or(0),
            r.union_coverage()
        );
    }
}

#[test]
fn login_gated_apps_are_testable() {
    let mut gcfg = GeneratorConfig::small("gated", 9);
    gcfg.login = true;
    let app = Arc::new(generate_app(&gcfg).unwrap());
    let r = ParallelSession::run(
        app.clone(),
        &quick_config(ToolKind::Monkey, RunMode::Baseline),
    );
    // Auto-login must unlock the bulk of the app, not just the wall.
    assert!(
        r.union_coverage() * 3 > app.method_count(),
        "covered {} of {}",
        r.union_coverage(),
        app.method_count()
    );
}
