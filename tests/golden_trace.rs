//! Golden-trace regression: a fixed-seed serial session's per-round
//! `SplitCandidate` sequence and coordinator decision log, checked in as
//! a JSON fixture.
//!
//! This pins the *decisions* of `find_space` and the coordinator, not
//! just aggregate coverage, so a refactor of the incremental scorer or
//! the dedication path that changes any split index, any score (to 1e-6),
//! or any dedication/block event fails loudly here.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! TAOPT_GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use std::sync::Arc;

use taopt::coordinator::CoordinatorEvent;
use taopt::findspace::find_space;
use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{generate_app, GeneratorConfig};
use taopt_tools::ToolKind;
use taopt_ui_model::json::Value;
use taopt_ui_model::{VirtualDuration, VirtualTime};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace.json"
);

fn golden_config() -> SessionConfig {
    // The Ape/8-minute shape reliably confirms and dedicates subspaces on
    // this app seed, so the fixture pins real decisions.
    let mut c = SessionConfig::new(ToolKind::Ape, RunMode::TaoptDuration);
    c.instances = 3;
    c.duration = VirtualDuration::from_mins(8);
    c.tick = VirtualDuration::from_secs(10);
    c.seed = 2;
    c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    c
}

/// Runs the golden session and renders its decision log canonically.
///
/// `batched` selects the ingestion path: `false` drives the analyzer
/// one instance at a time (the path the fixture was recorded on),
/// `true` routes every round through `Coordinator::process_traces`. The
/// fixture is shared — batched ingestion promises byte-identical
/// decisions, so both arms must render the same log without
/// regeneration.
fn render_golden(batched: bool) -> String {
    let mut config = golden_config();
    config.batched_ingestion = batched;
    let app = Arc::new(generate_app(&GeneratorConfig::small("golden", 2)).unwrap());
    let result = ParallelSession::run(app, &config);

    // Per-round SplitCandidate sequence: for every instance, re-run
    // FindSpace on each round-boundary prefix of its final trace and
    // record the (round, index, score) triples where a split exists.
    // Scores are fixed to micro-units so float formatting cannot drift.
    let rounds = config.duration.as_millis() / config.tick.as_millis();
    let splits: Vec<Value> = result
        .instances
        .iter()
        .map(|inst| {
            let events = inst.trace.events();
            let mut per_round = Vec::new();
            for round in 1..=rounds {
                let boundary = VirtualTime::ZERO + config.tick * round;
                let prefix: Vec<_> = events
                    .iter()
                    .take_while(|e| e.time <= boundary)
                    .cloned()
                    .collect();
                if let Some(split) = find_space(&prefix, &config.analyzer.find_space) {
                    per_round.push(Value::Array(vec![
                        Value::UInt(round),
                        Value::UInt(split.index as u64),
                        Value::Int((split.score * 1e6).round() as i64),
                    ]));
                }
            }
            Value::Object(vec![
                ("instance".to_owned(), Value::UInt(inst.instance.0 as u64)),
                ("trace_len".to_owned(), Value::UInt(events.len() as u64)),
                ("splits".to_owned(), Value::Array(per_round)),
            ])
        })
        .collect();

    let decisions: Vec<Value> = result
        .coordinator_events
        .iter()
        .map(|e| match e {
            CoordinatorEvent::SubspaceDedicated {
                subspace,
                owner,
                at,
            } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("dedicated".to_owned())),
                ("subspace".to_owned(), Value::UInt(subspace.0 as u64)),
                ("owner".to_owned(), Value::UInt(owner.0 as u64)),
                ("at_ms".to_owned(), Value::UInt(at.as_millis())),
            ]),
            CoordinatorEvent::EntrypointBlocked {
                subspace,
                instance,
                rule,
            } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("blocked".to_owned())),
                ("subspace".to_owned(), Value::UInt(subspace.0 as u64)),
                ("instance".to_owned(), Value::UInt(instance.0 as u64)),
                ("screen".to_owned(), Value::UInt(rule.screen.0)),
                ("widget".to_owned(), Value::Str(rule.widget_rid.clone())),
            ]),
        })
        .collect();

    Value::Object(vec![
        ("app".to_owned(), Value::Str("golden".to_owned())),
        ("seed".to_owned(), Value::UInt(2)),
        (
            "union_coverage".to_owned(),
            Value::UInt(result.union_coverage() as u64),
        ),
        ("instances".to_owned(), Value::Array(splits)),
        ("decisions".to_owned(), Value::Array(decisions)),
    ])
    .to_json_string()
}

#[test]
fn serial_session_reproduces_golden_trace() {
    let current = render_golden(false);
    if std::env::var("TAOPT_GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &current).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("missing fixture {FIXTURE} ({e}); run with TAOPT_GOLDEN_REGEN=1 to create it")
    });
    assert_eq!(
        current, golden,
        "find_space/coordinator decisions diverged from the checked-in \
         golden trace; if the change is intentional, regenerate with \
         TAOPT_GOLDEN_REGEN=1"
    );
}

/// The batched-ingestion arm renders the *same* per-round scores and
/// dedication log as the serial arm, against the unchanged fixture.
/// This is the end-to-end seal on the parallel hot paths: if sharding,
/// vectorization, or batching perturbs one split index, one score
/// micro-unit, or one dedication, this diverges.
#[test]
fn batched_session_reproduces_golden_trace() {
    if std::env::var("TAOPT_GOLDEN_REGEN").is_ok() {
        return; // the serial arm owns regeneration
    }
    let golden = match std::fs::read_to_string(FIXTURE) {
        Ok(g) => g,
        Err(_) => return, // first regen run creates it
    };
    assert_eq!(
        render_golden(true),
        golden,
        "batched ingestion diverged from the serial golden trace; the \
         batched path must be byte-identical — do NOT regenerate the \
         fixture to paper over this"
    );
}

#[test]
fn golden_fixture_is_well_formed() {
    if std::env::var("TAOPT_GOLDEN_REGEN").is_ok() {
        return; // the fixture is being rewritten by the other test
    }
    let golden = match std::fs::read_to_string(FIXTURE) {
        Ok(g) => g,
        Err(_) => return, // first regen run creates it
    };
    let parsed = Value::parse(&golden).expect("fixture parses as JSON");
    // Sanity: the fixture actually pins decisions, not an empty run.
    let Value::Object(fields) = &parsed else {
        panic!("fixture root is not an object")
    };
    let decisions = fields
        .iter()
        .find(|(k, _)| k == "decisions")
        .map(|(_, v)| v)
        .expect("decisions field present");
    let Value::Array(decisions) = decisions else {
        panic!("decisions is not an array")
    };
    assert!(
        !decisions.is_empty(),
        "golden run produced no coordinator decisions — fixture is not protective"
    );
}
