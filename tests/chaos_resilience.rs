//! System-level chaos resilience: a duration-mode session with device
//! losses, bus faults and enforcement failures all active must still
//! terminate, respect `d_max`, leave no subspace permanently blocked for
//! every live instance, and retain most of the fault-free coverage.

use std::sync::Arc;

use taopt::run_with_chaos;
use taopt::session::{RunMode, SessionConfig};
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_chaos::{FaultInjector, FaultKind, FaultPlan, FaultRates};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn chaos_config() -> SessionConfig {
    let mut cfg = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
    cfg.instances = 3;
    cfg.duration = VirtualDuration::from_mins(10);
    cfg.stall_timeout = VirtualDuration::from_secs(60);
    cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    cfg.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    cfg.seed = 7;
    cfg
}

fn app() -> Arc<App> {
    Arc::new(generate_app(&GeneratorConfig::small("chaos-e2e", 5)).expect("valid app"))
}

/// Moderate rates on every seam at once: ~1 device loss per instance per
/// 8 virtual minutes, 3% of events dropped, 2% duplicated or delayed,
/// 20% of enforcement deliveries failing.
fn moderate_rates() -> FaultRates {
    let mut rates = FaultRates::none();
    rates.device_loss = 0.02;
    rates.alloc_refusal = 0.05;
    rates.latency_spike = 0.02;
    rates.event_drop = 0.03;
    rates.event_duplicate = 0.02;
    rates.event_delay = 0.02;
    rates.enforcement_failure = 0.2;
    rates
}

#[test]
fn faulted_session_terminates_within_budget_and_retains_coverage() {
    let cfg = chaos_config();
    let clean = run_with_chaos(app(), &cfg, &FaultInjector::inert(13));
    let before = taopt_telemetry::global().snapshot();
    let injector = FaultInjector::new(FaultPlan::new(13, moderate_rates()));
    let faulted = run_with_chaos(app(), &cfg, &injector);
    let after = taopt_telemetry::global().snapshot();

    // The once write-only StreamStats now surface through the metrics
    // registry. Counters are global and monotone (other tests in this
    // binary share them), so assert the delta across this run covers at
    // least this run's own repair counts.
    let delta = |name: &str| after.counter_total(name) - before.counter_total(name);
    assert!(faulted.stream.duplicates > 0, "no duplicates repaired");
    assert!(faulted.stream.gaps > 0, "no gaps repaired");
    assert!(
        delta("stream_duplicates_total") >= faulted.stream.duplicates as u64,
        "stream duplicates not surfaced through the registry"
    );
    assert!(
        delta("stream_gaps_total") >= faulted.stream.gaps as u64,
        "stream gaps not surfaced through the registry"
    );
    assert!(
        delta("stream_events_consumed_total") > 0,
        "stream consumption not surfaced through the registry"
    );
    assert!(
        delta("faults_injected_total") >= faulted.fault_stats.total_injected() as u64,
        "fault injections not surfaced through the registry"
    );

    // The fault schedule genuinely fired on all three seams.
    let stats = &faulted.fault_stats;
    assert!(faulted.devices_lost > 0, "no device losses injected");
    assert!(
        stats
            .injected
            .get(&FaultKind::EventDropped)
            .copied()
            .unwrap_or(0)
            > 0
    );
    assert!(
        stats
            .injected
            .get(&FaultKind::EnforcementFailed)
            .copied()
            .unwrap_or(0)
            > 0
    );

    // Termination and the d_max ceiling: the run never outlives its
    // wall-clock budget and never runs more instances than allowed.
    assert!(faulted.session.wall_clock <= cfg.duration + cfg.tick);
    assert!(faulted.session.peak_concurrency() <= cfg.instances);

    // Liveness: no confirmed subspace may end up blocked for every live
    // instance with nobody dedicated to it.
    assert_eq!(faulted.unresolved_orphans, 0, "subspace left orphaned");

    // Self-healing actually recovered: lost devices were replaced and
    // failed broadcasts eventually applied.
    assert!(faulted.replacements > 0, "no lost device was replaced");
    assert!(stats.total_recovered() > 0, "no recoveries recorded");

    // Degradation bound: >= 80% of the fault-free union coverage under
    // the same seed.
    let clean_cov = clean.session.union_coverage();
    let faulted_cov = faulted.session.union_coverage();
    assert!(
        faulted_cov * 10 >= clean_cov * 8,
        "coverage degraded too far: {faulted_cov} faulted vs {clean_cov} clean"
    );
}

#[test]
fn chaos_reports_are_reproducible_from_the_plan_seed() {
    let cfg = chaos_config();
    let plan = FaultPlan::new(29, moderate_rates());
    let a = run_with_chaos(app(), &cfg, &FaultInjector::new(plan.clone()));
    let b = run_with_chaos(app(), &cfg, &FaultInjector::new(plan));
    assert_eq!(a.session.union_coverage(), b.session.union_coverage());
    assert_eq!(a.session.unique_crashes(), b.session.unique_crashes());
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.devices_lost, b.devices_lost);
    assert_eq!(a.replacements, b.replacements);
    assert_eq!(a.stream, b.stream);
}

#[test]
fn fault_plan_survives_serialization_mid_experiment() {
    // An operator can persist the plan next to the run artifacts and
    // replay the exact same chaos later.
    let cfg = chaos_config();
    let plan = FaultPlan::new(31, moderate_rates());
    let json = plan.to_value().to_json_string();
    let replayed =
        FaultPlan::from_value(&taopt_ui_model::json::Value::parse(&json).unwrap()).unwrap();
    let a = run_with_chaos(app(), &cfg, &FaultInjector::new(plan));
    let b = run_with_chaos(app(), &cfg, &FaultInjector::new(replayed));
    assert_eq!(a.session.union_coverage(), b.session.union_coverage());
    assert_eq!(a.fault_stats, b.fault_stats);
}
