//! Shape tests: small-scale versions of the paper's headline claims that
//! must hold for the reproduction to be meaningful. Thresholds are loose
//! (quick scale, few apps) — the full-scale numbers live in
//! EXPERIMENTS.md and the `taopt-bench` binaries.

use std::sync::Arc;

use taopt::experiments::{
    evaluation_matrix, matrix_get, table1_histogram, table2_rows, ExperimentScale,
};
use taopt::session::RunMode;
use taopt_app_sim::{catalog_entries, App};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn shape_scale() -> ExperimentScale {
    ExperimentScale {
        instances: 4,
        duration: VirtualDuration::from_mins(20),
        tick: VirtualDuration::from_secs(10),
        stall_timeout: VirtualDuration::from_mins(2),
        l_min_short: VirtualDuration::from_secs(60),
        l_min_long: VirtualDuration::from_secs(120),
        grid_points: 6,
    }
}

fn shape_apps(n: usize) -> Vec<(String, Arc<App>)> {
    catalog_entries()
        .into_iter()
        .take(n)
        .map(|e| {
            let mut cfg = e.config();
            cfg.n_functionalities = 8;
            cfg.min_screens_per_functionality = 12;
            cfg.max_screens_per_functionality = 20;
            (
                e.name.to_owned(),
                Arc::new(taopt_app_sim::generate_app(&cfg).unwrap()),
            )
        })
        .collect()
}

#[test]
fn taopt_improves_aggregate_coverage() {
    let apps = shape_apps(3);
    let matrix = evaluation_matrix(&apps, &shape_scale(), 2025);
    let mut base = 0usize;
    let mut dur = 0usize;
    let mut res = 0usize;
    for (name, _) in &apps {
        for tool in ToolKind::ALL {
            base += matrix_get(&matrix, name, tool, RunMode::Baseline)
                .unwrap()
                .union_coverage;
            dur += matrix_get(&matrix, name, tool, RunMode::TaoptDuration)
                .unwrap()
                .union_coverage;
            res += matrix_get(&matrix, name, tool, RunMode::TaoptResource)
                .unwrap()
                .union_coverage;
        }
    }
    assert!(
        dur as f64 > 0.98 * base as f64,
        "duration mode regressed: {dur} vs {base}"
    );
    assert!(
        res as f64 > 0.98 * base as f64,
        "resource mode regressed: {res} vs {base}"
    );
    assert!(
        dur + res > 2 * base,
        "TaOPT should improve on aggregate: D={dur} R={res} B={base}"
    );
}

#[test]
fn baseline_instances_overlap_heavily() {
    // RQ1's finding: most subspaces are explored by multiple instances.
    let apps = shape_apps(2);
    let matrix = evaluation_matrix(&apps, &shape_scale(), 7);
    let hist = table1_histogram(&matrix);
    let total: usize = hist.values().sum();
    let multi: usize = hist.iter().filter(|(k, _)| **k > 1).map(|(_, v)| *v).sum();
    assert!(total > 0, "offline partition found no subspaces");
    assert!(
        multi as f64 >= 0.6 * total as f64,
        "only {multi}/{total} subspaces explored by >1 instance"
    );
}

#[test]
fn ape_overlaps_most_in_baseline() {
    // Fig. 3's ordering: Ape's model-based convergence gives the highest
    // cross-instance coverage similarity.
    let apps = shape_apps(2);
    let matrix = evaluation_matrix(&apps, &shape_scale(), 9);
    let ajs_of = |tool| {
        let mut v = Vec::new();
        for (name, _) in &apps {
            let r = matrix_get(&matrix, name, tool, RunMode::Baseline).unwrap();
            if let Some((_, a)) = r.ajs_curve.last() {
                v.push(*a);
            }
        }
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let ape = ajs_of(ToolKind::Ape);
    let monkey = ajs_of(ToolKind::Monkey);
    let wct = ajs_of(ToolKind::WcTester);
    assert!(
        ape > monkey && ape > wct,
        "Ape should overlap most: ape={ape:.2} monkey={monkey:.2} wct={wct:.2}"
    );
}

#[test]
fn activity_partitioning_hurts_wctester() {
    // RQ2's finding (Table 2): ParaAim-style partitioning reduces
    // coverage on most apps.
    let apps = shape_apps(3);
    let rows = table2_rows(&apps, &shape_scale(), 3);
    let hurt = rows.iter().filter(|r| r.parallel < r.baseline).count();
    assert!(
        hurt * 2 > rows.len(),
        "activity partitioning should hurt most apps; hurt {hurt}/{}",
        rows.len()
    );
}

#[test]
fn taopt_reduces_ui_overlap() {
    // RQ6 (Table 6): the average occurrences of distinct UIs drop.
    let apps = shape_apps(2);
    let matrix = evaluation_matrix(&apps, &shape_scale(), 21);
    let mut base = 0.0;
    let mut taopt = 0.0;
    for (name, _) in &apps {
        for tool in ToolKind::ALL {
            base += matrix_get(&matrix, name, tool, RunMode::Baseline)
                .unwrap()
                .avg_ui_occurrences;
            taopt += matrix_get(&matrix, name, tool, RunMode::TaoptDuration)
                .unwrap()
                .avg_ui_occurrences;
        }
    }
    assert!(
        taopt < base * 1.02,
        "TaOPT should not increase UI overlap: {taopt:.1} vs {base:.1}"
    );
}
