//! Integration checks over the 18-app catalog (Table 3).

use taopt_app_sim::{catalog_entries, AppRuntime};
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::VirtualTime;

#[test]
fn all_catalog_apps_generate_and_validate() {
    for e in catalog_entries() {
        let app = e.generate();
        assert!(
            app.screen_count() > 100,
            "{}: only {} screens",
            e.name,
            app.screen_count()
        );
        assert!(
            app.method_count() > 3_000,
            "{}: only {} methods",
            e.name,
            app.method_count()
        );
        assert!(app.functionalities().len() >= 10, "{}", e.name);
        assert_eq!(app.login().is_some(), e.login, "{} login gating", e.name);
        // Every action target resolves (App::assemble validated it, but
        // re-check through the public API).
        for s in app.screens() {
            for a in &s.actions {
                for t in &a.targets {
                    assert!(app.screen(t.screen).is_some());
                }
            }
        }
    }
}

#[test]
fn catalog_generation_is_deterministic() {
    let a = catalog_entries()[0].generate();
    let b = catalog_entries()[0].generate();
    assert_eq!(a.screen_count(), b.screen_count());
    assert_eq!(a.method_count(), b.method_count());
    let names_a: Vec<_> = a.screens().map(|s| s.name.clone()).collect();
    let names_b: Vec<_> = b.screens().map(|s| s.name.clone()).collect();
    assert_eq!(names_a, names_b);
}

#[test]
fn abstract_screen_identities_are_distinct_within_an_app() {
    // The analyzer relies on distinct screens having distinct abstract
    // ids; collisions would merge unrelated screens.
    let app = catalog_entries()[2].generate();
    let mut seen = std::collections::HashSet::new();
    for s in app.screens() {
        let id = abstract_hierarchy(&app.render_screen(s.id, 0)).id();
        assert!(seen.insert(id), "abstract id collision at {}", s.name);
    }
}

#[test]
fn runtimes_boot_on_every_catalog_app() {
    for e in catalog_entries().into_iter().take(6) {
        let app = std::sync::Arc::new(e.generate());
        let mut rt = AppRuntime::launch(std::sync::Arc::clone(&app), 1);
        if app.login().is_some() {
            assert!(
                rt.auto_login(VirtualTime::ZERO).is_some(),
                "{} login failed",
                e.name
            );
        }
        let obs = rt.observe(VirtualTime::ZERO);
        assert!(
            !obs.enabled_actions().is_empty(),
            "{} start screen is dead",
            e.name
        );
    }
}

#[test]
fn size_classes_order_method_counts() {
    let apps: std::collections::BTreeMap<&str, usize> = catalog_entries()
        .iter()
        .map(|e| (e.name, e.generate().method_count()))
        .collect();
    // Representative ordering across size classes.
    assert!(apps["Zedge"] > apps["AutoScout24"], "XL > Large");
    assert!(apps["AutoScout24"] > apps["AccuWeather"], "Large > Medium");
    assert!(apps["AccuWeather"] > apps["AbsWorkout"], "Medium > Small");
}
