//! System-level telemetry: a chaos session must populate the global
//! metrics registry (counters on every instrumented seam, latency
//! histograms for the span-wrapped phases) and leave a flight-recorder
//! trail that replays in order.

use std::sync::Arc;

use taopt::run_with_chaos;
use taopt::session::{RunMode, SessionConfig};
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_chaos::{FaultInjector, FaultPlan, FaultRates};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn config() -> SessionConfig {
    let mut cfg = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
    cfg.instances = 3;
    cfg.duration = VirtualDuration::from_mins(10);
    cfg.stall_timeout = VirtualDuration::from_secs(60);
    cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    cfg.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    cfg.seed = 7;
    cfg
}

fn app() -> Arc<App> {
    Arc::new(generate_app(&GeneratorConfig::small("telemetry-e2e", 5)).expect("valid app"))
}

fn moderate_rates() -> FaultRates {
    let mut rates = FaultRates::none();
    rates.device_loss = 0.02;
    rates.alloc_refusal = 0.05;
    rates.latency_spike = 0.02;
    rates.event_drop = 0.03;
    rates.event_duplicate = 0.02;
    rates.event_delay = 0.02;
    rates.enforcement_failure = 0.2;
    rates
}

#[test]
fn chaos_session_populates_registry_and_flight_recorder() {
    let telemetry = taopt_telemetry::global();
    let before = telemetry.snapshot();
    let injector = FaultInjector::new(FaultPlan::new(13, moderate_rates()));
    let report = run_with_chaos(app(), &config(), &injector);
    let after = telemetry.snapshot();

    assert!(
        !after.is_empty(),
        "metrics snapshot is empty after a session"
    );

    // Counters on every instrumented seam moved. Counters are global and
    // monotone, so compare deltas (other tests share the registry).
    let delta = |name: &str| after.counter_total(name) - before.counter_total(name);
    for name in [
        "chaos_sessions_started_total",
        "chaos_rounds_total",
        "cover_events_total",
        "bus_events_published_total",
        "farm_allocations_total",
        "emulator_actions_total",
        "subspaces_dedicated_total",
        "entrypoints_blocked_total",
        "enforcement_retries_total",
        "faults_injected_total",
        "faults_recovered_total",
    ] {
        assert!(delta(name) > 0, "counter {name} never incremented");
    }
    // The unlabeled series exactly mirrors the fault log (the per-kind
    // labeled series would double the `counter_total` sum).
    let unlabeled = |snap: &taopt_telemetry::MetricsSnapshot| {
        snap.counters
            .get("faults_injected_total")
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(
        unlabeled(&after) - unlabeled(&before),
        report.fault_stats.total_injected() as u64,
        "telemetry and the fault log disagree on injections"
    );

    // Latency histograms exist for the span-wrapped phases and the
    // device step seam.
    for series in [
        "span_ns{kind=\"dedicate\"}",
        "span_ns{kind=\"broadcast\"}",
        "span_ns{kind=\"findspace\"}",
        "emulator_step_ns{seam=\"device\"}",
    ] {
        let h = after
            .histograms
            .get(series)
            .unwrap_or_else(|| panic!("histogram {series} missing"));
        assert!(!h.is_empty(), "histogram {series} is empty");
        assert!(
            h.max >= h.p50(),
            "histogram {series} quantiles inconsistent"
        );
    }

    // The flight recorder replays the most recent 1k events in strict
    // sequence order, and the JSON dump round-trips losslessly.
    let last = telemetry.recorder().last(1000);
    assert!(!last.is_empty(), "flight recorder is empty");
    assert!(
        last.windows(2).all(|w| w[0].seq < w[1].seq),
        "flight replay out of order"
    );
    let json = telemetry.recorder().dump_json(1000).to_json_string();
    let parsed = taopt_ui_model::Value::parse(&json).expect("flight dump is valid JSON");
    let events = parsed.as_array().expect("flight dump is a JSON array");
    assert_eq!(events.len(), last.len());
    let mut prev = None;
    for e in events {
        let seq = e
            .get("seq")
            .and_then(taopt_ui_model::Value::as_u64)
            .expect("every event carries a seq");
        assert!(prev.is_none_or(|p| p < seq), "JSON replay out of order");
        prev = Some(seq);
    }
}

#[test]
fn prometheus_rendering_exposes_series_types() {
    // Force at least one series of each type to exist.
    let telemetry = taopt_telemetry::global();
    telemetry.counter("render_probe_total").inc();
    telemetry.gauge("render_probe_gauge").set(3);
    telemetry.histogram("render_probe_ns").record(1500);
    let text = telemetry.render_prometheus();
    assert!(text.contains("# TYPE render_probe_total counter"));
    assert!(text.contains("# TYPE render_probe_gauge gauge"));
    assert!(text.contains("# TYPE render_probe_ns histogram"));
}
