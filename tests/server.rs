//! End-to-end tests for the network control plane: a campaign submitted
//! over the wire reproduces the in-process result byte-for-byte, a
//! mid-flight campaign migrates between two live shards with its digest
//! verified, tampered checkpoints are rejected cleanly at both layers,
//! the worker pool sheds load with 503s instead of growing, and the
//! `/metrics` route emits well-formed Prometheus text.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use taopt::campaign::run_campaign;
use taopt::experiments::ExperimentScale;
use taopt::RunMode;
use taopt_server::{migrate, serve, Client, ServerConfig, ServerHandle};
use taopt_service::checkpoint as ckpt_codec;
use taopt_service::{
    AppSource, AppSpec, CampaignService, CampaignSpec, CampaignStatus, ServiceConfig,
};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

/// A fresh scratch dir under the system temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taopt-server-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small two-app campaign spec; `minutes` of virtual duration controls
/// how many rounds it lives (10 s tick → 6 rounds per minute).
fn tiny_spec(name: &str, seed: u64, minutes: u64) -> CampaignSpec {
    let scale = ExperimentScale {
        instances: 2,
        duration: VirtualDuration::from_mins(minutes),
        tick: VirtualDuration::from_secs(10),
        stall_timeout: VirtualDuration::from_secs(60),
        l_min_short: VirtualDuration::from_secs(40),
        l_min_long: VirtualDuration::from_secs(100),
        grid_points: 4,
    };
    let apps = (0..2)
        .map(|i| AppSpec {
            source: AppSource::Small {
                name: format!("{name}{i}"),
                seed: seed ^ (i + 1),
            },
            tool: if i == 0 {
                ToolKind::Monkey
            } else {
                ToolKind::Ape
            },
            mode: RunMode::TaoptDuration,
            seed: seed.wrapping_add(i),
        })
        .collect();
    CampaignSpec::new(name, apps, scale)
}

/// The canonical uninterrupted result of a spec.
fn direct_report(spec: &CampaignSpec) -> String {
    let (apps, config) = spec.build().unwrap();
    run_campaign(apps, &config).coverage_report()
}

/// Starts a shard: service with a small checkpoint cadence behind a
/// loopback server on an ephemeral port.
fn shard(tag: &str) -> (ServerHandle, Client) {
    let mut config = ServiceConfig::new(scratch(tag));
    config.checkpoint_every = 2;
    let service = CampaignService::start(config).unwrap();
    let handle = serve(service, ServerConfig::new("127.0.0.1:0")).unwrap();
    let client = Client::new(handle.addr());
    (handle, client)
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn submit_over_wire_is_byte_identical_to_in_process() {
    let spec = tiny_spec("wire", 41, 3);
    let reference = direct_report(&spec);

    let (handle, client) = shard("submit");
    let id = client.submit(&spec, 5).unwrap();
    let status = client.wait(id, WAIT).unwrap();
    assert_eq!(status, CampaignStatus::Done);
    assert_eq!(client.result(id).unwrap(), reference);
    handle.stop().shutdown();
}

#[test]
fn mid_flight_migration_between_shards_is_byte_identical() {
    // Long enough that the export provably lands mid-flight.
    let spec = tiny_spec("mig", 7, 60);
    let reference = direct_report(&spec);

    let (handle_a, a) = shard("mig-a");
    let (handle_b, b) = shard("mig-b");
    let id = a.submit(&spec, 5).unwrap();

    // Wait until the campaign is provably past round 0 on shard A.
    let t0 = Instant::now();
    loop {
        match a.status(id).unwrap() {
            CampaignStatus::Running { round } if round >= 1 => break,
            CampaignStatus::Done | CampaignStatus::Failed(_) => {
                panic!("campaign finished before it could be migrated")
            }
            _ if t0.elapsed() > WAIT => panic!("campaign never got past round 0"),
            _ => std::thread::yield_now(),
        }
    }

    // Export preempts (checkpoint at the next round boundary) and
    // detaches; the exported checkpoint must be mid-flight.
    let text = a.export_checkpoint_text(id).unwrap();
    let ckpt = ckpt_codec::decode(&text, "test").unwrap();
    assert!(ckpt.round > 0, "export was not mid-flight");
    assert!(ckpt.digest.is_some(), "mid-flight export carries a digest");

    // Shard A no longer knows the campaign (it cannot run on both).
    assert_eq!(a.status(id).unwrap_err().status(), Some(404));

    // Shard B resumes it by verified replay and finishes byte-identical.
    let new_id = b.import_checkpoint_text(&text).unwrap();
    let status = b.wait(new_id, WAIT).unwrap();
    assert_eq!(status, CampaignStatus::Done);
    assert_eq!(b.result(new_id).unwrap(), reference);

    handle_a.stop().shutdown();
    handle_b.stop().shutdown();
}

#[test]
fn migrate_helper_composes_export_and_import() {
    let spec = tiny_spec("mighelper", 13, 3);
    let reference = direct_report(&spec);

    let (handle_a, a) = shard("mh-a");
    let (handle_b, b) = shard("mh-b");
    let id = a.submit(&spec, 5).unwrap();
    // Migrating a queued (round-0) campaign is also legal.
    let new_id = migrate(&a, &b, id).unwrap();
    let status = b.wait(new_id, WAIT).unwrap();
    assert_eq!(status, CampaignStatus::Done);
    assert_eq!(b.result(new_id).unwrap(), reference);
    handle_a.stop().shutdown();
    handle_b.stop().shutdown();
}

#[test]
fn tampered_checkpoints_are_rejected_at_both_layers() {
    let spec = tiny_spec("tamper", 23, 60);
    let (handle_a, a) = shard("tamper-a");
    let (handle_b, b) = shard("tamper-b");
    let id = a.submit(&spec, 5).unwrap();
    let t0 = Instant::now();
    loop {
        match a.status(id).unwrap() {
            CampaignStatus::Running { round } if round >= 1 => break,
            CampaignStatus::Done | CampaignStatus::Failed(_) => {
                panic!("campaign finished before export")
            }
            _ if t0.elapsed() > WAIT => panic!("campaign never got past round 0"),
            _ => std::thread::yield_now(),
        }
    }
    let text = a.export_checkpoint_text(id).unwrap();

    // Layer 1: a flipped payload byte fails the checksum at import → 400.
    let mut bytes = text.clone().into_bytes();
    let idx = bytes.len() - 10;
    bytes[idx] = bytes[idx].wrapping_add(1);
    let flipped = String::from_utf8(bytes).unwrap();
    let err = b.import_checkpoint_text(&flipped).unwrap_err();
    assert_eq!(err.status(), Some(400), "checksum tamper must 400: {err}");

    // Layer 2: a structurally valid checkpoint whose (round, digest) pair
    // no longer matches — re-encoded, so the checksum is correct — is
    // admitted, then rejected by digest verification during replay.
    let mut ckpt = ckpt_codec::decode(&text, "test").unwrap();
    ckpt.round += 1;
    let forged_id = b
        .import_checkpoint_text(&ckpt_codec::encode(&ckpt))
        .unwrap();
    match b.wait(forged_id, WAIT).unwrap() {
        CampaignStatus::Failed(reason) => {
            assert!(
                reason.contains("diverged from checkpoint"),
                "expected a digest-mismatch failure, got: {reason}"
            );
        }
        other => panic!("forged checkpoint must fail verification, got {other:?}"),
    }

    // The genuine checkpoint still imports and completes.
    let good_id = b.import_checkpoint_text(&text).unwrap();
    assert_eq!(b.wait(good_id, WAIT).unwrap(), CampaignStatus::Done);
    assert_eq!(b.result(good_id).unwrap(), direct_report(&spec));

    handle_a.stop().shutdown();
    handle_b.stop().shutdown();
}

#[test]
fn saturated_worker_pool_sheds_load_with_503() {
    let mut config = ServiceConfig::new(scratch("backpressure"));
    config.checkpoint_every = 2;
    let service = CampaignService::start(config).unwrap();
    let mut server_config = ServerConfig::new("127.0.0.1:0");
    server_config.workers = 1;
    server_config.queue_depth = 1;
    let handle = serve(service, server_config).unwrap();
    let client = Client::new(handle.addr());

    // Pin the single worker: a connection that sends nothing parks it in
    // `read_request` (bounded by `IO_TIMEOUT`, released at EOF). A second
    // silent connection then fills the depth-1 queue.
    let pin = std::net::TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let parked = std::net::TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // With the worker busy and the queue full, the acceptor must answer
    // 503 inline instead of buffering or spawning.
    let mut saw_503 = false;
    for _ in 0..50 {
        match client.metrics() {
            Err(e) if e.status() == Some(503) => {
                saw_503 = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(saw_503, "saturated server never answered 503");

    // Releasing the held connections frees the worker; the server serves
    // normally again and the shed load is visible on the counter.
    drop(pin);
    drop(parked);
    let mut recovered = None;
    for _ in 0..100 {
        match client.metrics() {
            Ok(text) => {
                recovered = Some(text);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let metrics = recovered.expect("server never recovered after saturation");
    assert!(metrics.contains("server_backpressure_total"));

    handle.stop().shutdown();
}

#[test]
fn wire_wait_is_bounded() {
    let (handle, client) = shard("boundedwait");
    let id = client.submit(&tiny_spec("bw", 17, 60), 5).unwrap();
    let t0 = Instant::now();
    let status = client.wait_once(id, Duration::from_millis(100)).unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "bounded wait took {:?}",
        t0.elapsed()
    );
    // The campaign is long; a 100 ms wait must return a live status.
    assert!(
        !matches!(status, CampaignStatus::Done | CampaignStatus::Failed(_)),
        "long campaign finished within the bounded wait: {status:?}"
    );
    handle.stop().shutdown();
}

#[test]
fn drain_checkpoints_everything_and_stops_accepting() {
    let (handle, client) = shard("drain");
    let running = client.submit(&tiny_spec("drain-run", 29, 60), 9).unwrap();
    let queued = client.submit(&tiny_spec("drain-queue", 31, 3), 1).unwrap();

    let drained = client.drain().unwrap();
    let drained_ids: HashSet<u64> = drained.iter().map(|id| id.0).collect();
    assert!(drained_ids.contains(&running.0), "running campaign drained");
    assert!(drained_ids.contains(&queued.0), "queued campaign drained");

    // Quiescent: nothing running, submissions refused.
    assert!(matches!(
        client.status(running).unwrap(),
        CampaignStatus::Paused { .. } | CampaignStatus::Queued
    ));
    let err = client.submit(&tiny_spec("late", 5, 3), 5).unwrap_err();
    assert_eq!(err.status(), Some(409), "drained shard must refuse: {err}");

    // The drained campaigns stay exportable — that is the migration path
    // for evacuating a shard.
    let ckpt = client.export_checkpoint(running).unwrap();
    assert_eq!(ckpt.priority, 9);
    handle.stop().shutdown();
}

/// Asserts Prometheus text-exposition well-formedness: unique `# TYPE`
/// declarations, every sample belonging to a declared family, and no
/// duplicate series (name + label set).
fn assert_wellformed_prometheus(text: &str) {
    let mut types: HashSet<&str> = HashSet::new();
    let mut series: HashSet<&str> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a family");
            let kind = parts.next().expect("TYPE line carries a type");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric type `{kind}` in: {line}"
            );
            assert!(types.insert(name), "duplicate # TYPE for `{name}`");
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "unexpected comment line (only # TYPE is emitted): {line}"
        );
        let series_id = line.rsplit_once(' ').expect("sample has a value").0;
        assert!(series.insert(series_id), "duplicate series `{series_id}`");
        let name = series_id.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.contains(f))
            .unwrap_or(name);
        assert!(
            types.contains(family),
            "sample `{series_id}` has no # TYPE declaration"
        );
    }
    assert!(!series.is_empty(), "exposition is empty");
}

#[test]
fn metrics_route_and_metrics_text_are_wellformed_prometheus() {
    let (handle, client) = shard("metrics");
    let spec = tiny_spec("metrics", 37, 3);
    let reference = direct_report(&spec);
    let id = client.submit(&spec, 5).unwrap();
    client.wait(id, WAIT).unwrap();
    assert_eq!(client.result(id).unwrap(), reference);

    // The wire route and the in-process method render the same registry.
    let over_wire = client.metrics().unwrap();
    assert_wellformed_prometheus(&over_wire);
    assert!(over_wire.contains("# TYPE server_requests_total counter"));
    assert!(over_wire.contains("server_request_latency_us"));
    assert!(over_wire.contains("service_campaigns_submitted_total"));

    let service = handle.stop();
    assert_wellformed_prometheus(&service.metrics_text());
    service.shutdown();
}

#[test]
fn service_wait_timeout_is_bounded_in_process() {
    let dir = scratch("waittimeout");
    let service = CampaignService::start(ServiceConfig::new(dir)).unwrap();
    let id = service.submit(tiny_spec("wt", 19, 60), 5).unwrap();
    let t0 = Instant::now();
    let status = service.wait_timeout(id, Duration::from_millis(50)).unwrap();
    assert!(status.is_none(), "long campaign cannot be terminal yet");
    assert!(t0.elapsed() < Duration::from_secs(5));
    // And the unbounded wait still completes through the same path.
    let status = service.wait(id).unwrap();
    assert_eq!(status, CampaignStatus::Done);
    service.shutdown();
}
