//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This crate reimplements the small slice
//! of the 0.8 API the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] — on top of xoshiro256** seeded via SplitMix64.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, which
//! is fine: nothing in the workspace depends on the exact byte stream,
//! only on determinism for a fixed seed, which this crate guarantees.

#![forbid(unsafe_code)]

/// A seedable random number generator core.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

mod uniform {
    use super::RngCore;

    /// Uniform sampling of a primitive from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Draws from `[low, high)`; `high` is exclusive.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// The successor used to turn an inclusive bound into an exclusive
        /// one (saturating; floats return themselves).
        fn successor(self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with empty range");
                    let span = (high as i128 - low as i128) as u128;
                    // Multiply-shift rejection-free mapping; bias is
                    // < 2^-64 per draw, irrelevant for simulation use.
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (low as i128 + hi) as $t
                }
                fn successor(self) -> Self {
                    self.saturating_add(1)
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    low + (high - low) * unit as $t
                }
                fn successor(self) -> Self {
                    self
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    /// Ranges accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_range(rng, lo, hi.successor())
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// Extension methods over any [`RngCore`] (the `rand 0.8` `Rng` trait).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws from a range (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Statistically strong, tiny and `Clone`-able; not cryptographic
    /// (neither is the upstream use of it here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (the `rand 0.8` `SliceRandom` trait).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
            let w = rng.gen_range(10i32..=12);
            assert!((10..=12).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|s| *s), "all range values reachable");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let orig = ys.clone();
        ys.shuffle(&mut rng);
        ys.sort_unstable();
        assert_eq!(ys, orig);
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
