//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API shape: `lock()`
//! / `read()` / `write()` return guards directly (poisoning is swallowed —
//! a panicking holder does not poison the lock for everyone else, matching
//! parking_lot semantics closely enough for this workspace).
//!
//! [`MutexGuard`] holds the std guard in an `Option` so [`Condvar::wait`]
//! can move it through std's consume-and-return API without `unsafe`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose guard is returned without a poison
/// `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose guards are returned without poison
/// `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
