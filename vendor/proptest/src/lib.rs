//! Offline stand-in for `proptest`.
//!
//! Reimplements the subset of proptest's API this workspace uses:
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`option::of`], regex-literal string strategies (`"[a-z]{1,8}"`),
//! `any::<T>()`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its seed and case index instead), and cases are generated from a seed
//! derived deterministically from the test name, so runs are reproducible
//! without a `proptest-regressions` file (existing regression files are
//! ignored).

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failed property check (returned by `prop_assert!` style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` in the real crate).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property (used by the [`proptest!`] macro).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner whose random stream is derived from `name`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        0x7a0b_75e6_u64.hash(&mut h);
        TestRunner {
            config,
            base_seed: h.finish(),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic RNG for case `case`.
    pub fn rng_for(&self, case: u32) -> TestRng {
        StdRng::seed_from_u64(self.base_seed.wrapping_add(case as u64))
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind an `Arc` (cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf; `branch` wraps an
    /// inner strategy into a composite. `depth` bounds the nesting;
    /// `_max_nodes` and `_items_per_level` are accepted for signature
    /// compatibility (size is bounded by whatever `branch` builds).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _max_nodes: u32,
        _items_per_level: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let inner = level.clone();
            let leaf_again = leaf.clone();
            let composite = branch(inner).boxed();
            // Mix leaves and composites so trees have varied shapes.
            level = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.gen::<f64>() < 0.35 {
                    leaf_again.generate(rng)
                } else {
                    composite.generate(rng)
                }
            }));
        }
        level
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// String strategies from regex-like literals.
///
/// Supports the pattern shapes used in this workspace: a single character
/// class with a bounded repetition — `[a-z]{1,8}`, `[ -~]{0,24}` — plus
/// plain literal strings (generated verbatim).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    if bytes.first() != Some(&b'[') {
        // Literal string.
        return pattern.to_owned();
    }
    let close = pattern
        .find(']')
        .expect("unterminated character class in pattern");
    let class = &pattern[1..close];
    // Expand ranges like a-z inside the class.
    let mut alphabet: Vec<char> = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).expect("valid char range"));
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    let rest = &pattern[close + 1..];
    let (min, max) = parse_repetition(rest);
    let len = if min == max {
        min
    } else {
        rng.gen_range(min..=max)
    };
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn parse_repetition(rest: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    if rest == "*" {
        return (0, 8);
    }
    if rest == "+" {
        return (1, 8);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .expect("unsupported repetition in pattern");
    match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repetition lower bound"),
            hi.trim().parse().expect("repetition upper bound"),
        ),
        None => {
            let n = inner.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => $lo:expr, $hi:expr);* $(;)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                ($lo..=$hi).boxed()
            }
        }
    )*};
}

impl_arbitrary_uniform! {
    u8 => u8::MIN, u8::MAX;
    u16 => u16::MIN, u16::MAX;
    u32 => u32::MIN, u32::MAX;
    u64 => u64::MIN, u64::MAX;
    usize => usize::MIN, usize::MAX;
    i8 => i8::MIN, i8::MAX;
    i16 => i16::MIN, i16::MAX;
    i32 => i32::MIN, i32::MAX;
    i64 => i64::MIN, i64::MAX;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy(Arc::new(|rng: &mut TestRng| rng.gen::<bool>()))
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy(Arc::new(|rng: &mut TestRng| rng.gen::<f64>()))
    }
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `BTreeSet` with *up to* the drawn number of elements (duplicates
    /// collapse, as in the real proptest).
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` values from `inner` (75%) or `None` (25%).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen::<f64>(rng) < 0.25 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Runs properties over generated inputs. See the crate docs for the
/// supported grammar (a strict subset of the real macro's).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch $cfg; $($rest)*);
    };
    (@munch $cfg:expr; ) => {};
    (@munch $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        runner.cases(),
                        e
                    );
                }
            }
        }
        $crate::proptest!(@munch $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Chooses uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::one_of(arms)
    }};
}

/// Runtime support for [`prop_oneof!`].
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
        let i = rng.gen_range(0..arms.len());
        arms[i].generate(rng)
    }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns() {
        let runner = TestRunner::new(ProptestConfig::default(), "string_patterns");
        let mut rng = runner.rng_for(0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[ -~]{0,24}", &mut rng);
            assert!(t.len() <= 24);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert_eq!(Strategy::generate(&"hello", &mut rng), "hello");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn collections(
            v in crate::collection::vec(0u8..4, 0..12),
            s in crate::collection::btree_set(0u32..100, 0..20),
            o in crate::option::of(1i32..3),
        ) {
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|x| *x < 4));
            prop_assert!(s.len() < 20);
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x), "range 1..3 gave {}", x);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), 10u32..12, (0u32..2).prop_map(|v| v + 100)]) {
            prop_assert!(x == 1 || (10..12).contains(&x) || (100..102).contains(&x));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
            }
        }
        let strat = (0u8..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 40, 5, |inner| {
                crate::collection::vec(inner, 0..5).prop_map(Tree::Node)
            });
        let runner = TestRunner::new(ProptestConfig::default(), "recursive");
        let mut max = 0;
        for case in 0..50 {
            let mut rng = runner.rng_for(case);
            let t = strat.generate(&mut rng);
            max = max.max(size(&t));
        }
        assert!(max > 1, "recursion produced only leaves");
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = TestRunner::new(ProptestConfig::default(), "det");
        let a: Vec<u64> = (0..20)
            .map(|c| Strategy::generate(&(0u64..1_000_000), &mut runner.rng_for(c)))
            .collect();
        let runner2 = TestRunner::new(ProptestConfig::default(), "det");
        let b: Vec<u64> = (0..20)
            .map(|c| Strategy::generate(&(0u64..1_000_000), &mut runner2.rng_for(c)))
            .collect();
        assert_eq!(a, b);
    }
}
