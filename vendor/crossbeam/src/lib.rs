//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: an unbounded multi-producer/multi-consumer
//! channel built on `Mutex<VecDeque>` + `Condvar`, exposing the subset of
//! the `crossbeam-channel` API the workspace uses (`unbounded`, cloneable
//! `Sender`/`Receiver`, `send`, `recv_timeout`, `try_iter`,
//! disconnection detection).

#![forbid(unsafe_code)]

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue();
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterator draining currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue().is_empty()
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx2, rx2) = unbounded();
        drop(rx2);
        assert_eq!(tx2.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_and_clones() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_millis(50)) {
            got.push(v);
            if let Ok(v) = rx2.try_recv() {
                got.push(v);
            }
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn try_iter_drains() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<_> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(rx.is_empty());
    }
}
