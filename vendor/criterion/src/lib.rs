//! Offline stand-in for `criterion`.
//!
//! Times closures with `std::time::Instant` and prints mean wall-clock
//! per iteration. Covers the API subset this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::bench_with_input`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros (both the
//! positional and the `name =` / `config =` / `targets =` forms).
//!
//! No statistics, warm-up scheduling, or report files — each benchmark
//! simply runs `sample_size` samples and reports the mean.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("events", 512)` → `events/512`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Measured (sample_total, iterations) pairs.
    results: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to get a
    /// measurable duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ≳1ms, so short routines aren't dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push((start.elapsed(), iters));
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        let (total, iters) = bencher
            .results
            .iter()
            .fold((Duration::ZERO, 0u64), |(d, n), (sd, sn)| {
                (d + *sd, n + *sn)
            });
        if iters == 0 {
            println!("{id:<48} (no samples)");
        } else {
            let mean_ns = total.as_nanos() as f64 / iters as f64;
            println!(
                "{id:<48} {:>12} /iter  ({} samples)",
                format_ns(mean_ns),
                bencher.samples
            );
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn, ...)`
/// or the braced `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let template: $crate::Criterion = $config;
            $(
                let mut c = template.clone();
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(0x9e37_79b9))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("sum", |b| b.iter(|| sum_to(100)));
    }

    #[test]
    fn bench_with_input_and_group() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, n| {
            b.iter(|| sum_to(*n))
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| sum_to(10)));
        g.finish();
    }

    criterion_group!(positional, positional_target);
    fn positional_target(c: &mut Criterion) {
        c.bench_function("positional", |b| b.iter(|| sum_to(5)));
    }

    criterion_group! {
        name = braced;
        config = Criterion::default().sample_size(2);
        targets = positional_target
    }

    #[test]
    fn groups_invoke() {
        positional();
        braced();
    }
}
