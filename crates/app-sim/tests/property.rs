//! Property-based tests for the app simulator: generator validity across
//! the configuration space, runtime safety under arbitrary action
//! sequences, coverage monotonicity.

use std::sync::Arc;

use proptest::prelude::*;

use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
use taopt_ui_model::{Action, VirtualTime};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..8,     // functionalities
        3usize..10,    // min screens
        0usize..8,     // extra screens above min
        1usize..8,     // activities
        0usize..4,     // local actions
        0usize..6,     // crash points
        any::<bool>(), // login
        0u64..1000,    // seed
    )
        .prop_map(|(nf, smin, extra, acts, locals, crashes, login, seed)| {
            let mut cfg = GeneratorConfig::small("prop", seed);
            cfg.n_functionalities = nf;
            cfg.min_screens_per_functionality = smin;
            cfg.max_screens_per_functionality = smin + extra;
            cfg.n_activities = acts;
            cfg.local_actions_per_screen = locals;
            cfg.crash_points = crashes;
            cfg.login = login;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_apps_are_always_valid(cfg in arb_config()) {
        let app = generate_app(&cfg).expect("generator must produce valid apps");
        prop_assert!(app.screen_count() >= cfg.n_functionalities * cfg.min_screens_per_functionality);
        prop_assert_eq!(app.login().is_some(), cfg.login);
        // All action targets resolve and weights are sane.
        for s in app.screens() {
            for a in &s.actions {
                for t in &a.targets {
                    prop_assert!(app.screen(t.screen).is_some());
                    prop_assert!(t.weight >= 0.0 && t.weight.is_finite());
                }
            }
        }
        // Structural transition graph is stochastic.
        let g = app.structural_graph();
        for n in g.nodes() {
            let row: f64 = g.out_edges(n).map(|(_, w)| w).sum();
            prop_assert!(row == 0.0 || (row - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn random_walks_never_break_the_runtime(
        cfg in arb_config(),
        choices in proptest::collection::vec((0usize..16, 0u8..10), 1..120)
    ) {
        let app = Arc::new(generate_app(&cfg).unwrap());
        let mut rt = AppRuntime::launch(Arc::clone(&app), 1);
        rt.auto_login(VirtualTime::ZERO);
        let mut covered_before = rt.covered_methods().len();
        for (i, (pick, kind)) in choices.into_iter().enumerate() {
            let t = VirtualTime::from_secs(i as u64 + 1);
            let obs = rt.observe(t);
            let actions = obs.enabled_actions();
            let action = match kind {
                0 => Action::Back,
                1 => Action::Noop,
                _ if actions.is_empty() => Action::Back,
                _ => Action::Widget(actions[pick % actions.len()].0),
            };
            let out = rt.execute(action, t).expect("offered actions always execute");
            // Coverage is monotone.
            let now = rt.covered_methods().len();
            prop_assert!(now >= covered_before);
            prop_assert_eq!(now - covered_before, out.newly_covered.len());
            covered_before = now;
            // The current screen always exists and renders.
            prop_assert!(app.screen(rt.current_screen()).is_some());
        }
    }

    #[test]
    fn observations_are_stable_between_steps(cfg in arb_config()) {
        let app = Arc::new(generate_app(&cfg).unwrap());
        let mut rt = AppRuntime::launch(app, 5);
        let a = rt.observe(VirtualTime::ZERO);
        let b = rt.observe(VirtualTime::ZERO);
        // Observing twice without executing yields the same abstract
        // screen and the same action menu.
        prop_assert_eq!(a.abstract_id(), b.abstract_id());
        let ids_a: Vec<_> = a.enabled_actions().iter().map(|(x, _)| *x).collect();
        let ids_b: Vec<_> = b.enabled_actions().iter().map(|(x, _)| *x).collect();
        prop_assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn same_seed_same_walk(cfg in arb_config(), picks in proptest::collection::vec(0usize..8, 1..40)) {
        let app = Arc::new(generate_app(&cfg).unwrap());
        let walk = |seed: u64| {
            let mut rt = AppRuntime::launch(Arc::clone(&app), seed);
            rt.auto_login(VirtualTime::ZERO);
            let mut screens = Vec::new();
            for (i, p) in picks.iter().enumerate() {
                let t = VirtualTime::from_secs(i as u64);
                let actions = rt.observe(t).enabled_actions();
                let action = if actions.is_empty() {
                    Action::Back
                } else {
                    Action::Widget(actions[p % actions.len()].0)
                };
                rt.execute(action, t).unwrap();
                screens.push(rt.current_screen());
            }
            screens
        };
        prop_assert_eq!(walk(3), walk(3));
    }
}
