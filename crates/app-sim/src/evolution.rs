//! App evolution: versioned apps derived from a base spec plus ordered diffs.
//!
//! Continuous testing (CEL) treats a mobile app as a *sequence of releases*,
//! not a single frozen binary. This module gives the synthetic AUTs that
//! release axis: a [`VersionDiff`] is a serializable, ordered list of
//! [`VersionOp`]s that derives version N+1 from version N — widget renames,
//! added affordances, screen splits, flow rewires, injected *regression*
//! crashes and method-table growth, the edit kinds release notes are made
//! of. [`AppEvolution`] samples such diffs deterministically from a seed so
//! a whole release train is reproducible from `(base config, seed)`.
//!
//! The companion [`VersionDiff::touched`] computes the *touched surface* of
//! a diff against the old version — the abstract screen identities and
//! widget resource ids whose rendering changes — which is exactly the
//! information a warm-started analyzer needs to decide which learned
//! subspaces survive the release boundary and which must be re-discovered.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::{AbstractScreenId, ActionId, ActionKind, JsonError, ScreenId, Value};

use crate::app::App;
use crate::crash::{CrashPoint, CrashSignature};
use crate::error::AppSimError;
use crate::method::MethodId;
use crate::spec::{ActionSpec, ScreenSpec};

/// One edit applied to an app when deriving version N+1 from version N.
#[derive(Debug, Clone, PartialEq)]
pub enum VersionOp {
    /// Change the resource id of the widget carrying an action (a refactor
    /// that breaks recorded widget selectors but not app structure).
    RenameWidget {
        /// The action whose widget is renamed.
        action: ActionId,
        /// The new resource id.
        new_rid: String,
    },
    /// Rename a screen (changes every widget rid derived from the screen
    /// name, so the screen abstracts to a fresh identity).
    RenameScreen {
        /// The screen being renamed.
        screen: ScreenId,
        /// The new screen name (must stay app-unique).
        new_name: String,
    },
    /// Add a new self-contained affordance to a screen, with fresh handler
    /// methods (a small feature addition).
    AddLocalAction {
        /// The hosting screen.
        screen: ScreenId,
        /// Gesture class of the new affordance.
        kind: ActionKind,
        /// Resource id of the new widget.
        widget_rid: String,
        /// Number of fresh handler methods to allocate.
        methods: usize,
    },
    /// Split a screen in two: the later half of its affordances move to a
    /// fresh screen reachable by a new click (a screen decomposition
    /// refactor).
    SplitScreen {
        /// The screen being split.
        screen: ScreenId,
        /// Name of the freshly created screen (must stay app-unique).
        new_name: String,
        /// Fresh screen-entry methods allocated to the new screen.
        methods: usize,
    },
    /// Rewire a multi-screen flow so its final screen changes (a checkout
    /// path redesign). Flows do not render, so this touches no screen
    /// surface.
    RewireFlow {
        /// Index of the flow in [`App::flows`].
        flow: usize,
        /// Screen replacing the flow's last member.
        replace_with: ScreenId,
    },
    /// Inject a regression crash on an existing action — the defect a new
    /// release ships and a longitudinal campaign must catch.
    InjectCrash {
        /// The action gaining the latent fault.
        action: ActionId,
        /// Per-execution firing probability once armed.
        probability: f64,
        /// Distinct in-functionality screens required before arming.
        min_local_depth: usize,
        /// Dedup signature of the injected fault.
        signature: CrashSignature,
    },
    /// Grow a screen's method table with fresh methods (code growth that
    /// raises the coverage denominator without changing the UI).
    GrowMethods {
        /// The screen whose method table grows.
        screen: ScreenId,
        /// Number of fresh methods appended.
        count: usize,
    },
}

/// The surface of an app version a diff touches: abstract screen
/// identities whose rendering changes, and widget resource ids that are
/// renamed away or newly introduced.
///
/// Both sets are expressed against the *old* version — they are matched
/// against learned analyzer state (subspace screen sets and entrypoint
/// rules) to decide what survives the release boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedSurface {
    /// Abstract identities (all feed pages) of screens whose rendering
    /// changes.
    pub screens: BTreeSet<AbstractScreenId>,
    /// Widget resource ids renamed away or introduced.
    pub widget_rids: BTreeSet<String>,
}

impl TouchedSurface {
    /// Whether the diff touches nothing observable.
    pub fn is_empty(&self) -> bool {
        self.screens.is_empty() && self.widget_rids.is_empty()
    }
}

/// An ordered, serializable set of edits deriving version
/// [`VersionDiff::to_version`] from [`VersionDiff::from_version`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VersionDiff {
    /// The version this diff applies to.
    pub from_version: u64,
    /// The version this diff produces.
    pub to_version: u64,
    /// Edits, applied in order.
    pub ops: Vec<VersionOp>,
}

impl VersionDiff {
    /// An empty diff (version bump with no observable change — a
    /// re-release of the same binary).
    pub fn empty(from_version: u64) -> Self {
        VersionDiff {
            from_version,
            to_version: from_version + 1,
            ops: Vec::new(),
        }
    }

    /// Whether the diff carries no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Signatures of the regression crashes this diff injects.
    pub fn injected_signatures(&self) -> Vec<CrashSignature> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                VersionOp::InjectCrash { signature, .. } => Some(*signature),
                _ => None,
            })
            .collect()
    }

    /// Applies the diff to an app, producing the next version.
    ///
    /// # Errors
    ///
    /// Returns [`AppSimError::EvolutionTarget`] when an op references a
    /// missing screen/action/flow or would create a duplicate screen name,
    /// and propagates assembly errors from the rebuilt app.
    pub fn apply(&self, app: &App) -> Result<App, AppSimError> {
        let mut screens: Vec<ScreenSpec> = app.screens().cloned().collect();
        let mut flows = app.flows().to_vec();
        let mut method_count = app.method_count();
        let mut next_action = screens
            .iter()
            .flat_map(|s| s.actions.iter())
            .map(|a| a.id.0)
            .max()
            .map_or(0, |m| m + 1);
        let mut next_screen = screens.iter().map(|s| s.id.0).max().map_or(0, |m| m + 1);

        let alloc_methods = |method_count: &mut usize, n: usize| -> Vec<MethodId> {
            let ids = (*method_count..*method_count + n)
                .map(|m| MethodId(m as u32))
                .collect();
            *method_count += n;
            ids
        };

        for op in &self.ops {
            match op {
                VersionOp::RenameWidget { action, new_rid } => {
                    let a = screens
                        .iter_mut()
                        .flat_map(|s| s.actions.iter_mut())
                        .find(|a| a.id == *action)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing action {action}"))
                        })?;
                    a.widget_rid = new_rid.clone();
                }
                VersionOp::RenameScreen { screen, new_name } => {
                    if screens.iter().any(|s| s.name == *new_name) {
                        return Err(AppSimError::EvolutionTarget(format!(
                            "duplicate screen name {new_name}"
                        )));
                    }
                    let s = screens
                        .iter_mut()
                        .find(|s| s.id == *screen)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing screen {screen}"))
                        })?;
                    s.name = new_name.clone();
                }
                VersionOp::AddLocalAction {
                    screen,
                    kind,
                    widget_rid,
                    methods,
                } => {
                    let handler = alloc_methods(&mut method_count, *methods);
                    let s = screens
                        .iter_mut()
                        .find(|s| s.id == *screen)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing screen {screen}"))
                        })?;
                    s.actions.push(
                        ActionSpec::local(ActionId(next_action), *kind, widget_rid, "new feature")
                            .with_methods(handler),
                    );
                    next_action += 1;
                }
                VersionOp::SplitScreen {
                    screen,
                    new_name,
                    methods,
                } => {
                    if screens.iter().any(|s| s.name == *new_name) {
                        return Err(AppSimError::EvolutionTarget(format!(
                            "duplicate screen name {new_name}"
                        )));
                    }
                    let entry_methods = alloc_methods(&mut method_count, *methods);
                    let s = screens
                        .iter_mut()
                        .find(|s| s.id == *screen)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing screen {screen}"))
                        })?;
                    let keep = s.actions.len().div_ceil(2);
                    let moved = s.actions.split_off(keep);
                    let new_id = ScreenId(next_screen);
                    next_screen += 1;
                    let connector_rid = format!("{}_goto_{}", s.name, new_name);
                    s.actions.push(ActionSpec::click_to(
                        ActionId(next_action),
                        &connector_rid,
                        "More",
                        new_id,
                    ));
                    next_action += 1;
                    let mut fresh =
                        ScreenSpec::new(new_id, s.activity, s.functionality, new_name.clone());
                    fresh.actions = moved;
                    fresh.decorations = s.decorations;
                    fresh.methods = entry_methods;
                    screens.push(fresh);
                }
                VersionOp::RewireFlow { flow, replace_with } => {
                    if !screens.iter().any(|s| s.id == *replace_with) {
                        return Err(AppSimError::EvolutionTarget(format!(
                            "missing screen {replace_with}"
                        )));
                    }
                    let f = flows.get_mut(*flow).ok_or_else(|| {
                        AppSimError::EvolutionTarget(format!("missing flow {flow}"))
                    })?;
                    if let Some(last) = f.screens.last_mut() {
                        *last = *replace_with;
                    }
                }
                VersionOp::InjectCrash {
                    action,
                    probability,
                    min_local_depth,
                    signature,
                } => {
                    let a = screens
                        .iter_mut()
                        .flat_map(|s| s.actions.iter_mut())
                        .find(|a| a.id == *action)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing action {action}"))
                        })?;
                    a.crash = Some(CrashPoint::new(*probability, *min_local_depth, *signature));
                }
                VersionOp::GrowMethods { screen, count } => {
                    let grown = alloc_methods(&mut method_count, *count);
                    let s = screens
                        .iter_mut()
                        .find(|s| s.id == *screen)
                        .ok_or_else(|| {
                            AppSimError::EvolutionTarget(format!("missing screen {screen}"))
                        })?;
                    s.methods.extend(grown);
                }
            }
        }

        App::assemble(
            app.name().to_owned(),
            screens,
            app.functionalities().to_vec(),
            app.start_screen(),
            flows,
            app.login().copied(),
            method_count,
            app.startup_methods().to_vec(),
        )
    }

    /// The surface this diff touches, expressed against the old version
    /// `base` (which must be the version the diff applies to).
    ///
    /// Ops that change no rendering (flow rewires, crash injections,
    /// method growth) touch nothing — learned analyzer state remains valid
    /// across them, which is what makes regression crashes *catchable by a
    /// warm start*: the subspace hosting the injected fault is re-dedicated
    /// immediately instead of re-discovered.
    pub fn touched(&self, base: &App) -> TouchedSurface {
        let mut t = TouchedSurface::default();
        let touch = |sid: ScreenId, t: &mut TouchedSurface| {
            if let Some(s) = base.screen(sid) {
                let pages = s.feed.as_ref().map(|f| f.pages).unwrap_or(0);
                for pg in 0..=pages {
                    t.screens
                        .insert(abstract_hierarchy(&base.render_screen_page(sid, 0, pg)).id());
                }
            }
        };
        for op in &self.ops {
            match op {
                VersionOp::RenameWidget { action, new_rid } => {
                    if let Some(host) = base.screen_of_action(*action) {
                        touch(host, &mut t);
                        if let Some(a) = base.screen(host).and_then(|s| s.action(*action)) {
                            t.widget_rids.insert(a.widget_rid.clone());
                        }
                    }
                    t.widget_rids.insert(new_rid.clone());
                }
                VersionOp::RenameScreen { screen, .. }
                | VersionOp::AddLocalAction { screen, .. }
                | VersionOp::SplitScreen { screen, .. } => touch(*screen, &mut t),
                VersionOp::RewireFlow { .. }
                | VersionOp::InjectCrash { .. }
                | VersionOp::GrowMethods { .. } => {}
            }
        }
        t
    }

    /// Serializes to a JSON value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("from_version".into(), Value::UInt(self.from_version)),
            ("to_version".into(), Value::UInt(self.to_version)),
            (
                "ops".into(),
                Value::Array(self.ops.iter().map(op_to_value).collect()),
            ),
        ])
    }

    /// Deserializes from a JSON value produced by [`VersionDiff::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on missing fields or unknown op tags.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let from_version = require_u64(v, "from_version")?;
        let to_version = require_u64(v, "to_version")?;
        let ops = v
            .require("ops")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("`ops` must be an array"))?
            .iter()
            .map(op_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(VersionDiff {
            from_version,
            to_version,
            ops,
        })
    }
}

fn require_u64(v: &Value, key: &str) -> Result<u64, JsonError> {
    v.require(key)?
        .as_u64()
        .ok_or_else(|| JsonError::conversion(format!("`{key}` must be an integer")))
}

fn require_str(v: &Value, key: &str) -> Result<String, JsonError> {
    Ok(v.require(key)?
        .as_str()
        .ok_or_else(|| JsonError::conversion(format!("`{key}` must be a string")))?
        .to_owned())
}

fn kind_to_str(k: ActionKind) -> &'static str {
    match k {
        ActionKind::Click => "click",
        ActionKind::LongClick => "long_click",
        ActionKind::Scroll => "scroll",
        ActionKind::SetText => "set_text",
        ActionKind::Swipe => "swipe",
        _ => "click",
    }
}

fn kind_from_str(s: &str) -> Result<ActionKind, JsonError> {
    Ok(match s {
        "click" => ActionKind::Click,
        "long_click" => ActionKind::LongClick,
        "scroll" => ActionKind::Scroll,
        "set_text" => ActionKind::SetText,
        "swipe" => ActionKind::Swipe,
        other => {
            return Err(JsonError::conversion(format!(
                "unknown action kind `{other}`"
            )))
        }
    })
}

fn op_to_value(op: &VersionOp) -> Value {
    let fields = match op {
        VersionOp::RenameWidget { action, new_rid } => vec![
            ("op".into(), Value::Str("rename_widget".into())),
            ("action".into(), Value::UInt(action.0 as u64)),
            ("new_rid".into(), Value::Str(new_rid.clone())),
        ],
        VersionOp::RenameScreen { screen, new_name } => vec![
            ("op".into(), Value::Str("rename_screen".into())),
            ("screen".into(), Value::UInt(screen.0 as u64)),
            ("new_name".into(), Value::Str(new_name.clone())),
        ],
        VersionOp::AddLocalAction {
            screen,
            kind,
            widget_rid,
            methods,
        } => vec![
            ("op".into(), Value::Str("add_local_action".into())),
            ("screen".into(), Value::UInt(screen.0 as u64)),
            ("kind".into(), Value::Str(kind_to_str(*kind).into())),
            ("widget_rid".into(), Value::Str(widget_rid.clone())),
            ("methods".into(), Value::UInt(*methods as u64)),
        ],
        VersionOp::SplitScreen {
            screen,
            new_name,
            methods,
        } => vec![
            ("op".into(), Value::Str("split_screen".into())),
            ("screen".into(), Value::UInt(screen.0 as u64)),
            ("new_name".into(), Value::Str(new_name.clone())),
            ("methods".into(), Value::UInt(*methods as u64)),
        ],
        VersionOp::RewireFlow { flow, replace_with } => vec![
            ("op".into(), Value::Str("rewire_flow".into())),
            ("flow".into(), Value::UInt(*flow as u64)),
            ("replace_with".into(), Value::UInt(replace_with.0 as u64)),
        ],
        VersionOp::InjectCrash {
            action,
            probability,
            min_local_depth,
            signature,
        } => vec![
            ("op".into(), Value::Str("inject_crash".into())),
            ("action".into(), Value::UInt(action.0 as u64)),
            ("probability".into(), Value::Float(*probability)),
            (
                "min_local_depth".into(),
                Value::UInt(*min_local_depth as u64),
            ),
            ("signature".into(), Value::UInt(signature.0)),
        ],
        VersionOp::GrowMethods { screen, count } => vec![
            ("op".into(), Value::Str("grow_methods".into())),
            ("screen".into(), Value::UInt(screen.0 as u64)),
            ("count".into(), Value::UInt(*count as u64)),
        ],
    };
    Value::Object(fields)
}

fn op_from_value(v: &Value) -> Result<VersionOp, JsonError> {
    let tag = require_str(v, "op")?;
    Ok(match tag.as_str() {
        "rename_widget" => VersionOp::RenameWidget {
            action: ActionId(require_u64(v, "action")? as u32),
            new_rid: require_str(v, "new_rid")?,
        },
        "rename_screen" => VersionOp::RenameScreen {
            screen: ScreenId(require_u64(v, "screen")? as u32),
            new_name: require_str(v, "new_name")?,
        },
        "add_local_action" => VersionOp::AddLocalAction {
            screen: ScreenId(require_u64(v, "screen")? as u32),
            kind: kind_from_str(&require_str(v, "kind")?)?,
            widget_rid: require_str(v, "widget_rid")?,
            methods: require_u64(v, "methods")? as usize,
        },
        "split_screen" => VersionOp::SplitScreen {
            screen: ScreenId(require_u64(v, "screen")? as u32),
            new_name: require_str(v, "new_name")?,
            methods: require_u64(v, "methods")? as usize,
        },
        "rewire_flow" => VersionOp::RewireFlow {
            flow: require_u64(v, "flow")? as usize,
            replace_with: ScreenId(require_u64(v, "replace_with")? as u32),
        },
        "inject_crash" => VersionOp::InjectCrash {
            action: ActionId(require_u64(v, "action")? as u32),
            probability: v
                .require("probability")?
                .as_f64()
                .ok_or_else(|| JsonError::conversion("`probability` must be a number"))?,
            min_local_depth: require_u64(v, "min_local_depth")? as usize,
            signature: CrashSignature(require_u64(v, "signature")?),
        },
        "grow_methods" => VersionOp::GrowMethods {
            screen: ScreenId(require_u64(v, "screen")? as u32),
            count: require_u64(v, "count")? as usize,
        },
        other => return Err(JsonError::conversion(format!("unknown op `{other}`"))),
    })
}

/// A deterministic release-train model: samples one [`VersionDiff`] per
/// version boundary from a seed, with knobs for how much of each edit kind
/// a release carries.
///
/// Every release injects [`AppEvolution::regression_crashes`] fresh,
/// shallow-armed crash points — the regressions a longitudinal campaign is
/// graded on catching.
#[derive(Debug, Clone, PartialEq)]
pub struct AppEvolution {
    /// Seed decorrelating release trains (mixed with app name and version).
    pub seed: u64,
    /// Widget resource-id renames per release.
    pub widget_renames: usize,
    /// Screen renames per release.
    pub screen_renames: usize,
    /// New local affordances per release.
    pub added_actions: usize,
    /// Screen splits per release.
    pub screen_splits: usize,
    /// Flow rewires per release.
    pub flow_rewires: usize,
    /// Injected regression crashes per release.
    pub regression_crashes: usize,
    /// Screens receiving method-table growth per release.
    pub method_growth: usize,
    /// Firing probability of injected regression crashes.
    pub crash_probability: f64,
    /// Arming depth of injected regression crashes (kept shallow so a
    /// release-length campaign can realistically reach them).
    pub crash_min_depth: usize,
}

impl AppEvolution {
    /// A moderate release train: a few renames and additions per release,
    /// one split, one rewire, one injected regression crash.
    pub fn new(seed: u64) -> Self {
        AppEvolution {
            seed,
            widget_renames: 2,
            screen_renames: 1,
            added_actions: 1,
            screen_splits: 1,
            flow_rewires: 1,
            regression_crashes: 1,
            method_growth: 1,
            crash_probability: 0.55,
            crash_min_depth: 2,
        }
    }

    /// Samples the diff taking `app` (at `from_version`) to the next
    /// version. Deterministic in `(self, app name, from_version)`.
    pub fn diff(&self, app: &App, from_version: u64) -> VersionDiff {
        let to_version = from_version + 1;
        let mut rng = StdRng::seed_from_u64(mix(self.seed, app.name(), from_version));
        let mut ops = Vec::new();

        let mut protected: BTreeSet<ScreenId> = BTreeSet::new();
        protected.insert(app.start_screen());
        if let Some(l) = app.login() {
            protected.insert(l.login_screen);
            protected.insert(l.home_screen);
        }

        let screens: Vec<&ScreenSpec> = app.screens().collect();
        let open_screens: Vec<&ScreenSpec> = screens
            .iter()
            .copied()
            .filter(|s| !protected.contains(&s.id))
            .collect();
        let nav_actions: Vec<(&ScreenSpec, &ActionSpec)> = screens
            .iter()
            .copied()
            .flat_map(|s| s.actions.iter().map(move |a| (s, a)))
            .filter(|(_, a)| !a.targets.is_empty())
            .collect();

        for i in pick_distinct(&mut rng, nav_actions.len(), self.widget_renames) {
            let (_, a) = nav_actions[i];
            ops.push(VersionOp::RenameWidget {
                action: a.id,
                new_rid: format!("{}_v{}", a.widget_rid, to_version),
            });
        }
        for i in pick_distinct(&mut rng, open_screens.len(), self.screen_renames) {
            let s = open_screens[i];
            ops.push(VersionOp::RenameScreen {
                screen: s.id,
                new_name: format!("{}V{}", s.name, to_version),
            });
        }
        let kinds = [
            ActionKind::Scroll,
            ActionKind::SetText,
            ActionKind::LongClick,
        ];
        for (n, i) in pick_distinct(&mut rng, open_screens.len(), self.added_actions)
            .into_iter()
            .enumerate()
        {
            let s = open_screens[i];
            ops.push(VersionOp::AddLocalAction {
                screen: s.id,
                kind: kinds[n % kinds.len()],
                widget_rid: format!("{}_v{}_w{}", s.name, to_version, n),
                methods: 3,
            });
        }
        let splittable: Vec<&ScreenSpec> = open_screens
            .iter()
            .copied()
            .filter(|s| s.actions.len() >= 2)
            .collect();
        for i in pick_distinct(&mut rng, splittable.len(), self.screen_splits) {
            let s = splittable[i];
            ops.push(VersionOp::SplitScreen {
                screen: s.id,
                new_name: format!("{}SplitV{}", s.name, to_version),
                methods: 4,
            });
        }
        if !app.flows().is_empty() {
            for _ in 0..self.flow_rewires {
                let flow = rng.gen_range(0..app.flows().len());
                let replace_with = screens[rng.gen_range(0..screens.len())].id;
                ops.push(VersionOp::RewireFlow { flow, replace_with });
            }
        }
        let mut cluster_sizes: BTreeMap<_, usize> = BTreeMap::new();
        for s in &screens {
            *cluster_sizes.entry(s.functionality).or_insert(0) += 1;
        }
        let reachable = |s: &ScreenSpec| cluster_sizes[&s.functionality] > self.crash_min_depth;
        let mut crashable: Vec<(&ScreenSpec, &ActionSpec)> = nav_actions
            .iter()
            .copied()
            .filter(|(s, a)| a.crash.is_none() && s.is_entry && reachable(s))
            .collect();
        if crashable.is_empty() {
            crashable = nav_actions
                .iter()
                .copied()
                .filter(|(s, a)| a.crash.is_none() && reachable(s))
                .collect();
        }
        for i in pick_distinct(&mut rng, crashable.len(), self.regression_crashes) {
            let (_, a) = crashable[i];
            ops.push(VersionOp::InjectCrash {
                action: a.id,
                probability: self.crash_probability,
                min_local_depth: self.crash_min_depth,
                signature: CrashSignature(rng.gen::<u64>()),
            });
        }
        for i in pick_distinct(&mut rng, open_screens.len(), self.method_growth) {
            let s = open_screens[i];
            ops.push(VersionOp::GrowMethods {
                screen: s.id,
                count: 5,
            });
        }

        VersionDiff {
            from_version,
            to_version,
            ops,
        }
    }

    /// Samples the next diff and applies it, returning the next version and
    /// the diff that produced it.
    ///
    /// # Errors
    ///
    /// Propagates [`AppSimError`] from [`VersionDiff::apply`].
    pub fn evolve(&self, app: &App, from_version: u64) -> Result<(App, VersionDiff), AppSimError> {
        let diff = self.diff(app, from_version);
        Ok((diff.apply(app)?, diff))
    }
}

/// Seed mixer: decorrelates (seed, app name, version) triples.
fn mix(seed: u64, name: &str, from_version: u64) -> u64 {
    let mut h = seed ^ (from_version + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Partial Fisher–Yates: `k` distinct indices out of `0..pool_len`.
fn pick_distinct(rng: &mut StdRng, pool_len: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool_len).collect();
    let k = k.min(pool_len);
    for i in 0..k {
        let j = rng.gen_range(i..pool_len);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_app, GeneratorConfig};

    fn base() -> App {
        generate_app(&GeneratorConfig::small("Evo", 7)).expect("valid app")
    }

    #[test]
    fn empty_diff_is_identity() {
        let app = base();
        let next = VersionDiff::empty(0).apply(&app).expect("apply");
        assert_eq!(next.method_count(), app.method_count());
        assert_eq!(next.screen_count(), app.screen_count());
        for s in app.screens() {
            assert_eq!(
                abstract_hierarchy(&app.render_screen(s.id, 0)).id(),
                abstract_hierarchy(&next.render_screen(s.id, 0)).id(),
            );
        }
    }

    #[test]
    fn diff_is_deterministic() {
        let app = base();
        let evo = AppEvolution::new(11);
        assert_eq!(evo.diff(&app, 3), evo.diff(&app, 3));
        assert_ne!(evo.diff(&app, 0), evo.diff(&app, 1));
    }

    #[test]
    fn diff_round_trips_through_json() {
        let app = base();
        let diff = AppEvolution::new(5).diff(&app, 0);
        assert!(!diff.is_empty());
        let json = diff.to_value().to_json_string();
        let back = VersionDiff::from_value(&Value::parse(&json).expect("parse")).expect("decode");
        assert_eq!(back, diff);
    }

    #[test]
    fn evolve_grows_methods_and_injects_regression() {
        let app = base();
        let evo = AppEvolution::new(5);
        let (next, diff) = evo.evolve(&app, 0).expect("evolve");
        assert!(next.method_count() > app.method_count());
        let sigs = diff.injected_signatures();
        assert_eq!(sigs.len(), 1);
        let planted = next
            .screens()
            .flat_map(|s| s.actions.iter())
            .any(|a| a.crash.as_ref().map(|c| c.signature) == Some(sigs[0]));
        assert!(planted, "injected crash must land on an action");
    }

    #[test]
    fn touched_surface_tracks_renamed_screens() {
        let app = base();
        let diff = AppEvolution::new(5).diff(&app, 0);
        let touched = diff.touched(&app);
        assert!(!touched.is_empty());
        for op in &diff.ops {
            if let VersionOp::RenameScreen { screen, .. } = op {
                let old = abstract_hierarchy(&app.render_screen(*screen, 0)).id();
                assert!(touched.screens.contains(&old));
                let next = diff.apply(&app).expect("apply");
                let new = abstract_hierarchy(&next.render_screen(*screen, 0)).id();
                assert_ne!(old, new, "renamed screen must abstract differently");
            }
        }
    }

    #[test]
    fn split_preserves_validity_and_reachability() {
        let app = base();
        let mut diff = VersionDiff::empty(0);
        let victim = app
            .screens()
            .find(|s| s.id != app.start_screen() && s.actions.len() >= 2)
            .expect("splittable screen");
        diff.ops.push(VersionOp::SplitScreen {
            screen: victim.id,
            new_name: "Fresh".into(),
            methods: 4,
        });
        let next = diff.apply(&app).expect("apply");
        assert_eq!(next.screen_count(), app.screen_count() + 1);
        let host = next.screen(victim.id).expect("old screen survives");
        assert!(host
            .actions
            .iter()
            .any(|a| a.targets.iter().any(|t| next.screen(t.screen).is_some())));
    }

    #[test]
    fn untouched_screens_keep_their_identity_across_a_release() {
        let app = base();
        let evo = AppEvolution::new(9);
        let (next, diff) = evo.evolve(&app, 0).expect("evolve");
        let touched = diff.touched(&app);
        for s in app.screens() {
            let old = abstract_hierarchy(&app.render_screen(s.id, 0)).id();
            if !touched.screens.contains(&old) {
                let new = abstract_hierarchy(&next.render_screen(s.id, 0)).id();
                assert_eq!(old, new, "untouched screen {} must keep identity", s.name);
            }
        }
    }
}
