//! The validated, immutable app specification.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use taopt_ui_model::{
    ActionId, ActivityId, Bounds, ScreenId, StochasticDigraph, UiHierarchy, Widget, WidgetClass,
};

use crate::error::AppSimError;
use crate::functionality::{Functionality, FunctionalityId};
use crate::method::MethodId;
use crate::spec::{FlowRule, LoginSpec, ScreenSpec};

/// A complete App Under Test.
///
/// `App` is an immutable specification; execution state lives in
/// [`crate::runtime::AppRuntime`]. Construct apps with
/// [`crate::builder::AppBuilder`] or [`crate::generator::generate_app`].
#[derive(Debug, Clone)]
pub struct App {
    pub(crate) name: String,
    pub(crate) screens: BTreeMap<ScreenId, ScreenSpec>,
    pub(crate) functionalities: Vec<Functionality>,
    pub(crate) start_screen: ScreenId,
    pub(crate) flows: Vec<FlowRule>,
    pub(crate) login: Option<LoginSpec>,
    pub(crate) method_count: usize,
    /// Framework methods covered by merely starting the app.
    pub(crate) startup_methods: Vec<MethodId>,
    pub(crate) action_index: HashMap<ActionId, ScreenId>,
}

impl App {
    /// Validates parts and assembles an app. Used by [`crate::AppBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        name: String,
        screens: Vec<ScreenSpec>,
        functionalities: Vec<Functionality>,
        start_screen: ScreenId,
        flows: Vec<FlowRule>,
        login: Option<LoginSpec>,
        method_count: usize,
        startup_methods: Vec<MethodId>,
    ) -> Result<Self, AppSimError> {
        if screens.is_empty() {
            return Err(AppSimError::NoScreens);
        }
        let mut map = BTreeMap::new();
        let mut action_index = HashMap::new();
        for s in screens {
            let id = s.id;
            for a in &s.actions {
                if action_index.insert(a.id, id).is_some() {
                    return Err(AppSimError::DuplicateAction(a.id));
                }
                for t in &a.targets {
                    if !t.weight.is_finite() || t.weight < 0.0 {
                        return Err(AppSimError::BadWeight(t.weight));
                    }
                }
            }
            if map.insert(id, s).is_some() {
                return Err(AppSimError::DuplicateScreen(id));
            }
        }
        if !map.contains_key(&start_screen) {
            return Err(AppSimError::BadStartScreen(start_screen));
        }
        // Check targets exist.
        for s in map.values() {
            for a in &s.actions {
                for t in &a.targets {
                    if !map.contains_key(&t.screen) {
                        return Err(AppSimError::DanglingTarget {
                            action: a.id,
                            target: t.screen,
                        });
                    }
                }
            }
        }
        if let Some(l) = &login {
            let ok = map.contains_key(&l.login_screen)
                && map.contains_key(&l.home_screen)
                && map
                    .get(&l.login_screen)
                    .map(|s| s.action(l.login_action).is_some())
                    .unwrap_or(false);
            if !ok {
                return Err(AppSimError::BadLoginSpec);
            }
        }
        Ok(App {
            name,
            screens: map,
            functionalities,
            start_screen,
            flows,
            login,
            method_count,
            startup_methods,
            action_index,
        })
    }

    /// Rebuilds the action index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.action_index = self
            .screens
            .values()
            .flat_map(|s| s.actions.iter().map(move |a| (a.id, s.id)))
            .collect();
    }

    /// App name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The screen the app starts on (the login wall if gated).
    pub fn start_screen(&self) -> ScreenId {
        self.start_screen
    }

    /// All screens, ordered by id.
    pub fn screens(&self) -> impl Iterator<Item = &ScreenSpec> {
        self.screens.values()
    }

    /// Number of screens.
    pub fn screen_count(&self) -> usize {
        self.screens.len()
    }

    /// Looks up a screen.
    pub fn screen(&self, id: ScreenId) -> Option<&ScreenSpec> {
        self.screens.get(&id)
    }

    /// The screen hosting the given action.
    pub fn screen_of_action(&self, id: ActionId) -> Option<ScreenId> {
        self.action_index.get(&id).copied()
    }

    /// Declared functionalities.
    pub fn functionalities(&self) -> &[Functionality] {
        &self.functionalities
    }

    /// Flow rules.
    pub fn flows(&self) -> &[FlowRule] {
        &self.flows
    }

    /// Login gate, if the app requires authentication.
    pub fn login(&self) -> Option<&LoginSpec> {
        self.login.as_ref()
    }

    /// Total number of methods in the app (the coverage denominator).
    pub fn method_count(&self) -> usize {
        self.method_count
    }

    /// Methods covered by app startup.
    pub fn startup_methods(&self) -> &[MethodId] {
        &self.startup_methods
    }

    /// The set of distinct activities.
    pub fn activities(&self) -> BTreeSet<ActivityId> {
        self.screens.values().map(|s| s.activity).collect()
    }

    /// Screens hosted by the given activity.
    pub fn screens_of_activity(&self, a: ActivityId) -> Vec<ScreenId> {
        self.screens
            .values()
            .filter(|s| s.activity == a)
            .map(|s| s.id)
            .collect()
    }

    /// Ground-truth membership: screens per functionality.
    pub fn screens_of_functionality(&self, f: FunctionalityId) -> Vec<ScreenId> {
        self.screens
            .values()
            .filter(|s| s.functionality == f)
            .map(|s| s.id)
            .collect()
    }

    /// The ground-truth *structural* transition graph over concrete screen
    /// ids, with one unit of weight per (action, target) pair scaled by
    /// target weight. Tools induce different probabilities at run time; this
    /// graph captures app structure for analysis and tests.
    pub fn structural_graph(&self) -> StochasticDigraph {
        let mut g = StochasticDigraph::new();
        for s in self.screens.values() {
            g.add_node(s.id.0 as u64);
            for a in &s.actions {
                let total = a.total_target_weight();
                if total <= 0.0 {
                    continue;
                }
                for t in &a.targets {
                    g.add_edge(s.id.0 as u64, t.screen.0 as u64, t.weight / total)
                        .expect("validated weights");
                }
            }
        }
        g.normalized()
    }

    /// Renders the widget hierarchy of a screen (feed page 0).
    ///
    /// `visit_count` feeds the volatile text (badge counters, timestamps,
    /// product names…) so consecutive visits differ textually but abstract
    /// to the same [`taopt_ui_model::AbstractScreenId`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a screen of this app.
    pub fn render_screen(&self, id: ScreenId, visit_count: u64) -> UiHierarchy {
        self.render_screen_page(id, visit_count, 0)
    }

    /// Renders a screen at a given feed page. Pages beyond 0 append one
    /// structural row per page, so each page abstracts to a distinct
    /// screen identity (scrolling reveals genuinely new UI).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a screen of this app.
    pub fn render_screen_page(&self, id: ScreenId, visit_count: u64, page: usize) -> UiHierarchy {
        let spec = self
            .screens
            .get(&id)
            .expect("render_screen: unknown screen");
        let mut root = Widget::container(WidgetClass::LinearLayout);
        root.resource_id = Some(format!("{}_root", spec.name));
        // Title bar with volatile text.
        root = root.with_child(
            Widget::text_view(&format!("{}_title", spec.name), &spec.name)
                .with_text(&format!("{} · view {}", spec.name, visit_count))
                .with_bounds(Bounds::new(0, 0, 1080, 120)),
        );
        // Decorative widgets (images, labels) with volatile text.
        for d in 0..spec.decorations {
            root = root.with_child(
                Widget::leaf(WidgetClass::ImageView, &format!("{}_deco{}", spec.name, d))
                    .with_text(&format!(
                        "promo {}",
                        visit_count.wrapping_mul(31).wrapping_add(d as u64)
                    ))
                    .with_bounds(Bounds::new(
                        0,
                        120 + 80 * d as i32,
                        1080,
                        200 + 80 * d as i32,
                    )),
            );
        }
        // Feed rows revealed by pagination.
        for pg in 0..page.min(spec.feed.as_ref().map(|f| f.pages).unwrap_or(0)) {
            root = root.with_child(
                Widget::leaf(
                    WidgetClass::TextView,
                    &format!("{}_feedrow{}", spec.name, pg),
                )
                .with_text(&format!("feed item {pg} / view {visit_count}"))
                .with_bounds(Bounds::new(
                    0,
                    2000 + 60 * pg as i32,
                    1080,
                    2060 + 60 * pg as i32,
                )),
            );
        }
        // Interactive widgets.
        for (i, a) in spec.actions.iter().enumerate() {
            let class = match a.kind {
                taopt_ui_model::ActionKind::Click => WidgetClass::Button,
                taopt_ui_model::ActionKind::LongClick => WidgetClass::ImageButton,
                taopt_ui_model::ActionKind::Scroll => WidgetClass::RecyclerView,
                taopt_ui_model::ActionKind::SetText => WidgetClass::EditText,
                taopt_ui_model::ActionKind::Swipe => WidgetClass::FrameLayout,
                _ => WidgetClass::FrameLayout,
            };
            let y = 400 + 90 * i as i32;
            root = root.with_child(
                Widget::leaf(class, &a.widget_rid)
                    .with_text(&a.label)
                    .with_bounds(Bounds::new(40, y, 1040, y + 80))
                    .with_affordance(a.id, a.kind),
            );
        }
        UiHierarchy::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::spec::ActionSpec;
    use taopt_ui_model::abstraction::abstract_hierarchy;

    fn two_screen_app() -> App {
        let mut b = AppBuilder::new("demo");
        let f = b.add_functionality("Main");
        let act = b.add_activity();
        let home = b.add_screen(act, f, "Home");
        let detail = b.add_screen(act, f, "Detail");
        b.add_click(home, detail, "open", "Open");
        b.add_click(detail, home, "close", "Close");
        b.set_start(home);
        b.build().expect("valid app")
    }

    #[test]
    fn assemble_validates_targets() {
        let mut b = AppBuilder::new("bad");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let s = b.add_screen(act, f, "S");
        // Manually create a dangling action.
        b.push_raw_action(
            s,
            ActionSpec::click_to(ActionId(999), "x", "y", ScreenId(4242)),
        );
        b.set_start(s);
        assert!(matches!(
            b.build(),
            Err(AppSimError::DanglingTarget {
                target: ScreenId(4242),
                ..
            })
        ));
    }

    #[test]
    fn render_is_structurally_stable_across_visits() {
        let app = two_screen_app();
        let home = app.start_screen();
        let h1 = app.render_screen(home, 1);
        let h2 = app.render_screen(home, 2);
        assert_ne!(h1, h2, "volatile text must differ");
        assert_eq!(
            abstract_hierarchy(&h1).id(),
            abstract_hierarchy(&h2).id(),
            "abstraction must be stable"
        );
    }

    #[test]
    fn distinct_screens_render_distinct_abstractions() {
        let app = two_screen_app();
        let ids: Vec<_> = app.screens().map(|s| s.id).collect();
        let a = abstract_hierarchy(&app.render_screen(ids[0], 0));
        let b = abstract_hierarchy(&app.render_screen(ids[1], 0));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn action_index_maps_to_hosting_screen() {
        let app = two_screen_app();
        for s in app.screens() {
            for a in &s.actions {
                assert_eq!(app.screen_of_action(a.id), Some(s.id));
            }
        }
        assert_eq!(app.screen_of_action(ActionId(12345)), None);
    }

    #[test]
    fn structural_graph_rows_are_stochastic() {
        let app = two_screen_app();
        let g = app.structural_graph();
        assert_eq!(g.node_count(), 2);
        for n in g.nodes() {
            let row: f64 = g.out_edges(n).map(|(_, w)| w).sum();
            assert!(row == 0.0 || (row - 1.0).abs() < 1e-9);
        }
    }
}
