//! Method identifiers — the unit of code coverage.
//!
//! The paper measures *method coverage* collected by MiniTrace at the
//! DalvikVM level. The simulation assigns each app a table of abstract
//! method ids; exercising behaviour (rendering a screen, firing a handler,
//! completing a flow) covers method sets deterministically.

use std::fmt;

/// Identifier of one app method (unique within an app).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MethodId(pub u32);

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A compact allocator for method ids, used by the app generator.
#[derive(Debug, Clone, Default)]
pub struct MethodAllocator {
    next: u32,
}

impl MethodAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates one fresh method id.
    pub fn alloc(&mut self) -> MethodId {
        let id = MethodId(self.next);
        self.next += 1;
        id
    }

    /// Allocates `n` fresh consecutive method ids.
    pub fn alloc_many(&mut self, n: usize) -> Vec<MethodId> {
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Total number of ids allocated so far.
    pub fn allocated(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_dense_and_unique() {
        let mut a = MethodAllocator::new();
        let first = a.alloc();
        let batch = a.alloc_many(3);
        assert_eq!(first, MethodId(0));
        assert_eq!(batch, vec![MethodId(1), MethodId(2), MethodId(3)]);
        assert_eq!(a.allocated(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(MethodId(17).to_string(), "m17");
    }
}
