//! Error types for app specification and execution.

use std::error::Error;
use std::fmt;

use taopt_ui_model::{ActionId, ScreenId};

/// Errors produced while building or running a synthetic app.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppSimError {
    /// An action referenced a screen that does not exist.
    DanglingTarget {
        /// The action whose target is missing.
        action: ActionId,
        /// The missing screen.
        target: ScreenId,
    },
    /// A screen id was defined twice.
    DuplicateScreen(ScreenId),
    /// An action id was defined twice.
    DuplicateAction(ActionId),
    /// The app has no screens.
    NoScreens,
    /// The configured start screen does not exist.
    BadStartScreen(ScreenId),
    /// An action was executed that the current screen does not offer.
    ActionNotAvailable(ActionId),
    /// A transition weight was invalid.
    BadWeight(f64),
    /// The login spec references a missing screen or action.
    BadLoginSpec,
    /// An evolution op referenced a missing entity or would create a
    /// duplicate.
    EvolutionTarget(String),
}

impl fmt::Display for AppSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppSimError::DanglingTarget { action, target } => {
                write!(f, "action {action} targets missing screen {target}")
            }
            AppSimError::DuplicateScreen(s) => write!(f, "screen {s} defined twice"),
            AppSimError::DuplicateAction(a) => write!(f, "action {a} defined twice"),
            AppSimError::NoScreens => write!(f, "app defines no screens"),
            AppSimError::BadStartScreen(s) => write!(f, "start screen {s} does not exist"),
            AppSimError::ActionNotAvailable(a) => {
                write!(f, "action {a} is not offered by the current screen")
            }
            AppSimError::BadWeight(w) => write!(f, "invalid transition weight {w}"),
            AppSimError::BadLoginSpec => {
                write!(f, "login spec references a missing screen or action")
            }
            AppSimError::EvolutionTarget(msg) => write!(f, "evolution op invalid: {msg}"),
        }
    }
}

impl Error for AppSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let errs = [
            AppSimError::DanglingTarget {
                action: ActionId(1),
                target: ScreenId(2),
            },
            AppSimError::DuplicateScreen(ScreenId(1)),
            AppSimError::DuplicateAction(ActionId(1)),
            AppSimError::NoScreens,
            AppSimError::BadStartScreen(ScreenId(0)),
            AppSimError::ActionNotAvailable(ActionId(0)),
            AppSimError::BadWeight(-1.0),
            AppSimError::BadLoginSpec,
            AppSimError::EvolutionTarget("missing action".into()),
        ];
        for e in errs {
            let m = e.to_string();
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
