//! Latent crash points — the simulation's stand-in for real app crashes.
//!
//! The paper counts *unique crashes*, deduplicated by the code location in
//! the stack trace collected from logcat. Here each app embeds a set of
//! latent [`CrashPoint`]s attached to deep actions; firing the action under
//! the right conditions emits a [`CrashSignature`] (the dedup key) and
//! restarts the app, exactly like a real crash under a test harness.

use std::fmt;

/// The deduplication key of a crash: models the top code location of the
/// stack trace (paper §6.1, "code locations in stack traces are used to
/// identify unique crashes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CrashSignature(pub u64);

impl fmt::Display for CrashSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash#{:08x}", self.0)
    }
}

impl CrashSignature {
    /// Renders a synthetic logcat-style stack trace for this signature.
    pub fn stack_trace(&self, app_name: &str) -> String {
        format!(
            "FATAL EXCEPTION: main\nProcess: com.example.{}\njava.lang.RuntimeException: \
             simulated fault\n\tat com.example.{}.Handler{:x}.onEvent(Handler.java:{})",
            app_name.to_lowercase().replace(' ', ""),
            app_name.to_lowercase().replace(' ', ""),
            self.0,
            (self.0 % 900) + 17,
        )
    }
}

/// A latent fault attached to an action.
///
/// The crash fires with probability [`CrashPoint::probability`] each time
/// the action executes, but only once the current exploration *episode* has
/// visited at least [`CrashPoint::min_local_depth`] distinct screens of the
/// action's functionality — modelling crashes that require stateful, deep
/// flows (the kind that redundant shallow exploration keeps missing and
/// dedicated subspace exploration finds, Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPoint {
    /// Per-execution firing probability once armed.
    pub probability: f64,
    /// Distinct in-functionality screens required in the current episode
    /// before the fault is armed.
    pub min_local_depth: usize,
    /// Dedup signature emitted when the fault fires.
    pub signature: CrashSignature,
}

impl CrashPoint {
    /// Creates a crash point.
    pub fn new(probability: f64, min_local_depth: usize, signature: CrashSignature) -> Self {
        CrashPoint {
            probability,
            min_local_depth,
            signature,
        }
    }

    /// Whether the fault is armed at the given episode depth.
    pub fn armed(&self, local_depth: usize) -> bool {
        local_depth >= self.min_local_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_respects_depth() {
        let cp = CrashPoint::new(0.5, 3, CrashSignature(1));
        assert!(!cp.armed(0));
        assert!(!cp.armed(2));
        assert!(cp.armed(3));
        assert!(cp.armed(10));
    }

    #[test]
    fn stack_trace_mentions_app_and_signature() {
        let t = CrashSignature(0xabcd).stack_trace("Ms Word");
        assert!(t.contains("com.example.msword"));
        assert!(t.contains("abcd"));
        assert!(t.contains("FATAL EXCEPTION"));
    }

    #[test]
    fn signature_display() {
        assert_eq!(CrashSignature(0xff).to_string(), "crash#000000ff");
    }
}
