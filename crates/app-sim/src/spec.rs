//! Static specification of an app's UI space.

use taopt_ui_model::{ActionId, ActionKind, ActivityId, ScreenId};

use crate::crash::CrashPoint;
use crate::functionality::FunctionalityId;
use crate::method::MethodId;

/// One possible outcome of executing an action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionTarget {
    /// Destination screen.
    pub screen: ScreenId,
    /// Relative weight among this action's targets (normalized at
    /// execution time).
    pub weight: f64,
}

impl TransitionTarget {
    /// Creates a target with the given relative weight.
    pub fn new(screen: ScreenId, weight: f64) -> Self {
        TransitionTarget { screen, weight }
    }
}

/// An interactive affordance on a screen.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSpec {
    /// App-unique action id.
    pub id: ActionId,
    /// Gesture class.
    pub kind: ActionKind,
    /// Resource id of the widget carrying this action.
    pub widget_rid: String,
    /// Visible label (volatile text may be appended at render time).
    pub label: String,
    /// Possible destinations (empty ⇒ the action stays on the screen,
    /// e.g. a scroll or a text edit).
    pub targets: Vec<TransitionTarget>,
    /// Handler methods covered on first execution per instance.
    pub methods: Vec<MethodId>,
    /// Latent fault, if any.
    pub crash: Option<CrashPoint>,
}

impl ActionSpec {
    /// Creates a minimal click action with one deterministic target.
    pub fn click_to(id: ActionId, widget_rid: &str, label: &str, target: ScreenId) -> Self {
        ActionSpec {
            id,
            kind: ActionKind::Click,
            widget_rid: widget_rid.to_owned(),
            label: label.to_owned(),
            targets: vec![TransitionTarget::new(target, 1.0)],
            methods: Vec::new(),
            crash: None,
        }
    }

    /// Creates a self-contained action that never leaves the screen.
    pub fn local(id: ActionId, kind: ActionKind, widget_rid: &str, label: &str) -> Self {
        ActionSpec {
            id,
            kind,
            widget_rid: widget_rid.to_owned(),
            label: label.to_owned(),
            targets: Vec::new(),
            methods: Vec::new(),
            crash: None,
        }
    }

    /// Attaches handler methods.
    pub fn with_methods(mut self, methods: Vec<MethodId>) -> Self {
        self.methods = methods;
        self
    }

    /// Attaches a crash point.
    pub fn with_crash(mut self, crash: CrashPoint) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Total relative weight of all targets.
    pub fn total_target_weight(&self) -> f64 {
        self.targets.iter().map(|t| t.weight).sum()
    }
}

/// One UI screen of the app.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenSpec {
    /// App-unique screen id.
    pub id: ScreenId,
    /// Hosting activity (the ParaAim partition unit).
    pub activity: ActivityId,
    /// Ground-truth functionality cluster.
    pub functionality: FunctionalityId,
    /// Human-readable name (e.g. "GoodsDetail").
    pub name: String,
    /// Interactive affordances.
    pub actions: Vec<ActionSpec>,
    /// Number of decorative (non-interactive) widgets rendered.
    pub decorations: usize,
    /// Methods covered the first time an instance renders this screen.
    pub methods: Vec<MethodId>,
    /// Whether this screen is the entry screen of its functionality.
    pub is_entry: bool,
    /// Optional paginated content feed.
    pub feed: Option<FeedSpec>,
}

impl ScreenSpec {
    /// Creates a screen with no actions.
    pub fn new(
        id: ScreenId,
        activity: ActivityId,
        functionality: FunctionalityId,
        name: impl Into<String>,
    ) -> Self {
        ScreenSpec {
            id,
            activity,
            functionality,
            name: name.into(),
            actions: Vec::new(),
            decorations: 2,
            methods: Vec::new(),
            is_entry: false,
            feed: None,
        }
    }

    /// The action with the given id, if present on this screen.
    pub fn action(&self, id: ActionId) -> Option<&ActionSpec> {
        self.actions.iter().find(|a| a.id == id)
    }
}

/// A multi-screen user flow whose completion covers extra methods.
///
/// A flow completes for a testing instance once the instance has visited
/// every screen in [`FlowRule::screens`]. Flows that span multiple
/// activities are precisely what the activity-granularity baseline severs
/// (§2: "we will not be able to cover core functionalities such as adding
/// goods to the shopping bag and checking out").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRule {
    /// Screens that must all be visited by one instance.
    pub screens: Vec<ScreenId>,
    /// Methods covered on completion.
    pub methods: Vec<MethodId>,
}

/// A paginated content feed on a screen (extension).
///
/// Real list screens expose effectively unbounded content: scrolling
/// reveals new items, new view holders and new code paths. A `FeedSpec`
/// gives a screen `pages` additional states, each structurally distinct
/// (so it abstracts to a fresh screen identity) and each carrying its own
/// method set, covered on first reach per instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedSpec {
    /// Number of additional pages beyond page 0.
    pub pages: usize,
    /// Methods covered by reaching each page (index 0 = page 1).
    pub page_methods: Vec<Vec<MethodId>>,
}

/// Login gate configuration for apps that require authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoginSpec {
    /// The login wall screen shown at app start.
    pub login_screen: ScreenId,
    /// The action an auto-login script fires to pass the wall.
    pub login_action: ActionId,
    /// The screen reached after a successful login.
    pub home_screen: ScreenId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn click_to_has_single_deterministic_target() {
        let a = ActionSpec::click_to(ActionId(1), "rid", "Go", ScreenId(5));
        assert_eq!(a.targets.len(), 1);
        assert!((a.total_target_weight() - 1.0).abs() < 1e-12);
        assert_eq!(a.kind, ActionKind::Click);
    }

    #[test]
    fn local_action_stays() {
        let a = ActionSpec::local(ActionId(2), ActionKind::Scroll, "list", "");
        assert!(a.targets.is_empty());
        assert_eq!(a.total_target_weight(), 0.0);
    }

    #[test]
    fn builders_attach_methods_and_crash() {
        use crate::crash::{CrashPoint, CrashSignature};
        let a = ActionSpec::local(ActionId(1), ActionKind::Click, "w", "l")
            .with_methods(vec![MethodId(1), MethodId(2)])
            .with_crash(CrashPoint::new(0.1, 2, CrashSignature(9)));
        assert_eq!(a.methods.len(), 2);
        assert!(a.crash.is_some());
    }

    #[test]
    fn screen_action_lookup() {
        let mut s = ScreenSpec::new(ScreenId(0), ActivityId(0), FunctionalityId(0), "Main");
        s.actions
            .push(ActionSpec::click_to(ActionId(7), "x", "y", ScreenId(1)));
        assert!(s.action(ActionId(7)).is_some());
        assert!(s.action(ActionId(8)).is_none());
    }
}
