//! Functionalities — the ground-truth loosely coupled UI subspaces.
//!
//! A functionality is a cohesive set of screens implementing one user-facing
//! feature (shopping, account settings, …). The simulator knows the true
//! functionality of every screen; TaOPT never reads it (it infers subspaces
//! from traces alone), but the evaluation metrics use the ground truth to
//! measure subspace-overlap (Table 1) and partition quality.

use std::fmt;

/// Identifier of a functionality cluster within an app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FunctionalityId(pub u32);

impl fmt::Display for FunctionalityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Metadata about one functionality cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Functionality {
    /// Cluster id.
    pub id: FunctionalityId,
    /// Human-readable name (e.g. "Shopping", "AccountSettings").
    pub name: String,
}

impl Functionality {
    /// Creates a functionality.
    pub fn new(id: FunctionalityId, name: impl Into<String>) -> Self {
        Functionality {
            id,
            name: name.into(),
        }
    }
}

impl fmt::Display for Functionality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.id)
    }
}

/// Stock functionality names used by the generator, echoing the kinds of
/// features the paper's motivating example lists.
pub const STOCK_FUNCTIONALITY_NAMES: &[&str] = &[
    "Shopping",
    "AccountSettings",
    "Search",
    "Messaging",
    "Media",
    "Checkout",
    "Social",
    "Maps",
    "History",
    "Notifications",
    "Downloads",
    "Help",
    "Editor",
    "Library",
    "Discover",
    "Profile",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_name_and_id() {
        let f = Functionality::new(FunctionalityId(3), "Shopping");
        assert_eq!(f.to_string(), "Shopping(f3)");
    }

    #[test]
    fn stock_names_are_unique() {
        let mut set = std::collections::HashSet::new();
        for n in STOCK_FUNCTIONALITY_NAMES {
            assert!(set.insert(n), "{n} duplicated");
        }
        assert!(STOCK_FUNCTIONALITY_NAMES.len() >= 12);
    }
}
