//! Synthetic Apps Under Test (AUTs) for the TaOPT reproduction.
//!
//! The paper evaluates on 18 closed-source Play-Store apps running inside
//! Android emulators. Neither the apps nor the emulators exist here, so this
//! crate provides the closest synthetic equivalent: a **generative model of
//! mobile apps** whose UI spaces have exactly the structure the paper's
//! analysis relies on — *loosely coupled UI subspaces* that are Globally
//! Sparse and Locally Dense (GS-LD, §3.2/§4.2):
//!
//! * apps are unions of **functionality clusters** (shopping, account
//!   settings, search, …) with dense internal transition structure;
//! * clusters connect to the rest of the app only through **hub screens**
//!   (main tab bars) and rare deep links;
//! * functionalities deliberately **span several activities** and activities
//!   host several functionalities (fragments), which is what defeats the
//!   ParaAim activity-granularity baseline (§3.3);
//! * a **method-coverage model** (screen methods, action-handler methods,
//!   multi-screen *flow* methods and a shared framework pool) stands in for
//!   DalvikVM-level MiniTrace coverage;
//! * **latent crash points** deep inside clusters stand in for real crashes
//!   collected from logcat.
//!
//! The [`runtime::AppRuntime`] executes tool actions against an [`App`]
//! spec: it samples successor screens from the stochastic transition model,
//! reports covered methods and crash events, and renders widget hierarchies
//! with volatile text (so that screen *abstraction* is doing real work).
//!
//! [`mod@catalog`] instantiates the paper's 18 subject apps (Table 3) with
//! per-app shape parameters seeded from the app name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod builder;
pub mod catalog;
pub mod crash;
pub mod error;
pub mod evolution;
pub mod functionality;
pub mod generator;
pub mod method;
pub mod runtime;
pub mod spec;

pub use app::App;
pub use builder::AppBuilder;
pub use catalog::{catalog, catalog_entries, CatalogEntry};
pub use crash::{CrashPoint, CrashSignature};
pub use error::AppSimError;
pub use evolution::{AppEvolution, TouchedSurface, VersionDiff, VersionOp};
pub use functionality::{Functionality, FunctionalityId};
pub use generator::{derive_app, generate_app, GeneratorConfig};
pub use method::MethodId;
pub use runtime::{AppRuntime, StepOutcome};
pub use spec::{ActionSpec, FeedSpec, FlowRule, LoginSpec, ScreenSpec, TransitionTarget};
