//! Hand-construction of app specifications.

use taopt_ui_model::{ActionId, ActionKind, ActivityId, ScreenId};

use crate::app::App;
use crate::crash::CrashPoint;
use crate::error::AppSimError;
use crate::functionality::{Functionality, FunctionalityId};
use crate::method::{MethodAllocator, MethodId};
use crate::spec::{ActionSpec, FlowRule, LoginSpec, ScreenSpec, TransitionTarget};

/// Incrementally builds an [`App`].
///
/// # Examples
///
/// ```
/// use taopt_app_sim::AppBuilder;
///
/// # fn main() -> Result<(), taopt_app_sim::AppSimError> {
/// let mut b = AppBuilder::new("mini");
/// let f = b.add_functionality("Main");
/// let act = b.add_activity();
/// let home = b.add_screen(act, f, "Home");
/// let about = b.add_screen(act, f, "About");
/// b.add_click(home, about, "btn_about", "About");
/// b.set_start(home);
/// let app = b.build()?;
/// assert_eq!(app.screen_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    screens: Vec<ScreenSpec>,
    functionalities: Vec<Functionality>,
    next_screen: u32,
    next_action: u32,
    next_activity: u32,
    start: Option<ScreenId>,
    flows: Vec<FlowRule>,
    login: Option<LoginSpec>,
    methods: MethodAllocator,
    startup_methods: Vec<MethodId>,
}

impl AppBuilder {
    /// Starts building an app with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            name: name.into(),
            screens: Vec::new(),
            functionalities: Vec::new(),
            next_screen: 0,
            next_action: 0,
            next_activity: 0,
            start: None,
            flows: Vec::new(),
            login: None,
            methods: MethodAllocator::new(),
            startup_methods: Vec::new(),
        }
    }

    /// Declares a functionality and returns its id.
    pub fn add_functionality(&mut self, name: &str) -> FunctionalityId {
        let id = FunctionalityId(self.functionalities.len() as u32);
        self.functionalities.push(Functionality::new(id, name));
        id
    }

    /// Allocates a fresh activity id.
    pub fn add_activity(&mut self) -> ActivityId {
        let id = ActivityId(self.next_activity);
        self.next_activity += 1;
        id
    }

    /// Adds a screen and returns its id.
    pub fn add_screen(
        &mut self,
        activity: ActivityId,
        functionality: FunctionalityId,
        name: &str,
    ) -> ScreenId {
        let id = ScreenId(self.next_screen);
        self.next_screen += 1;
        self.screens
            .push(ScreenSpec::new(id, activity, functionality, name));
        id
    }

    /// Marks a screen as its functionality's entry screen.
    pub fn mark_entry(&mut self, screen: ScreenId) {
        if let Some(s) = self.screen_mut(screen) {
            s.is_entry = true;
        }
    }

    /// Sets the number of decorative widgets on a screen.
    pub fn set_decorations(&mut self, screen: ScreenId, n: usize) {
        if let Some(s) = self.screen_mut(screen) {
            s.decorations = n;
        }
    }

    /// Allocates `n` fresh method ids.
    pub fn alloc_methods(&mut self, n: usize) -> Vec<MethodId> {
        self.methods.alloc_many(n)
    }

    /// Attaches render methods to a screen.
    pub fn set_screen_methods(&mut self, screen: ScreenId, methods: Vec<MethodId>) {
        if let Some(s) = self.screen_mut(screen) {
            s.methods = methods;
        }
    }

    /// Declares methods covered by app startup (shared framework pool).
    pub fn set_startup_methods(&mut self, methods: Vec<MethodId>) {
        self.startup_methods = methods;
    }

    /// Adds a deterministic click transition; returns the action id.
    pub fn add_click(
        &mut self,
        from: ScreenId,
        to: ScreenId,
        widget_rid: &str,
        label: &str,
    ) -> ActionId {
        self.add_action(from, ActionKind::Click, widget_rid, label, vec![(to, 1.0)])
    }

    /// Adds an action with a target distribution; returns the action id.
    pub fn add_action(
        &mut self,
        from: ScreenId,
        kind: ActionKind,
        widget_rid: &str,
        label: &str,
        targets: Vec<(ScreenId, f64)>,
    ) -> ActionId {
        let id = ActionId(self.next_action);
        self.next_action += 1;
        let spec = ActionSpec {
            id,
            kind,
            widget_rid: widget_rid.to_owned(),
            label: label.to_owned(),
            targets: targets
                .into_iter()
                .map(|(s, w)| TransitionTarget::new(s, w))
                .collect(),
            methods: Vec::new(),
            crash: None,
        };
        if let Some(s) = self.screen_mut(from) {
            s.actions.push(spec);
        }
        id
    }

    /// Attaches handler methods to an existing action.
    pub fn set_action_methods(&mut self, action: ActionId, methods: Vec<MethodId>) {
        for s in &mut self.screens {
            if let Some(a) = s.actions.iter_mut().find(|a| a.id == action) {
                a.methods = methods;
                return;
            }
        }
    }

    /// Attaches a crash point to an existing action.
    pub fn set_action_crash(&mut self, action: ActionId, crash: CrashPoint) {
        for s in &mut self.screens {
            if let Some(a) = s.actions.iter_mut().find(|a| a.id == action) {
                a.crash = Some(crash);
                return;
            }
        }
    }

    /// Attaches a paginated content feed to a screen: `pages` extra pages,
    /// each granting `methods_per_page` fresh methods on first reach.
    pub fn set_feed(&mut self, screen: ScreenId, pages: usize, methods_per_page: usize) {
        let page_methods: Vec<Vec<MethodId>> = (0..pages)
            .map(|_| self.methods.alloc_many(methods_per_page))
            .collect();
        if let Some(s) = self.screen_mut(screen) {
            s.feed = Some(crate::spec::FeedSpec {
                pages,
                page_methods,
            });
        }
    }

    /// Adds a flow rule.
    pub fn add_flow(&mut self, screens: Vec<ScreenId>, methods: Vec<MethodId>) {
        self.flows.push(FlowRule { screens, methods });
    }

    /// Configures the login gate.
    pub fn set_login(&mut self, login: LoginSpec) {
        self.login = Some(login);
    }

    /// Sets the start screen.
    pub fn set_start(&mut self, screen: ScreenId) {
        self.start = Some(screen);
    }

    /// Pushes a raw action spec (test helper for invalid specs).
    pub fn push_raw_action(&mut self, screen: ScreenId, action: ActionSpec) {
        if let Some(s) = self.screen_mut(screen) {
            s.actions.push(action);
        }
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns an [`AppSimError`] if the spec is inconsistent (dangling
    /// targets, duplicate ids, missing start screen…).
    pub fn build(self) -> Result<App, AppSimError> {
        let start = self.start.ok_or(AppSimError::NoScreens)?;
        App::assemble(
            self.name,
            self.screens,
            self.functionalities,
            start,
            self.flows,
            self.login,
            self.methods.allocated(),
            self.startup_methods,
        )
    }

    fn screen_mut(&mut self, id: ScreenId) -> Option<&mut ScreenSpec> {
        self.screens.iter_mut().find(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_fails() {
        assert!(AppBuilder::new("x").build().is_err());
    }

    #[test]
    fn start_screen_must_exist() {
        let mut b = AppBuilder::new("x");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let _s = b.add_screen(act, f, "S");
        b.set_start(ScreenId(99));
        assert_eq!(
            b.build().unwrap_err(),
            AppSimError::BadStartScreen(ScreenId(99))
        );
    }

    #[test]
    fn methods_attach_to_screens_and_actions() {
        let mut b = AppBuilder::new("x");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let s1 = b.add_screen(act, f, "A");
        let s2 = b.add_screen(act, f, "B");
        let m_screen = b.alloc_methods(3);
        let m_action = b.alloc_methods(2);
        b.set_screen_methods(s1, m_screen.clone());
        let a = b.add_click(s1, s2, "w", "l");
        b.set_action_methods(a, m_action.clone());
        b.set_start(s1);
        let app = b.build().unwrap();
        assert_eq!(app.method_count(), 5);
        assert_eq!(app.screen(s1).unwrap().methods, m_screen);
        assert_eq!(app.screen(s1).unwrap().action(a).unwrap().methods, m_action);
    }

    #[test]
    fn login_spec_is_validated() {
        let mut b = AppBuilder::new("x");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let s = b.add_screen(act, f, "S");
        b.set_start(s);
        b.set_login(LoginSpec {
            login_screen: s,
            login_action: ActionId(77),
            home_screen: s,
        });
        assert_eq!(b.build().unwrap_err(), AppSimError::BadLoginSpec);
    }
}
