//! Random generation of GS-LD apps.
//!
//! The generator materializes the paper's structural observations about
//! real mobile apps (§3.2, §4.2):
//!
//! * a **hub** screen (main tab bar) fans out to the entry screen of each
//!   functionality — these tab actions are the natural *subspace
//!   entrypoints*;
//! * each functionality is a **locally dense** cluster: a branching chain
//!   of screens with extra intra-cluster edges, local actions (scrolls,
//!   text fields) and return edges;
//! * clusters are **globally sparse**: apart from the hub tabs, only a few
//!   rare deep links cross clusters;
//! * screens are assigned to **activities** so that every functionality
//!   spans several activities and activities host several functionalities
//!   (the fragment effect that defeats activity-granularity partitioning);
//! * **flows** spanning multiple screens/activities carry bonus methods;
//! * **crash points** sit on deep actions, armed only after focused
//!   exploration of their cluster.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{ActionId, ActionKind, ActivityId, ScreenId};

use crate::app::App;
use crate::builder::AppBuilder;
use crate::crash::{CrashPoint, CrashSignature};
use crate::error::AppSimError;
use crate::evolution::VersionDiff;
use crate::functionality::STOCK_FUNCTIONALITY_NAMES;
use crate::spec::LoginSpec;

/// Shape parameters for app generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// App name (also drives labels and resource-id prefixes).
    pub name: String,
    /// RNG seed; the same config generates the same app.
    pub seed: u64,
    /// Number of functionality clusters (excluding the hub).
    pub n_functionalities: usize,
    /// Minimum screens per cluster.
    pub min_screens_per_functionality: usize,
    /// Maximum screens per cluster.
    pub max_screens_per_functionality: usize,
    /// Number of activities to spread screens over.
    pub n_activities: usize,
    /// Extra intra-cluster edges per screen (beyond the backbone tree).
    pub extra_intra_edges: f64,
    /// Number of rare cross-cluster deep links in the whole app.
    pub cross_links: usize,
    /// Local (non-navigating) actions per screen.
    pub local_actions_per_screen: usize,
    /// Decorative widgets per screen.
    pub decorations_per_screen: usize,
    /// Render methods per screen.
    pub methods_per_screen: usize,
    /// Handler methods per action.
    pub methods_per_action: usize,
    /// Shared framework methods covered at startup.
    pub startup_methods: usize,
    /// Flows per functionality.
    pub flows_per_functionality: usize,
    /// Screens spanned by each flow.
    pub flow_span: usize,
    /// Methods granted by each completed flow.
    pub methods_per_flow: usize,
    /// Latent crash points in the whole app.
    pub crash_points: usize,
    /// Per-execution crash probability once armed.
    pub crash_probability: f64,
    /// Fraction of the hosting cluster's screens an instance must have
    /// visited before a crash point arms.
    pub crash_depth_fraction: f64,
    /// Whether the app requires login.
    pub login: bool,
    /// Fraction of cluster screens carrying a paginated content feed
    /// (extension; 0.0 disables feeds and matches the paper's setting).
    pub feed_fraction: f64,
    /// Pages per feed.
    pub feed_pages: usize,
    /// Methods granted per feed page.
    pub methods_per_feed_page: usize,
}

impl GeneratorConfig {
    /// A small app suitable for unit tests and quick examples.
    pub fn small(name: &str, seed: u64) -> Self {
        GeneratorConfig {
            name: name.to_owned(),
            seed,
            n_functionalities: 4,
            min_screens_per_functionality: 5,
            max_screens_per_functionality: 8,
            n_activities: 5,
            extra_intra_edges: 1.0,
            cross_links: 2,
            local_actions_per_screen: 2,
            decorations_per_screen: 2,
            methods_per_screen: 12,
            methods_per_action: 3,
            startup_methods: 60,
            flows_per_functionality: 1,
            flow_span: 3,
            methods_per_flow: 20,
            crash_points: 4,
            crash_probability: 0.05,
            crash_depth_fraction: 0.5,
            login: false,
            feed_fraction: 0.0,
            feed_pages: 8,
            methods_per_feed_page: 4,
        }
    }

    /// A mid-sized app approximating the paper's industrial subjects.
    pub fn industrial(name: &str, seed: u64) -> Self {
        GeneratorConfig {
            name: name.to_owned(),
            seed,
            n_functionalities: 8,
            min_screens_per_functionality: 10,
            max_screens_per_functionality: 18,
            n_activities: 9,
            extra_intra_edges: 2.0,
            cross_links: 4,
            local_actions_per_screen: 3,
            decorations_per_screen: 3,
            methods_per_screen: 45,
            methods_per_action: 6,
            startup_methods: 400,
            flows_per_functionality: 3,
            flow_span: 5,
            methods_per_flow: 150,
            crash_points: 10,
            crash_probability: 0.08,
            crash_depth_fraction: 0.6,
            login: false,
            feed_fraction: 0.0,
            feed_pages: 12,
            methods_per_feed_page: 6,
        }
    }
}

/// Generates version 0 of an app from the given shape configuration.
///
/// Equivalent to [`derive_app`] with no diffs: an app *version* is always
/// `base spec + ordered diffs`, and this is the zero-diff case.
///
/// # Errors
///
/// Propagates [`AppSimError`] from app assembly; a well-formed config
/// always produces a valid app.
pub fn generate_app(config: &GeneratorConfig) -> Result<App, AppSimError> {
    derive_app(config, &[])
}

/// Derives an app version as `base spec + ordered diffs`: builds the base
/// app for `config`, then folds each [`VersionDiff`] in order.
///
/// # Errors
///
/// Propagates [`AppSimError`] from the base build or any diff application.
pub fn derive_app(config: &GeneratorConfig, diffs: &[VersionDiff]) -> Result<App, AppSimError> {
    let mut app = base_app(config)?;
    for diff in diffs {
        app = diff.apply(&app)?;
    }
    Ok(app)
}

/// Builds the base (version 0) app: the one-shot generative model.
fn base_app(config: &GeneratorConfig) -> Result<App, AppSimError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = AppBuilder::new(config.name.clone());

    // Activities: a shared pool so that clusters interleave across them.
    let activities: Vec<ActivityId> = (0..config.n_activities.max(1))
        .map(|_| b.add_activity())
        .collect();

    // Hub functionality + screen.
    let hub_f = b.add_functionality("Main");
    let hub = b.add_screen(activities[0], hub_f, &format!("{}MainTabs", config.name));
    b.mark_entry(hub);
    b.set_decorations(hub, config.decorations_per_screen);
    let hub_methods = b.alloc_methods(config.methods_per_screen);
    b.set_screen_methods(hub, hub_methods);

    // Startup framework pool.
    let startup = b.alloc_methods(config.startup_methods);
    b.set_startup_methods(startup);

    // Per-functionality clusters.
    let mut cluster_screens: Vec<Vec<ScreenId>> = Vec::new();
    // (action, depth of source, hosting cluster size)
    let mut deep_actions: Vec<(ActionId, usize, usize)> = Vec::new();
    for fi in 0..config.n_functionalities {
        let stock = STOCK_FUNCTIONALITY_NAMES[fi % STOCK_FUNCTIONALITY_NAMES.len()];
        let cycle = fi / STOCK_FUNCTIONALITY_NAMES.len();
        // Disambiguate recycled stock names: screen names (and the
        // resource ids derived from them) must be unique app-wide, or
        // distinct screens collide into one abstract identity.
        let fname = if cycle == 0 {
            stock.to_owned()
        } else {
            format!("{stock}{cycle}")
        };
        let fname = fname.as_str();
        let f = b.add_functionality(fname);
        let n_screens = rng
            .gen_range(config.min_screens_per_functionality..=config.max_screens_per_functionality);
        let mut screens: Vec<ScreenId> = Vec::with_capacity(n_screens);
        let mut depth: Vec<usize> = Vec::with_capacity(n_screens);
        for si in 0..n_screens {
            // Interleave activities: each cluster spans several activities,
            // each activity hosts several clusters.
            let act = activities[(fi + si / 3) % activities.len()];
            let s = b.add_screen(act, f, &format!("{}{}{}", config.name, fname, si));
            b.set_decorations(s, config.decorations_per_screen);
            if si == 0 {
                b.mark_entry(s);
                depth.push(0);
            } else {
                // Backbone: attach to a random earlier screen, biased
                // towards recent ones to create chains (depth).
                let lo = si.saturating_sub(3);
                let parent_idx = rng.gen_range(lo..si);
                let parent = screens[parent_idx];
                let a = b.add_click(
                    parent,
                    ScreenId(s.0),
                    &format!("{fname}_nav_{parent_idx}_{si}"),
                    &format!("Open {fname} {si}"),
                );
                let am = b.alloc_methods(config.methods_per_action);
                b.set_action_methods(a, am);
                let d = depth[parent_idx] + 1;
                depth.push(d);
                deep_actions.push((a, d, n_screens));
            }
            // Method mass concentrates on shallow screens (core UI code),
            // thinning steeply with depth — deep screens carry small
            // pieces of specialised logic. This mirrors real apps, where
            // the bulk of exercised code is shared shallow infrastructure
            // and tools' covered sets therefore overlap heavily (Fig. 3).
            let d = depth[si];
            let n_methods = (config.methods_per_screen * 5 / (2 + d + d / 2))
                .max(config.methods_per_screen / 5);
            let sm = b.alloc_methods(n_methods);
            b.set_screen_methods(s, sm);
            screens.push(s);
        }
        // Extra intra-cluster edges.
        let extra = (n_screens as f64 * config.extra_intra_edges) as usize;
        for e in 0..extra {
            let from = screens[rng.gen_range(0..n_screens)];
            let to = screens[rng.gen_range(0..n_screens)];
            if from == to {
                continue;
            }
            let a = b.add_click(
                from,
                to,
                &format!("{fname}_x{e}"),
                &format!("{fname} shortcut {e}"),
            );
            let am = b.alloc_methods(config.methods_per_action);
            b.set_action_methods(a, am);
        }
        // Return-to-entry edges from random deep screens keep clusters
        // internally navigable (locally dense) in both directions.
        if n_screens > 2 {
            for r in 0..2 {
                let from = screens[rng.gen_range(n_screens / 2..n_screens)];
                b.add_click(
                    from,
                    screens[0],
                    &format!("{fname}_home{r}"),
                    "Back to start",
                );
            }
        }
        // Paginated feeds on a fraction of cluster screens (extension).
        if config.feed_fraction > 0.0 {
            for s in &screens {
                if rng.gen::<f64>() < config.feed_fraction {
                    b.set_feed(*s, config.feed_pages, config.methods_per_feed_page);
                }
            }
        }
        // Local actions on each screen.
        for (si, s) in screens.iter().enumerate() {
            for li in 0..config.local_actions_per_screen {
                let kind = match li % 3 {
                    0 => ActionKind::Scroll,
                    1 => ActionKind::SetText,
                    _ => ActionKind::LongClick,
                };
                let a = b.add_action(*s, kind, &format!("{fname}_{si}_local{li}"), "", Vec::new());
                let am = b.alloc_methods(config.methods_per_action);
                b.set_action_methods(a, am);
            }
        }
        // Hub tab into this cluster: THE subspace entrypoint.
        let tab = b.add_click(
            hub,
            screens[0],
            &format!("tab_{fname}_{fi}"),
            &format!("{fname} tab"),
        );
        let tm = b.alloc_methods(config.methods_per_action);
        b.set_action_methods(tab, tm);
        // Entry screen links back to the hub.
        b.add_click(screens[0], hub, &format!("{fname}_to_home"), "Home");

        // Flows: consecutive deep screens (often across activities).
        for fl in 0..config.flows_per_functionality {
            if n_screens >= config.flow_span {
                let start = rng.gen_range(0..=n_screens - config.flow_span);
                let span: Vec<ScreenId> = screens[start..start + config.flow_span].to_vec();
                let fm = b.alloc_methods(config.methods_per_flow);
                b.add_flow(span, fm);
            } else {
                let _ = fl;
            }
        }
        cluster_screens.push(screens);
    }

    // Hub local actions.
    for li in 0..config.local_actions_per_screen {
        let a = b.add_action(
            hub,
            ActionKind::Scroll,
            &format!("hub_local{li}"),
            "",
            Vec::new(),
        );
        let am = b.alloc_methods(config.methods_per_action);
        b.set_action_methods(a, am);
    }

    // Rare cross-cluster deep links.
    for c in 0..config.cross_links {
        if cluster_screens.len() < 2 {
            break;
        }
        let fa = rng.gen_range(0..cluster_screens.len());
        let mut fb = rng.gen_range(0..cluster_screens.len());
        if fa == fb {
            fb = (fb + 1) % cluster_screens.len();
        }
        let from = *cluster_screens[fa]
            .choose(&mut rng)
            .expect("cluster nonempty");
        let to = *cluster_screens[fb]
            .choose(&mut rng)
            .expect("cluster nonempty");
        b.add_click(from, to, &format!("deeplink_{c}"), "See also");
    }

    // Crash points on the deepest actions; each arms only after the
    // instance has explored a substantial fraction of the hosting cluster.
    deep_actions.sort_by_key(|(_, d, _)| std::cmp::Reverse(*d));
    let mut sig_rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_c0de);
    for (i, (a, _, cluster_size)) in deep_actions.iter().take(config.crash_points).enumerate() {
        // Alternate shallow-armed and deep-armed faults: the former are
        // reachable by uncoordinated testing, the latter need the focused
        // in-cluster exploration that dedicated subspaces provide.
        let fraction = if i % 2 == 0 {
            config.crash_depth_fraction * 0.55
        } else {
            config.crash_depth_fraction * 1.4
        };
        let min_depth = ((*cluster_size as f64 * fraction.min(0.95)).ceil() as usize).max(3);
        b.set_action_crash(
            *a,
            CrashPoint::new(
                config.crash_probability,
                min_depth,
                CrashSignature(sig_rng.gen::<u64>() ^ i as u64),
            ),
        );
    }

    // Login gate.
    if config.login {
        let f = b.add_functionality("Auth");
        let wall = b.add_screen(activities[0], f, &format!("{}Login", config.name));
        let login_action = b.add_click(wall, hub, "btn_sign_in", "Sign in");
        // Decoy actions on the wall that go nowhere.
        b.add_action(wall, ActionKind::SetText, "edit_user", "", Vec::new());
        b.add_action(wall, ActionKind::SetText, "edit_pass", "", Vec::new());
        b.set_login(LoginSpec {
            login_screen: wall,
            login_action,
            home_screen: hub,
        });
        b.set_start(wall);
    } else {
        b.set_start(hub);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::small("t", 11);
        let a = generate_app(&cfg).unwrap();
        let b = generate_app(&cfg).unwrap();
        assert_eq!(a.screen_count(), b.screen_count());
        assert_eq!(a.method_count(), b.method_count());
        let sa: Vec<_> = a.screens().map(|s| s.name.clone()).collect();
        let sb: Vec<_> = b.screens().map(|s| s.name.clone()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_app(&GeneratorConfig::small("t", 1)).unwrap();
        let b = generate_app(&GeneratorConfig::small("t", 2)).unwrap();
        // Screen counts are drawn from a range, methods depend on them.
        assert!(a.method_count() != b.method_count() || a.screen_count() != b.screen_count());
    }

    #[test]
    fn clusters_span_multiple_activities() {
        let app = generate_app(&GeneratorConfig::industrial("t", 5)).unwrap();
        let mut spanning = 0;
        for f in app
            .functionalities()
            .iter()
            .filter(|f| f.name != "Main" && f.name != "Auth")
        {
            let acts: BTreeSet<_> = app
                .screens_of_functionality(f.id)
                .iter()
                .map(|s| app.screen(*s).unwrap().activity)
                .collect();
            if acts.len() >= 2 {
                spanning += 1;
            }
        }
        assert!(
            spanning >= app.functionalities().len() / 2,
            "most clusters span activities"
        );
    }

    #[test]
    fn activities_host_multiple_functionalities() {
        let app = generate_app(&GeneratorConfig::industrial("t", 5)).unwrap();
        let mut mixed = 0;
        for a in app.activities() {
            let funcs: BTreeSet<_> = app
                .screens_of_activity(a)
                .iter()
                .map(|s| app.screen(*s).unwrap().functionality)
                .collect();
            if funcs.len() >= 2 {
                mixed += 1;
            }
        }
        assert!(
            mixed >= 1,
            "at least one activity hosts several functionalities"
        );
    }

    #[test]
    fn hub_reaches_every_cluster_entry() {
        let app = generate_app(&GeneratorConfig::small("t", 3)).unwrap();
        let hub = app.start_screen();
        let hub_spec = app.screen(hub).unwrap();
        let reachable: BTreeSet<_> = hub_spec
            .actions
            .iter()
            .flat_map(|a| a.targets.iter().map(|t| t.screen))
            .collect();
        for f in app.functionalities().iter().filter(|f| f.name != "Main") {
            let entry = app
                .screens_of_functionality(f.id)
                .into_iter()
                .find(|s| app.screen(*s).unwrap().is_entry)
                .expect("cluster has entry");
            assert!(reachable.contains(&entry), "hub must reach {}", f.name);
        }
    }

    #[test]
    fn global_sparsity_cross_cluster_edges_are_rare() {
        let app = generate_app(&GeneratorConfig::industrial("t", 9)).unwrap();
        let mut intra = 0usize;
        let mut cross = 0usize;
        for s in app.screens() {
            for a in &s.actions {
                for t in &a.targets {
                    let tf = app.screen(t.screen).unwrap().functionality;
                    // Hub edges are the sanctioned entrypoints; skip them.
                    if app.screen(s.id).unwrap().name.ends_with("MainTabs")
                        || app.screen(t.screen).unwrap().name.ends_with("MainTabs")
                    {
                        continue;
                    }
                    if tf == s.functionality {
                        intra += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
        }
        assert!(
            (cross as f64) < 0.1 * intra as f64,
            "GS-LD violated: {cross} cross vs {intra} intra edges"
        );
    }

    #[test]
    fn login_config_gates_the_app() {
        let mut cfg = GeneratorConfig::small("t", 4);
        cfg.login = true;
        let app = generate_app(&cfg).unwrap();
        let login = app.login().expect("login spec");
        assert_eq!(app.start_screen(), login.login_screen);
        assert_ne!(login.home_screen, login.login_screen);
    }

    #[test]
    fn crash_points_exist_and_sit_deep() {
        let app = generate_app(&GeneratorConfig::industrial("t", 8)).unwrap();
        let crashes: Vec<_> = app
            .screens()
            .flat_map(|s| s.actions.iter().filter(|a| a.crash.is_some()))
            .collect();
        assert!(!crashes.is_empty());
        for a in crashes {
            let cp = a.crash.as_ref().unwrap();
            assert!(cp.min_local_depth >= 1);
            assert!(cp.probability > 0.0 && cp.probability < 1.0);
        }
    }
}
