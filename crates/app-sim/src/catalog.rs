//! The 18 subject apps of the paper (Table 3), as synthetic equivalents.
//!
//! Each entry carries the metadata row from Table 3 (name, version,
//! category, approximate install count, login requirement) plus a size
//! class that shapes the generated app so that relative method-pool sizes
//! track the relative coverage magnitudes reported in Table 4.

use crate::app::App;
use crate::evolution::AppEvolution;
use crate::generator::{generate_app, GeneratorConfig};

/// Relative size of an app's code base and UI space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// ~5k methods (e.g. Filters For Selfie).
    Small,
    /// ~15k methods.
    Medium,
    /// ~35k methods.
    Large,
    /// ~70k methods (e.g. Zedge).
    ExtraLarge,
}

/// One row of the subject-app table.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// App name as in Table 3.
    pub name: &'static str,
    /// Version string from Table 3.
    pub version: &'static str,
    /// Play-Store category from Table 3.
    pub category: &'static str,
    /// Approximate install count from Table 3 (e.g. "100m+").
    pub downloads: &'static str,
    /// Whether the app requires login (asterisked in Table 3).
    pub login: bool,
    /// Size class shaping the synthetic app.
    pub size: SizeClass,
}

impl CatalogEntry {
    /// A deterministic seed derived from the app name (FNV-1a).
    pub fn seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// The generator configuration for this app.
    pub fn config(&self) -> GeneratorConfig {
        let mut cfg = GeneratorConfig::industrial(self.name, self.seed());
        match self.size {
            SizeClass::Small => {
                cfg.n_functionalities = 12;
                cfg.min_screens_per_functionality = 20;
                cfg.max_screens_per_functionality = 34;
                cfg.n_activities = 12;
                cfg.methods_per_screen = 16;
                cfg.methods_per_action = 3;
                cfg.startup_methods = 2500;
                cfg.methods_per_flow = 120;
                cfg.crash_points = 10;
            }
            SizeClass::Medium => {
                cfg.n_functionalities = 16;
                cfg.min_screens_per_functionality = 26;
                cfg.max_screens_per_functionality = 42;
                cfg.n_activities = 16;
                cfg.methods_per_screen = 26;
                cfg.methods_per_action = 5;
                cfg.startup_methods = 6000;
                cfg.methods_per_flow = 120;
                cfg.crash_points = 10;
            }
            SizeClass::Large => {
                cfg.n_functionalities = 20;
                cfg.min_screens_per_functionality = 30;
                cfg.max_screens_per_functionality = 48;
                cfg.n_activities = 20;
                cfg.methods_per_screen = 36;
                cfg.methods_per_action = 7;
                cfg.startup_methods = 11000;
                cfg.methods_per_flow = 350;
                cfg.crash_points = 14;
            }
            SizeClass::ExtraLarge => {
                cfg.n_functionalities = 24;
                cfg.min_screens_per_functionality = 36;
                cfg.max_screens_per_functionality = 56;
                cfg.n_activities = 24;
                cfg.methods_per_screen = 48;
                cfg.methods_per_action = 9;
                cfg.startup_methods = 18000;
                cfg.methods_per_flow = 500;
                cfg.crash_points = 18;
            }
        }
        cfg.login = self.login;
        cfg
    }

    /// Generates the synthetic app for this entry (version 0).
    pub fn generate(&self) -> App {
        generate_app(&self.config()).expect("catalog configs are well-formed")
    }

    /// The release-train model for this entry, seeded from the app name so
    /// every version of every catalog app is reproducible.
    pub fn evolution(&self) -> AppEvolution {
        AppEvolution::new(self.seed().rotate_left(17) ^ 0xe501)
    }

    /// Generates version `version` of this app: the base build with
    /// `version` release diffs folded in (version 0 = [`Self::generate`]).
    pub fn generate_version(&self, version: u64) -> App {
        let evo = self.evolution();
        let mut app = self.generate();
        for v in 0..version {
            app = evo
                .evolve(&app, v)
                .expect("catalog evolution is well-formed")
                .0;
        }
        app
    }
}

/// The 18 rows of Table 3.
pub fn catalog_entries() -> Vec<CatalogEntry> {
    use SizeClass::*;
    vec![
        CatalogEntry {
            name: "AbsWorkout",
            version: "4.2.0",
            category: "Health & Fitness",
            downloads: "10m+",
            login: false,
            size: Small,
        },
        CatalogEntry {
            name: "AccuWeather",
            version: "7.4.1-5",
            category: "Weather",
            downloads: "100m+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "AutoScout24",
            version: "9.8.6",
            category: "Auto & Vehicles",
            downloads: "10m+",
            login: false,
            size: Large,
        },
        CatalogEntry {
            name: "Duolingo",
            version: "3.75.1",
            category: "Education",
            downloads: "100m+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "Filters For Selfie",
            version: "1.0.0",
            category: "Beauty",
            downloads: "10m+",
            login: false,
            size: Small,
        },
        CatalogEntry {
            name: "GoodRx",
            version: "5.3.6",
            category: "Medical",
            downloads: "10m+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "Google Chrome",
            version: "65.0.3325",
            category: "Communication",
            downloads: "10b+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "Google Translate",
            version: "6.5.0",
            category: "Books & Reference",
            downloads: "1b+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "Marvel Comics",
            version: "3.10.3",
            category: "Comics",
            downloads: "10m+",
            login: false,
            size: Small,
        },
        CatalogEntry {
            name: "Merriam-Webster",
            version: "4.1.2",
            category: "Books & Reference",
            downloads: "10m+",
            login: false,
            size: Small,
        },
        CatalogEntry {
            name: "Ms Word",
            version: "16.0.15",
            category: "Personal",
            downloads: "1b+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "Quizlet",
            version: "6.6.2",
            category: "Education",
            downloads: "10m+",
            login: true,
            size: Large,
        },
        CatalogEntry {
            name: "Sketch",
            version: "8.0.A.0.2",
            category: "Art & Design",
            downloads: "50m+",
            login: false,
            size: Small,
        },
        CatalogEntry {
            name: "TripAdvisor",
            version: "25.6.1",
            category: "Food & Drink",
            downloads: "100m+",
            login: true,
            size: Large,
        },
        CatalogEntry {
            name: "Trivago",
            version: "4.9.4",
            category: "Travel & Local",
            downloads: "50m+",
            login: false,
            size: Large,
        },
        CatalogEntry {
            name: "UC Browser",
            version: "13.0.0.1288",
            category: "Communication",
            downloads: "1b+",
            login: false,
            size: Medium,
        },
        CatalogEntry {
            name: "WEBTOON",
            version: "2.4.3",
            category: "Comics",
            downloads: "100m+",
            login: true,
            size: Large,
        },
        CatalogEntry {
            name: "Zedge",
            version: "7.34.4",
            category: "Personalization",
            downloads: "100m+",
            login: false,
            size: ExtraLarge,
        },
    ]
}

/// Generates all 18 synthetic apps.
pub fn catalog() -> Vec<App> {
    catalog_entries()
        .iter()
        .map(CatalogEntry::generate)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_entries_with_three_login_apps() {
        let entries = catalog_entries();
        assert_eq!(entries.len(), 18);
        let logins: Vec<_> = entries.iter().filter(|e| e.login).map(|e| e.name).collect();
        assert_eq!(logins, vec!["Quizlet", "TripAdvisor", "WEBTOON"]);
    }

    #[test]
    fn names_are_unique_and_seeds_differ() {
        let entries = catalog_entries();
        let mut names = std::collections::HashSet::new();
        let mut seeds = std::collections::HashSet::new();
        for e in &entries {
            assert!(names.insert(e.name));
            assert!(seeds.insert(e.seed()));
        }
    }

    #[test]
    fn generated_sizes_track_size_class() {
        let entries = catalog_entries();
        let small = entries
            .iter()
            .find(|e| e.name == "Filters For Selfie")
            .unwrap()
            .generate();
        let xl = entries
            .iter()
            .find(|e| e.name == "Zedge")
            .unwrap()
            .generate();
        assert!(
            xl.method_count() > 4 * small.method_count(),
            "Zedge ({}) should dwarf Filters For Selfie ({})",
            xl.method_count(),
            small.method_count()
        );
    }

    #[test]
    fn versioned_catalog_is_deterministic_and_grows() {
        let e = catalog_entries()
            .into_iter()
            .find(|e| e.name == "Sketch")
            .unwrap();
        let v2a = e.generate_version(2);
        let v2b = e.generate_version(2);
        assert_eq!(v2a.method_count(), v2b.method_count());
        assert_eq!(v2a.screen_count(), v2b.screen_count());
        let v0 = e.generate_version(0);
        assert!(v2a.method_count() > v0.method_count());
        assert!(v2a.screen_count() > v0.screen_count());
    }

    #[test]
    fn login_apps_start_gated() {
        let e = catalog_entries()
            .into_iter()
            .find(|e| e.name == "Quizlet")
            .unwrap();
        let app = e.generate();
        assert!(app.login().is_some());
        assert_eq!(app.start_screen(), app.login().unwrap().login_screen);
    }
}
