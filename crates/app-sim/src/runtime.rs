//! The app execution engine: one running copy of an app on one emulator.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taopt_ui_model::abstraction::{abstract_hierarchy, AbstractHierarchy};
use taopt_ui_model::{Action, ActionId, ScreenId, ScreenObservation, VirtualTime};

use crate::app::App;
use crate::crash::CrashSignature;
use crate::error::AppSimError;
use crate::functionality::FunctionalityId;
use crate::method::MethodId;

/// The outcome of executing one tool action.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The screen observed after the step.
    pub observation: ScreenObservation,
    /// Methods newly covered by this step (first time for this instance).
    pub newly_covered: Vec<MethodId>,
    /// Crash fired by this step, if any (the app has been restarted).
    pub crash: Option<CrashSignature>,
    /// Whether the step changed the current screen.
    pub transitioned: bool,
}

/// One running instance of an [`App`]: screen pointer, back stack,
/// per-instance coverage state, flow progress and crash arming.
///
/// Each testing instance in a parallel run owns one `AppRuntime`, seeded
/// independently — the seed plays the role of the per-instance random seed
/// the paper's baseline uses to diversify instances (§3.1).
#[derive(Debug, Clone)]
pub struct AppRuntime {
    app: Arc<App>,
    rng: StdRng,
    current: ScreenId,
    back_stack: Vec<ScreenId>,
    visit_counts: HashMap<ScreenId, u64>,
    covered_methods: HashSet<MethodId>,
    executed_actions: HashSet<ActionId>,
    visited_screens: HashSet<ScreenId>,
    completed_flows: HashSet<usize>,
    functionality_visits: HashMap<FunctionalityId, HashSet<ScreenId>>,
    logged_in: bool,
    restarts: u32,
    abstraction_cache: HashMap<(ScreenId, usize), Arc<AbstractHierarchy>>,
    feed_pages: HashMap<ScreenId, usize>,
    feed_pages_seen: HashMap<ScreenId, usize>,
}

impl AppRuntime {
    /// Launches the app; startup methods are pre-covered.
    pub fn launch(app: Arc<App>, seed: u64) -> Self {
        let mut rt = AppRuntime {
            current: app.start_screen(),
            rng: StdRng::seed_from_u64(seed),
            back_stack: Vec::new(),
            visit_counts: HashMap::new(),
            covered_methods: HashSet::new(),
            executed_actions: HashSet::new(),
            visited_screens: HashSet::new(),
            completed_flows: HashSet::new(),
            functionality_visits: HashMap::new(),
            logged_in: false,
            restarts: 0,
            abstraction_cache: HashMap::new(),
            feed_pages: HashMap::new(),
            feed_pages_seen: HashMap::new(),
            app,
        };
        let startup: Vec<MethodId> = rt.app.startup_methods().to_vec();
        for m in startup {
            rt.covered_methods.insert(m);
        }
        rt.arrive(rt.current);
        rt
    }

    /// The app being executed.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// The current screen id.
    pub fn current_screen(&self) -> ScreenId {
        self.current
    }

    /// Number of crash-induced restarts so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Methods covered so far by this instance.
    pub fn covered_methods(&self) -> &HashSet<MethodId> {
        &self.covered_methods
    }

    /// Distinct screens visited so far.
    pub fn visited_screens(&self) -> &HashSet<ScreenId> {
        &self.visited_screens
    }

    /// Runs the auto-login script once, if the app is gated and the wall is
    /// currently shown. Mirrors the paper's manual auto-login scripts
    /// "executed only once before the corresponding app starts to be
    /// tested in each testing instance" (§6.1).
    pub fn auto_login(&mut self, time: VirtualTime) -> Option<StepOutcome> {
        let login = *self.app.login()?;
        if self.current != login.login_screen || self.logged_in {
            return None;
        }
        let out = self
            .execute(Action::Widget(login.login_action), time)
            .expect("login action must be valid");
        self.logged_in = true;
        Some(out)
    }

    /// Renders the current screen as an observation (no state change
    /// besides the implicit render).
    ///
    /// Abstractions are cached per screen: volatile text differs between
    /// renders but never affects the abstraction, so the cache is exact.
    pub fn observe(&mut self, time: VirtualTime) -> ScreenObservation {
        let spec = self
            .app
            .screen(self.current)
            .expect("current screen exists");
        let visits = self.visit_counts.get(&self.current).copied().unwrap_or(0);
        let page = self.feed_pages.get(&self.current).copied().unwrap_or(0);
        let hierarchy = self.app.render_screen_page(spec.id, visits, page);
        let abstraction = self
            .abstraction_cache
            .entry((spec.id, page))
            .or_insert_with(|| Arc::new(abstract_hierarchy(&hierarchy)))
            .clone();
        ScreenObservation::with_abstraction(spec.id, spec.activity, hierarchy, abstraction, time)
    }

    /// Current feed page of a screen (0 when not a feed or never scrolled).
    pub fn feed_page(&self, screen: ScreenId) -> usize {
        self.feed_pages.get(&screen).copied().unwrap_or(0)
    }

    /// Jumps directly to a screen, as an `am start` Intent would launch an
    /// activity (used by the ParaAim-style activity-partition baseline).
    /// Clears the back stack and returns methods newly covered by arrival.
    pub fn jump_to(&mut self, screen: ScreenId) -> Vec<MethodId> {
        if self.app.screen(screen).is_none() {
            return Vec::new();
        }
        self.back_stack.clear();
        self.current = screen;
        self.arrive(screen)
    }

    /// Executes one tool action.
    ///
    /// # Errors
    ///
    /// Returns [`AppSimError::ActionNotAvailable`] if a widget action is
    /// fired that the current screen does not define.
    pub fn execute(
        &mut self,
        action: Action,
        time: VirtualTime,
    ) -> Result<StepOutcome, AppSimError> {
        let mut newly = Vec::new();
        let mut crash = None;
        let before = self.current;
        match action {
            Action::Noop => {}
            Action::Back => {
                if let Some(prev) = self.back_stack.pop() {
                    self.current = prev;
                }
                // Back on the root screen keeps the app in foreground.
            }
            Action::Widget(id) => {
                let spec = self
                    .app
                    .screen(self.current)
                    .expect("current screen exists");
                let act = spec
                    .action(id)
                    .ok_or(AppSimError::ActionNotAvailable(id))?
                    .clone();
                // Handler coverage on first execution.
                if self.executed_actions.insert(id) {
                    for m in &act.methods {
                        if self.covered_methods.insert(*m) {
                            newly.push(*m);
                        }
                    }
                }
                // Feed pagination: a scroll on a feed screen reveals the
                // next page and covers its methods on first reach.
                if act.kind == taopt_ui_model::ActionKind::Scroll {
                    if let Some(feed) = &spec.feed {
                        let page = self.feed_pages.entry(self.current).or_insert(0);
                        if *page < feed.pages {
                            *page += 1;
                            let reached = *page;
                            let seen = self.feed_pages_seen.entry(self.current).or_insert(0);
                            if reached > *seen {
                                *seen = reached;
                                for m in &feed.page_methods[reached - 1] {
                                    if self.covered_methods.insert(*m) {
                                        newly.push(*m);
                                    }
                                }
                            }
                        }
                    }
                }
                // Crash check: armed once this instance has explored the
                // hosting functionality deeply enough (distinct screens
                // visited), modelling faults that require rich local state.
                if let Some(cp) = &act.crash {
                    let depth = self
                        .functionality_visits
                        .get(&spec.functionality)
                        .map(|v| v.len())
                        .unwrap_or(0);
                    if cp.armed(depth) && self.rng.gen::<f64>() < cp.probability {
                        crash = Some(cp.signature);
                    }
                }
                if crash.is_none() {
                    // Sample a destination.
                    let total = act.total_target_weight();
                    if total > 0.0 {
                        let mut pick = self.rng.gen::<f64>() * total;
                        let mut dest = act.targets.last().map(|t| t.screen);
                        for t in &act.targets {
                            if pick < t.weight {
                                dest = Some(t.screen);
                                break;
                            }
                            pick -= t.weight;
                        }
                        if let Some(d) = dest {
                            if d != self.current {
                                // Android-like `singleTask` semantics: if the
                                // destination is already on the stack, pop
                                // back to it instead of pushing a duplicate.
                                if let Some(pos) = self.back_stack.iter().position(|s| *s == d) {
                                    self.back_stack.truncate(pos);
                                } else {
                                    self.back_stack.push(self.current);
                                    // Bounded like a real task stack.
                                    if self.back_stack.len() > 64 {
                                        self.back_stack.remove(0);
                                    }
                                }
                                self.current = d;
                            }
                        }
                    }
                }
            }
        }

        if let Some(sig) = crash {
            self.restart();
            newly.extend(self.arrive(self.current));
            let obs = self.observe(time);
            return Ok(StepOutcome {
                observation: obs,
                newly_covered: newly,
                crash: Some(sig),
                transitioned: true,
            });
        }

        let transitioned = self.current != before;
        newly.extend(self.arrive(self.current));
        let obs = self.observe(time);
        Ok(StepOutcome {
            observation: obs,
            newly_covered: newly,
            crash: None,
            transitioned,
        })
    }

    /// Handles arrival on a screen: visit counters, first-visit methods,
    /// flow progress and episode tracking. Returns newly covered methods.
    fn arrive(&mut self, screen: ScreenId) -> Vec<MethodId> {
        let mut newly = Vec::new();
        *self.visit_counts.entry(screen).or_insert(0) += 1;
        let spec = self.app.screen(screen).expect("screen exists").clone();
        if self.visited_screens.insert(screen) {
            for m in &spec.methods {
                if self.covered_methods.insert(*m) {
                    newly.push(*m);
                }
            }
            // Flow completion check (only needed when the visited set grew).
            let flows: Vec<(usize, Vec<MethodId>)> = self
                .app
                .flows()
                .iter()
                .enumerate()
                .filter(|(i, f)| {
                    !self.completed_flows.contains(i)
                        && f.screens.iter().all(|s| self.visited_screens.contains(s))
                })
                .map(|(i, f)| (i, f.methods.clone()))
                .collect();
            for (i, methods) in flows {
                self.completed_flows.insert(i);
                for m in methods {
                    if self.covered_methods.insert(m) {
                        newly.push(m);
                    }
                }
            }
        }
        // Per-functionality exploration depth (crash arming).
        self.functionality_visits
            .entry(spec.functionality)
            .or_default()
            .insert(screen);
        newly
    }

    /// Restarts the app after a crash.
    fn restart(&mut self) {
        self.restarts += 1;
        self.back_stack.clear();
        self.current = match self.app.login() {
            Some(l) if self.logged_in => l.home_screen,
            _ => self.app.start_screen(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::crash::{CrashPoint, CrashSignature};
    use crate::spec::LoginSpec;

    fn chain_app(crash_on_last: bool) -> Arc<App> {
        let mut b = AppBuilder::new("chain");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let s0 = b.add_screen(act, f, "S0");
        let s1 = b.add_screen(act, f, "S1");
        let s2 = b.add_screen(act, f, "S2");
        let m0 = b.alloc_methods(2);
        let m1 = b.alloc_methods(2);
        b.set_screen_methods(s0, m0);
        b.set_screen_methods(s1, m1);
        let a01 = b.add_click(s0, s1, "w01", "go1");
        let _a12 = b.add_click(s1, s2, "w12", "go2");
        let am = b.alloc_methods(1);
        b.set_action_methods(a01, am);
        if crash_on_last {
            let last = b.add_click(s2, s0, "boom", "boom");
            b.set_action_crash(last, CrashPoint::new(1.0, 3, CrashSignature(42)));
        }
        b.set_start(s0);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn launch_covers_start_screen_methods() {
        let app = chain_app(false);
        let rt = AppRuntime::launch(app, 1);
        assert_eq!(rt.covered_methods().len(), 2);
        assert_eq!(rt.visited_screens().len(), 1);
    }

    #[test]
    fn click_transitions_and_covers() {
        let app = chain_app(false);
        let mut rt = AppRuntime::launch(app.clone(), 1);
        let obs = rt.observe(VirtualTime::ZERO);
        let (aid, _) = obs.enabled_actions()[0];
        let out = rt
            .execute(Action::Widget(aid), VirtualTime::from_secs(1))
            .unwrap();
        assert!(out.transitioned);
        // Action methods (1) + screen-1 methods (2).
        assert_eq!(out.newly_covered.len(), 3);
        // Re-executing covers nothing new.
        let back = rt.execute(Action::Back, VirtualTime::from_secs(2)).unwrap();
        assert!(back.transitioned);
        assert!(back.newly_covered.is_empty());
        let again = rt
            .execute(Action::Widget(aid), VirtualTime::from_secs(3))
            .unwrap();
        assert!(again.newly_covered.is_empty());
    }

    #[test]
    fn back_pops_stack_and_is_safe_at_root() {
        let app = chain_app(false);
        let mut rt = AppRuntime::launch(app, 1);
        let out = rt.execute(Action::Back, VirtualTime::ZERO).unwrap();
        assert!(!out.transitioned);
        assert_eq!(rt.current_screen(), rt.app().start_screen());
    }

    #[test]
    fn unknown_action_errors() {
        let app = chain_app(false);
        let mut rt = AppRuntime::launch(app, 1);
        assert_eq!(
            rt.execute(Action::Widget(ActionId(777)), VirtualTime::ZERO)
                .unwrap_err(),
            AppSimError::ActionNotAvailable(ActionId(777))
        );
    }

    #[test]
    fn crash_requires_depth_then_fires_and_restarts() {
        let app = chain_app(true);
        let mut rt = AppRuntime::launch(app, 7);
        // Walk the chain to arm the crash: s0 -> s1 -> s2 (3 distinct).
        let a01 = {
            let obs = rt.observe(VirtualTime::ZERO);
            obs.enabled_actions()[0].0
        };
        rt.execute(Action::Widget(a01), VirtualTime::from_secs(1))
            .unwrap();
        let a12 = {
            let obs = rt.observe(VirtualTime::ZERO);
            obs.enabled_actions()[0].0
        };
        rt.execute(Action::Widget(a12), VirtualTime::from_secs(2))
            .unwrap();
        let boom = {
            let obs = rt.observe(VirtualTime::ZERO);
            obs.enabled_actions()[0].0
        };
        let out = rt
            .execute(Action::Widget(boom), VirtualTime::from_secs(3))
            .unwrap();
        assert_eq!(out.crash, Some(CrashSignature(42)));
        assert_eq!(rt.restarts(), 1);
        assert_eq!(rt.current_screen(), rt.app().start_screen());
    }

    #[test]
    fn noop_changes_nothing() {
        let app = chain_app(false);
        let mut rt = AppRuntime::launch(app, 1);
        let before = rt.current_screen();
        let out = rt.execute(Action::Noop, VirtualTime::ZERO).unwrap();
        assert!(!out.transitioned);
        assert!(out.newly_covered.is_empty());
        assert_eq!(rt.current_screen(), before);
    }

    #[test]
    fn flows_cover_methods_when_all_screens_visited() {
        let mut b = AppBuilder::new("flowapp");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let s0 = b.add_screen(act, f, "A");
        let s1 = b.add_screen(act, f, "B");
        b.add_click(s0, s1, "w", "go");
        let fm = b.alloc_methods(4);
        b.add_flow(vec![s0, s1], fm.clone());
        b.set_start(s0);
        let app = Arc::new(b.build().unwrap());
        let mut rt = AppRuntime::launch(app, 1);
        assert!(rt.covered_methods().is_empty());
        let aid = rt.observe(VirtualTime::ZERO).enabled_actions()[0].0;
        let out = rt
            .execute(Action::Widget(aid), VirtualTime::from_secs(1))
            .unwrap();
        assert_eq!(out.newly_covered.len(), 4, "flow methods covered");
    }

    #[test]
    fn auto_login_passes_the_wall_once() {
        let mut b = AppBuilder::new("gated");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let wall = b.add_screen(act, f, "Login");
        let home = b.add_screen(act, f, "Home");
        let login_action = b.add_click(wall, home, "btn_login", "Sign in");
        b.set_login(LoginSpec {
            login_screen: wall,
            login_action,
            home_screen: home,
        });
        b.set_start(wall);
        let app = Arc::new(b.build().unwrap());
        let mut rt = AppRuntime::launch(app, 3);
        let out = rt.auto_login(VirtualTime::ZERO).expect("should log in");
        assert!(out.transitioned);
        assert!(rt.auto_login(VirtualTime::ZERO).is_none(), "idempotent");
    }
}

#[cfg(test)]
mod feed_tests {
    use super::*;
    use crate::builder::AppBuilder;
    use taopt_ui_model::ActionKind;

    fn feed_app() -> Arc<App> {
        let mut b = AppBuilder::new("feed");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let home = b.add_screen(act, f, "Home");
        let list = b.add_screen(act, f, "List");
        b.add_click(home, list, "open", "Open");
        b.add_action(list, ActionKind::Scroll, "list_view", "", Vec::new());
        b.set_feed(list, 3, 5);
        b.set_start(home);
        Arc::new(b.build().unwrap())
    }

    fn scroll_action(rt: &mut AppRuntime) -> Action {
        let obs = rt.observe(VirtualTime::ZERO);
        let (id, _) = obs
            .enabled_actions()
            .into_iter()
            .find(|(_, k)| *k == ActionKind::Scroll)
            .expect("list has a scroll");
        Action::Widget(id)
    }

    #[test]
    fn scrolling_reveals_pages_methods_and_new_abstractions() {
        let app = feed_app();
        let mut rt = AppRuntime::launch(app, 1);
        let open = rt.observe(VirtualTime::ZERO).enabled_actions()[0].0;
        rt.execute(Action::Widget(open), VirtualTime::from_secs(1))
            .unwrap();
        let list = rt.current_screen();
        let abs0 = rt.observe(VirtualTime::ZERO).abstract_id();
        let mut abstractions = vec![abs0];
        let mut total_new = 0usize;
        for i in 0..5 {
            let a = scroll_action(&mut rt);
            let out = rt.execute(a, VirtualTime::from_secs(2 + i)).unwrap();
            total_new += out.newly_covered.len();
            abstractions.push(out.observation.abstract_id());
        }
        // 3 pages * 5 methods, revealed once each; extra scrolls add none.
        assert_eq!(total_new, 15);
        assert_eq!(rt.feed_page(list), 3, "page caps at the feed size");
        // Pages 0..3 are distinct abstract screens; the cap repeats page 3.
        let distinct: std::collections::HashSet<_> = abstractions.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn feed_pages_persist_across_navigation() {
        let app = feed_app();
        let mut rt = AppRuntime::launch(app, 2);
        let open = rt.observe(VirtualTime::ZERO).enabled_actions()[0].0;
        rt.execute(Action::Widget(open), VirtualTime::from_secs(1))
            .unwrap();
        let list = rt.current_screen();
        let a = scroll_action(&mut rt);
        rt.execute(a, VirtualTime::from_secs(2)).unwrap();
        assert_eq!(rt.feed_page(list), 1);
        // Leave and come back: the scroll position (page) persists, like a
        // cached RecyclerView state.
        rt.execute(Action::Back, VirtualTime::from_secs(3)).unwrap();
        let open = rt.observe(VirtualTime::ZERO).enabled_actions()[0].0;
        rt.execute(Action::Widget(open), VirtualTime::from_secs(4))
            .unwrap();
        assert_eq!(rt.feed_page(list), 1);
    }

    #[test]
    fn generator_feed_knob_adds_feeds_and_methods() {
        use crate::generator::{generate_app, GeneratorConfig};
        let mut cfg = GeneratorConfig::small("feedgen", 3);
        let plain = generate_app(&cfg).unwrap();
        cfg.feed_fraction = 0.5;
        let fed = generate_app(&cfg).unwrap();
        let feeds = fed.screens().filter(|s| s.feed.is_some()).count();
        assert!(feeds > 0, "feeds should be generated");
        assert!(fed.method_count() > plain.method_count());
    }
}
