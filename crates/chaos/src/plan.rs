//! Seeded fault plans — reproducible chaos schedules.
//!
//! A [`FaultPlan`] turns per-seam fault **rates** into deterministic
//! per-query decisions. Instead of materializing a schedule up front, each
//! decision is a pure function of `(seed, seam, query key)`: the same plan
//! asked the same question always answers the same way, regardless of the
//! order in which seams are exercised. That makes runs bit-reproducible
//! under recovery (a retry re-asks a *new* key rather than perturbing a
//! shared RNG stream) and keeps the plan itself trivially serializable —
//! it is just the seed and the rates.

use std::collections::BTreeMap;

use taopt_ui_model::json::{JsonError, Value};
use taopt_ui_model::VirtualDuration;

/// Lane offset between apps sharing one fault plan: app `i` draws its
/// lane-scoped decisions (latency, bus, enforcement) from lanes
/// `(i << APP_LANE_SHIFT) + instance`, so per-app fault streams are
/// decorrelated yet reproducible, and [`FaultPlan::rates_for_lane`] can
/// recover the app index from a lane. Every app's `d_max` must stay
/// below `1 << APP_LANE_SHIFT`.
pub const APP_LANE_SHIFT: u32 = 16;

/// The three seams faults are injected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Seam {
    /// The device farm / emulator boundary.
    Device,
    /// The Toller event bus carrying trace events.
    EventBus,
    /// Block-rule broadcasts from the coordinator to instances.
    Enforcement,
}

impl Seam {
    fn tag(self) -> u64 {
        match self {
            Seam::Device => 0x1111_0000_0000_0001,
            Seam::EventBus => 0x2222_0000_0000_0002,
            Seam::Enforcement => 0x3333_0000_0000_0003,
        }
    }

    /// Human-readable seam name.
    pub fn label(self) -> &'static str {
        match self {
            Seam::Device => "device",
            Seam::EventBus => "event-bus",
            Seam::Enforcement => "enforcement",
        }
    }
}

/// Per-seam fault probabilities. All rates are per *opportunity* (one
/// coordination tick for device loss, one event for bus faults, one
/// broadcast delivery for enforcement failures) in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an allocated device dies during one coordination tick.
    pub device_loss: f64,
    /// Probability the farm refuses an allocation attempt despite
    /// having capacity.
    pub alloc_refusal: f64,
    /// Probability one action suffers a latency spike.
    pub latency_spike: f64,
    /// Extra latency added by a spike.
    pub spike_extra: VirtualDuration,
    /// Probability a published trace event is dropped before the
    /// analyzer sees it.
    pub event_drop: f64,
    /// Probability a published trace event is delivered twice.
    pub event_duplicate: f64,
    /// Probability a published trace event is delayed by one delivery
    /// round (re-ordered behind newer events).
    pub event_delay: f64,
    /// Probability a block-rule broadcast fails to apply at one instance.
    pub enforcement_failure: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates {
            device_loss: 0.0,
            alloc_refusal: 0.0,
            latency_spike: 0.0,
            spike_extra: VirtualDuration::from_secs(10),
            event_drop: 0.0,
            event_duplicate: 0.0,
            event_delay: 0.0,
            enforcement_failure: 0.0,
        }
    }

    /// A uniform profile: every per-opportunity rate set to `rate`
    /// (device loss scaled down — losing a device is catastrophic
    /// compared to losing one event, so ticks use a tenth of the rate).
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultRates {
            device_loss: rate / 10.0,
            alloc_refusal: rate,
            latency_spike: rate,
            spike_extra: VirtualDuration::from_secs(10),
            event_drop: rate,
            event_duplicate: rate,
            event_delay: rate,
            enforcement_failure: rate,
        }
    }

    /// Whether every rate is zero (the plan can be skipped entirely).
    pub fn is_zero(&self) -> bool {
        self.device_loss == 0.0
            && self.alloc_refusal == 0.0
            && self.latency_spike == 0.0
            && self.event_drop == 0.0
            && self.event_duplicate == 0.0
            && self.event_delay == 0.0
            && self.enforcement_failure == 0.0
    }

    /// Serializes the rates as JSON object fields.
    fn to_fields(self) -> Vec<(String, Value)> {
        vec![
            ("device_loss".to_owned(), Value::from(self.device_loss)),
            ("alloc_refusal".to_owned(), Value::from(self.alloc_refusal)),
            ("latency_spike".to_owned(), Value::from(self.latency_spike)),
            (
                "spike_extra_ms".to_owned(),
                Value::from(self.spike_extra.as_millis()),
            ),
            ("event_drop".to_owned(), Value::from(self.event_drop)),
            (
                "event_duplicate".to_owned(),
                Value::from(self.event_duplicate),
            ),
            ("event_delay".to_owned(), Value::from(self.event_delay)),
            (
                "enforcement_failure".to_owned(),
                Value::from(self.enforcement_failure),
            ),
        ]
    }

    /// Deserializes rates written by [`FaultRates::to_fields`].
    fn from_object(v: &Value) -> Result<Self, JsonError> {
        let f = |key: &str| -> Result<f64, JsonError> {
            v.require(key)?
                .as_f64()
                .ok_or_else(|| JsonError::conversion(format!("field `{key}` must be a number")))
        };
        Ok(FaultRates {
            device_loss: f("device_loss")?,
            alloc_refusal: f("alloc_refusal")?,
            latency_spike: f("latency_spike")?,
            spike_extra: VirtualDuration::from_millis(
                v.require("spike_extra_ms")?
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("spike_extra_ms must be a u64"))?,
            ),
            event_drop: f("event_drop")?,
            event_duplicate: f("event_duplicate")?,
            event_delay: f("event_delay")?,
            enforcement_failure: f("enforcement_failure")?,
        })
    }
}

/// A reproducible chaos schedule: a seed plus per-seam rates, optionally
/// overridden per app for campaigns with heterogeneous fault profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Per-app rate overrides, keyed by app index (campaign lane ids pack
    /// the app index above [`APP_LANE_SHIFT`]). Apps without an entry use
    /// the global `rates`.
    app_rates: BTreeMap<u32, FaultRates>,
}

impl FaultPlan {
    /// Builds a plan from a seed and rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            app_rates: BTreeMap::new(),
        }
    }

    /// Overrides the rates for campaign app index `app`.
    ///
    /// Overrides apply to the *lane-scoped* seams — latency spikes, bus
    /// event fates, enforcement failures — whose query keys carry the
    /// app's lane range. Device loss and allocation refusal stay on the
    /// global rates: loss decisions are keyed by farm-global device ids
    /// and refusals by a farm-global attempt counter, neither of which
    /// belongs to one app.
    pub fn with_app_rates(mut self, app: u32, rates: FaultRates) -> Self {
        self.app_rates.insert(app, rates);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's global rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The rates governing `lane` (the app override when one exists for
    /// `lane >> APP_LANE_SHIFT`, the global rates otherwise).
    pub fn rates_for_lane(&self, lane: u32) -> &FaultRates {
        self.app_rates
            .get(&(lane >> APP_LANE_SHIFT))
            .unwrap_or(&self.rates)
    }

    /// Per-app overrides, in app-index order.
    pub fn app_rates(&self) -> impl Iterator<Item = (u32, &FaultRates)> {
        self.app_rates.iter().map(|(a, r)| (*a, r))
    }

    /// Uniform pseudo-random value in `[0, 1)` for a `(seam, key)` query.
    ///
    /// SplitMix64 finalizer over the combined bits; each distinct key
    /// yields an independent-looking decision, and the same key always
    /// yields the same one.
    fn roll(&self, seam: Seam, key: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(seam.tag())
            .wrapping_add(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Packs an `(instance, counter)` pair into one query key.
    fn key(instance: u32, counter: u64) -> u64 {
        ((instance as u64) << 48) ^ (counter & 0xFFFF_FFFF_FFFF)
    }

    /// Should `instance`'s device die during coordination tick `tick`?
    pub fn device_loss(&self, instance: u32, tick: u64) -> bool {
        self.roll(Seam::Device, Self::key(instance, tick)) < self.rates.device_loss
    }

    /// Should global allocation attempt number `attempt` be refused?
    pub fn alloc_refusal(&self, attempt: u64) -> bool {
        self.roll(Seam::Device, Self::key(u32::MAX, attempt)) < self.rates.alloc_refusal
    }

    /// Latency spike for `instance`'s `step`-th action, if any.
    pub fn latency_spike(&self, instance: u32, step: u64) -> Option<VirtualDuration> {
        let rates = self.rates_for_lane(instance);
        let key = Self::key(instance, step) ^ 0x5A5A;
        (self.roll(Seam::Device, key) < rates.latency_spike).then_some(rates.spike_extra)
    }

    /// Should the event with sequence number `seq` from `instance` be
    /// dropped?
    pub fn event_drop(&self, instance: u32, seq: u64) -> bool {
        self.roll(Seam::EventBus, Self::key(instance, seq))
            < self.rates_for_lane(instance).event_drop
    }

    /// Should that event be delivered twice?
    pub fn event_duplicate(&self, instance: u32, seq: u64) -> bool {
        let key = Self::key(instance, seq) ^ 0xD0D0;
        self.roll(Seam::EventBus, key) < self.rates_for_lane(instance).event_duplicate
    }

    /// Should that event be delayed one delivery round?
    pub fn event_delay(&self, instance: u32, seq: u64) -> bool {
        let key = Self::key(instance, seq) ^ 0xDE1A;
        self.roll(Seam::EventBus, key) < self.rates_for_lane(instance).event_delay
    }

    /// Should delivery number `attempt` of broadcast `broadcast` fail to
    /// apply at `instance`?
    pub fn enforcement_failure(&self, instance: u32, broadcast: u64, attempt: u64) -> bool {
        let key = Self::key(instance, broadcast.wrapping_mul(1009).wrapping_add(attempt));
        self.roll(Seam::Enforcement, key) < self.rates_for_lane(instance).enforcement_failure
    }

    /// Whether no query can ever inject a fault (global rates and every
    /// per-app override all zero).
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero() && self.app_rates.values().all(FaultRates::is_zero)
    }

    /// Serializes the plan (seed + rates + per-app overrides) to a JSON
    /// value.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("seed".to_owned(), Value::from(self.seed))];
        fields.extend(self.rates.to_fields());
        if !self.app_rates.is_empty() {
            let overrides = self
                .app_rates
                .iter()
                .map(|(app, rates)| {
                    let mut f = vec![("app".to_owned(), Value::from(*app as u64))];
                    f.extend(rates.to_fields());
                    Value::Object(f)
                })
                .collect();
            fields.push(("app_rates".to_owned(), Value::Array(overrides)));
        }
        Value::Object(fields)
    }

    /// Deserializes a plan written by [`FaultPlan::to_value`]. The
    /// `app_rates` field is optional, so pre-override plans still load.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on missing or mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let mut app_rates = BTreeMap::new();
        if let Some(overrides) = v.get("app_rates") {
            let list = overrides
                .as_array()
                .ok_or_else(|| JsonError::conversion("app_rates must be an array"))?;
            for entry in list {
                let app = entry
                    .require("app")?
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("app_rates[].app must be a u32"))?;
                app_rates.insert(app as u32, FaultRates::from_object(entry)?);
            }
        }
        Ok(FaultPlan {
            seed: v
                .require("seed")?
                .as_u64()
                .ok_or_else(|| JsonError::conversion("seed must be a u64"))?,
            rates: FaultRates::from_object(v)?,
            app_rates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::new(42, FaultRates::uniform(0.2));
        let forward: Vec<bool> = (0..100).map(|s| plan.event_drop(3, s)).collect();
        let backward: Vec<bool> = (0..100).rev().map(|s| plan.event_drop(3, s)).collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        let again = FaultPlan::new(42, FaultRates::uniform(0.2));
        assert_eq!(
            forward,
            (0..100).map(|s| again.event_drop(3, s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rates_are_respected_empirically() {
        let plan = FaultPlan::new(7, FaultRates::uniform(0.25));
        let n = 20_000u64;
        let drops = (0..n).filter(|s| plan.event_drop(0, *s)).count() as f64 / n as f64;
        assert!(
            (drops - 0.25).abs() < 0.02,
            "drop rate {drops} far from 0.25"
        );
        let zero = FaultPlan::new(7, FaultRates::none());
        assert!((0..n).all(|s| !zero.event_drop(0, s)));
        assert!((0..n).all(|t| !zero.device_loss(0, t)));
    }

    #[test]
    fn seams_and_instances_decorrelate() {
        let plan = FaultPlan::new(1, FaultRates::uniform(0.5));
        let a: Vec<bool> = (0..200).map(|s| plan.event_drop(1, s)).collect();
        let b: Vec<bool> = (0..200).map(|s| plan.event_drop(2, s)).collect();
        let c: Vec<bool> = (0..200).map(|s| plan.event_duplicate(1, s)).collect();
        assert_ne!(a, b, "two instances should not share a fault stream");
        assert_ne!(a, c, "two fault kinds should not share a stream");
    }

    #[test]
    fn per_app_overrides_govern_lane_scoped_seams() {
        let mut quiet = FaultRates::none();
        quiet.spike_extra = VirtualDuration::from_secs(10);
        let plan = FaultPlan::new(9, FaultRates::uniform(0.5))
            // App 1 is completely quiet on the lane-scoped seams.
            .with_app_rates(1, quiet);
        let app0_lane = 3u32;
        let app1_lane = (1 << APP_LANE_SHIFT) | 3;
        assert!((0..500).any(|s| plan.event_drop(app0_lane, s)));
        assert!((0..500).all(|s| !plan.event_drop(app1_lane, s)));
        assert!((0..500).all(|s| plan.latency_spike(app1_lane, s).is_none()));
        assert!((0..500).all(|s| !plan.enforcement_failure(app1_lane, s, 0)));
        // Device loss stays on the global rates (device ids are farm-global).
        assert!((0..500).any(|t| plan.device_loss(app1_lane, t)));
        assert!(!plan.is_inert());
        assert!(FaultPlan::new(9, FaultRates::none())
            .with_app_rates(0, FaultRates::none())
            .is_inert());
    }

    #[test]
    fn per_app_overrides_roundtrip_through_json() {
        let plan = FaultPlan::new(77, FaultRates::uniform(0.2))
            .with_app_rates(0, FaultRates::none())
            .with_app_rates(2, FaultRates::uniform(0.4));
        let text = plan.to_value().to_json_string();
        let back = FaultPlan::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        let lane = (2u32 << APP_LANE_SHIFT) | 1;
        for s in 0..200 {
            assert_eq!(plan.event_drop(lane, s), back.event_drop(lane, s));
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let mut rates = FaultRates::uniform(0.1);
        rates.spike_extra = VirtualDuration::from_secs(25);
        let plan = FaultPlan::new(0xFEED_FACE_CAFE_BEEF, rates);
        let text = plan.to_value().to_json_string();
        let back = FaultPlan::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        // Same decisions after the roundtrip.
        for s in 0..50 {
            assert_eq!(plan.event_drop(5, s), back.event_drop(5, s));
            assert_eq!(
                plan.enforcement_failure(2, s, 0),
                back.enforcement_failure(2, s, 0)
            );
        }
    }
}
