//! The fault injector — a [`FaultPlan`] bound to a live [`FaultLog`].
//!
//! The injector is the object the runtime actually consults at each seam.
//! It answers the plan's deterministic decisions *and* records every
//! injected fault, so a run's chaos history can be audited afterwards.
//! It is `Sync`: the log sits behind a mutex because the streaming
//! analyzer consults the bus seam from its worker thread while the
//! session loop consults the device seam.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use taopt_ui_model::{VirtualDuration, VirtualTime};

use crate::log::{FaultKind, FaultLog, FaultStats, RecoveryKind};
use crate::plan::FaultPlan;

/// What should happen to one published trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventFate {
    /// Deliver normally.
    Deliver,
    /// Drop: the analyzer never sees it.
    Drop,
    /// Deliver twice back-to-back.
    Duplicate,
    /// Hold it back one delivery round, re-ordering it behind newer
    /// events.
    Delay,
}

/// A seeded fault plan bound to a log; cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    log: Arc<Mutex<FaultLog>>,
    alloc_attempts: Arc<AtomicU64>,
}

impl FaultInjector {
    /// Builds an injector for `plan` with a fresh log.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            log: Arc::new(Mutex::new(FaultLog::new())),
            alloc_attempts: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An injector that never injects anything (all rates zero).
    pub fn inert(seed: u64) -> Self {
        FaultInjector::new(FaultPlan::new(seed, crate::plan::FaultRates::none()))
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this injector can never inject anything (all rates zero,
    /// including per-app overrides). Drivers use this to pick the
    /// passthrough wiring for seam layers.
    pub fn is_inert(&self) -> bool {
        self.plan.is_inert()
    }

    fn log_mut(&self) -> std::sync::MutexGuard<'_, FaultLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Logs an injected fault and mirrors it into the global telemetry
    /// domain, so the fault log and the flight recorder line up.
    fn record_fault(&self, now: VirtualTime, instance: Option<u32>, kind: FaultKind) {
        taopt_telemetry::global().fault(kind.label(), instance, now);
        self.log_mut().record_fault(now, instance, kind);
    }

    /// Should `instance`'s device die during tick `tick`? Logs on yes.
    pub fn device_loss(&self, instance: u32, tick: u64, now: VirtualTime) -> bool {
        let hit = self.plan.device_loss(instance, tick);
        if hit {
            self.record_fault(now, Some(instance), FaultKind::DeviceLost);
        }
        hit
    }

    /// Should the next allocation attempt be refused? Each call consumes
    /// one attempt number from a shared counter. Logs on yes.
    pub fn refuse_allocation(&self, now: VirtualTime) -> bool {
        let attempt = self.alloc_attempts.fetch_add(1, Ordering::Relaxed);
        let hit = self.plan.alloc_refusal(attempt);
        if hit {
            self.record_fault(now, None, FaultKind::AllocRefused);
        }
        hit
    }

    /// Latency spike for `instance`'s `step`-th action. Logs on yes.
    pub fn latency_spike(
        &self,
        instance: u32,
        step: u64,
        now: VirtualTime,
    ) -> Option<VirtualDuration> {
        let spike = self.plan.latency_spike(instance, step);
        if spike.is_some() {
            self.record_fault(now, Some(instance), FaultKind::LatencySpike);
        }
        spike
    }

    /// Decides the fate of event `seq` from `instance`. Drop beats
    /// duplicate beats delay (a single event suffers one fault). Logs
    /// any non-`Deliver` outcome.
    pub fn event_fate(&self, instance: u32, seq: u64, now: VirtualTime) -> EventFate {
        let (fate, kind) = if self.plan.event_drop(instance, seq) {
            (EventFate::Drop, Some(FaultKind::EventDropped))
        } else if self.plan.event_duplicate(instance, seq) {
            (EventFate::Duplicate, Some(FaultKind::EventDuplicated))
        } else if self.plan.event_delay(instance, seq) {
            (EventFate::Delay, Some(FaultKind::EventDelayed))
        } else {
            (EventFate::Deliver, None)
        };
        if let Some(kind) = kind {
            self.record_fault(now, Some(instance), kind);
        }
        fate
    }

    /// Should delivery `attempt` of broadcast `broadcast` fail at
    /// `instance`? Logs on yes.
    pub fn enforcement_failure(
        &self,
        instance: u32,
        broadcast: u64,
        attempt: u64,
        now: VirtualTime,
    ) -> bool {
        let hit = self.plan.enforcement_failure(instance, broadcast, attempt);
        if hit {
            self.record_fault(now, Some(instance), FaultKind::EnforcementFailed);
        }
        hit
    }

    /// Records a recovery completed by the resilience layer, mirroring
    /// its virtual-time latency into the registry's
    /// `chaos_recovery_latency_us` histogram (labeled per recovery kind),
    /// so percentiles are live series instead of bench-only aggregates.
    pub fn record_recovery(
        &self,
        injected_at: VirtualTime,
        recovered_at: VirtualTime,
        instance: Option<u32>,
        kind: RecoveryKind,
    ) {
        let telemetry = taopt_telemetry::global();
        telemetry.recovery(kind.label(), instance, recovered_at);
        let latency_us = recovered_at
            .as_millis()
            .saturating_sub(injected_at.as_millis())
            .saturating_mul(1000);
        telemetry
            .registry()
            .histogram(
                "chaos_recovery_latency_us",
                taopt_telemetry::Labels::kind(kind.label()),
            )
            .record(latency_us);
        self.log_mut()
            .record_recovery(injected_at, recovered_at, instance, kind);
    }

    /// Snapshot of the log so far.
    pub fn log_snapshot(&self) -> FaultLog {
        self.log_mut().clone()
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.log_mut().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;

    #[test]
    fn injections_are_logged() {
        let inj = FaultInjector::new(FaultPlan::new(3, FaultRates::uniform(0.5)));
        let now = VirtualTime::from_secs(1);
        let mut hits = 0;
        for seq in 0..100 {
            if inj.event_fate(0, seq, now) != EventFate::Deliver {
                hits += 1;
            }
        }
        assert!(hits > 0, "uniform(0.5) should fault some events");
        assert_eq!(inj.stats().total_injected(), hits);
    }

    #[test]
    fn inert_injector_stays_silent() {
        let inj = FaultInjector::inert(9);
        let now = VirtualTime::ZERO;
        for seq in 0..200 {
            assert_eq!(inj.event_fate(1, seq, now), EventFate::Deliver);
            assert!(!inj.device_loss(1, seq, now));
            assert!(!inj.refuse_allocation(now));
            assert!(inj.latency_spike(1, seq, now).is_none());
            assert!(!inj.enforcement_failure(1, seq, 0, now));
        }
        assert_eq!(inj.stats().total_injected(), 0);
    }

    #[test]
    fn clones_share_the_log() {
        let mut rates = FaultRates::uniform(1.0);
        rates.device_loss = 1.0;
        let inj = FaultInjector::new(FaultPlan::new(4, rates));
        let other = inj.clone();
        assert!(other.device_loss(0, 0, VirtualTime::ZERO));
        other.record_recovery(
            VirtualTime::ZERO,
            VirtualTime::from_secs(2),
            Some(0),
            RecoveryKind::DeviceReallocated,
        );
        let stats = inj.stats();
        assert_eq!(stats.total_injected(), 1);
        assert_eq!(stats.total_recovered(), 1);
        assert_eq!(stats.max_recovery_ms, 2000);
    }
}
