//! The fault log — every injected fault and every observed recovery.

use std::collections::BTreeMap;
use std::fmt;

use taopt_ui_model::json::Value;
use taopt_ui_model::VirtualTime;

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// An allocated device died mid-run.
    DeviceLost,
    /// The farm refused an allocation attempt.
    AllocRefused,
    /// One action suffered a latency spike.
    LatencySpike,
    /// A trace event was dropped in the bus.
    EventDropped,
    /// A trace event was delivered twice.
    EventDuplicated,
    /// A trace event was delayed behind newer events.
    EventDelayed,
    /// A block-rule broadcast failed to apply at an instance.
    EnforcementFailed,
    /// The whole campaign service was killed mid-campaign (process
    /// crash); in-flight campaigns fall back to their last durable
    /// checkpoint.
    ServiceKilled,
}

impl FaultKind {
    /// Human-readable kind name.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DeviceLost => "device-lost",
            FaultKind::AllocRefused => "alloc-refused",
            FaultKind::LatencySpike => "latency-spike",
            FaultKind::EventDropped => "event-dropped",
            FaultKind::EventDuplicated => "event-duplicated",
            FaultKind::EventDelayed => "event-delayed",
            FaultKind::EnforcementFailed => "enforcement-failed",
            FaultKind::ServiceKilled => "service-killed",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The kind of an observed recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryKind {
    /// A lost device was replaced by a fresh allocation.
    DeviceReallocated,
    /// An orphaned subspace was re-dedicated to a surviving instance.
    SubspaceRededicated,
    /// A failed block-rule broadcast was re-applied successfully.
    EnforcementReapplied,
    /// The analyzer detected and tolerated a sequence gap or duplicate.
    StreamRepaired,
    /// A killed campaign service restored an in-flight campaign from its
    /// durable checkpoint and resumed it.
    ServiceResumed,
}

impl RecoveryKind {
    /// Human-readable kind name.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryKind::DeviceReallocated => "device-reallocated",
            RecoveryKind::SubspaceRededicated => "subspace-rededicated",
            RecoveryKind::EnforcementReapplied => "enforcement-reapplied",
            RecoveryKind::StreamRepaired => "stream-repaired",
            RecoveryKind::ServiceResumed => "service-resumed",
        }
    }
}

impl fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Virtual time of injection.
    pub time: VirtualTime,
    /// Affected instance (raw id), if instance-scoped.
    pub instance: Option<u32>,
    /// What was injected.
    pub kind: FaultKind,
}

/// One observed recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Virtual time the underlying fault was injected (or first noticed).
    pub injected_at: VirtualTime,
    /// Virtual time recovery completed.
    pub recovered_at: VirtualTime,
    /// Affected instance (raw id), if instance-scoped.
    pub instance: Option<u32>,
    /// What recovered.
    pub kind: RecoveryKind,
}

impl RecoveryRecord {
    /// Virtual-time latency from injection to recovery.
    pub fn latency_ms(&self) -> u64 {
        self.recovered_at
            .as_millis()
            .saturating_sub(self.injected_at.as_millis())
    }
}

/// Aggregated fault/recovery statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Injected faults per kind.
    pub injected: BTreeMap<FaultKind, usize>,
    /// Recoveries per kind.
    pub recovered: BTreeMap<RecoveryKind, usize>,
    /// Mean recovery latency (virtual ms) across all recoveries.
    pub mean_recovery_ms: f64,
    /// Maximum recovery latency (virtual ms).
    pub max_recovery_ms: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total_injected(&self) -> usize {
        self.injected.values().sum()
    }

    /// Total recoveries observed.
    pub fn total_recovered(&self) -> usize {
        self.recovered.values().sum()
    }
}

/// Append-only record of everything the injector did and everything the
/// resilience layer fixed.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    faults: Vec<FaultRecord>,
    recoveries: Vec<RecoveryRecord>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Records an injected fault.
    pub fn record_fault(&mut self, time: VirtualTime, instance: Option<u32>, kind: FaultKind) {
        self.faults.push(FaultRecord {
            time,
            instance,
            kind,
        });
    }

    /// Records an observed recovery.
    pub fn record_recovery(
        &mut self,
        injected_at: VirtualTime,
        recovered_at: VirtualTime,
        instance: Option<u32>,
        kind: RecoveryKind,
    ) {
        self.recoveries.push(RecoveryRecord {
            injected_at,
            recovered_at,
            instance,
            kind,
        });
    }

    /// All injected faults, in injection order.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// All recoveries, in completion order.
    pub fn recoveries(&self) -> &[RecoveryRecord] {
        &self.recoveries
    }

    /// Merges another log into this one (e.g. per-phase logs).
    pub fn merge(&mut self, other: &FaultLog) {
        self.faults.extend(other.faults.iter().cloned());
        self.recoveries.extend(other.recoveries.iter().cloned());
    }

    /// Aggregates counts and latency statistics.
    pub fn stats(&self) -> FaultStats {
        let mut stats = FaultStats::default();
        for f in &self.faults {
            *stats.injected.entry(f.kind).or_insert(0) += 1;
        }
        let mut total_ms = 0u64;
        for r in &self.recoveries {
            *stats.recovered.entry(r.kind).or_insert(0) += 1;
            let l = r.latency_ms();
            total_ms += l;
            stats.max_recovery_ms = stats.max_recovery_ms.max(l);
        }
        if !self.recoveries.is_empty() {
            stats.mean_recovery_ms = total_ms as f64 / self.recoveries.len() as f64;
        }
        stats
    }

    /// Serializes the whole log to a JSON value.
    pub fn to_value(&self) -> Value {
        let faults = self
            .faults
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("t".to_owned(), Value::from(f.time.as_millis())),
                    ("i".to_owned(), f.instance.map_or(Value::Null, Value::from)),
                    ("k".to_owned(), Value::from(f.kind.label())),
                ])
            })
            .collect();
        let recoveries = self
            .recoveries
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("t0".to_owned(), Value::from(r.injected_at.as_millis())),
                    ("t1".to_owned(), Value::from(r.recovered_at.as_millis())),
                    ("i".to_owned(), r.instance.map_or(Value::Null, Value::from)),
                    ("k".to_owned(), Value::from(r.kind.label())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("faults".to_owned(), Value::Array(faults)),
            ("recoveries".to_owned(), Value::Array(recoveries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_counts_and_latencies() {
        let mut log = FaultLog::new();
        log.record_fault(VirtualTime::from_secs(1), Some(0), FaultKind::DeviceLost);
        log.record_fault(VirtualTime::from_secs(2), Some(1), FaultKind::EventDropped);
        log.record_fault(VirtualTime::from_secs(3), Some(1), FaultKind::EventDropped);
        log.record_recovery(
            VirtualTime::from_secs(1),
            VirtualTime::from_secs(4),
            Some(0),
            RecoveryKind::DeviceReallocated,
        );
        log.record_recovery(
            VirtualTime::from_secs(2),
            VirtualTime::from_secs(3),
            Some(1),
            RecoveryKind::StreamRepaired,
        );
        let stats = log.stats();
        assert_eq!(stats.total_injected(), 3);
        assert_eq!(stats.injected[&FaultKind::EventDropped], 2);
        assert_eq!(stats.total_recovered(), 2);
        assert_eq!(stats.max_recovery_ms, 3000);
        assert!((stats.mean_recovery_ms - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = FaultLog::new();
        a.record_fault(VirtualTime::ZERO, None, FaultKind::AllocRefused);
        let mut b = FaultLog::new();
        b.record_fault(VirtualTime::from_secs(1), Some(2), FaultKind::LatencySpike);
        a.merge(&b);
        assert_eq!(a.faults().len(), 2);
        let v = a.to_value().to_json_string();
        assert!(v.contains("alloc-refused") && v.contains("latency-spike"));
    }
}
