//! The fault-injecting [`DevicePool`]: a [`DeviceFarm`] behind the device
//! seam, with a [`FaultInjector`] deciding refusals and losses.
//!
//! This is the chaotic implementation of the device seam from
//! `taopt-device`'s `pool` module: the same farm, the same accounting, but
//! every allocation may be transiently refused and every active device may
//! be scheduled to die on a given round — all decisions pure functions of
//! the plan's seed, so a chaos run replays bit-for-bit. Loss decisions are
//! keyed by **device id** (globally unique within a farm), so the same
//! pool serves both the single-app chaos harness and a multi-app campaign
//! without the fault stream depending on which app holds the device.

use taopt_device::{DeviceFarm, DeviceId, DeviceLatency, DevicePool, PoolDecision};
use taopt_telemetry::{Counter, Labels};
use taopt_ui_model::{VirtualDuration, VirtualTime};

use crate::inject::FaultInjector;

/// The chaotic latency half of the device seam: spike decisions come
/// from a [`FaultInjector`], keyed by `(lane, round)`, so the session
/// step applies device stalls without ever touching the injector itself.
#[derive(Debug, Clone)]
pub struct FaultyLatency {
    injector: FaultInjector,
}

impl FaultyLatency {
    /// Wraps the injector's latency decisions.
    pub fn new(injector: FaultInjector) -> Self {
        FaultyLatency { injector }
    }
}

impl DeviceLatency for FaultyLatency {
    fn latency_spike(&self, lane: u32, round: u64, now: VirtualTime) -> Option<VirtualDuration> {
        self.injector.latency_spike(lane, round, now)
    }
}

/// A [`DeviceFarm`] wrapped in fault decisions from a [`FaultInjector`].
#[derive(Debug)]
pub struct FaultyPool {
    farm: DeviceFarm,
    injector: FaultInjector,
    refusals: Counter,
    losses: Counter,
}

impl FaultyPool {
    /// Wraps `farm` with the fault decisions of `injector`.
    pub fn new(farm: DeviceFarm, injector: FaultInjector) -> Self {
        let t = taopt_telemetry::global();
        FaultyPool {
            farm,
            injector,
            refusals: t.counter_labeled("pool_refusals_total", Labels::seam("device")),
            losses: t.counter_labeled("pool_losses_total", Labels::seam("device")),
        }
    }

    /// The injector this pool consults (shared log).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl DevicePool for FaultyPool {
    fn allocate(&mut self, now: VirtualTime) -> PoolDecision {
        if self.injector.refuse_allocation(now) {
            self.refusals.inc();
            return PoolDecision::Refused;
        }
        match self.farm.allocate(now) {
            Ok(d) => PoolDecision::Granted(d),
            Err(_) => PoolDecision::Exhausted,
        }
    }

    fn release(&mut self, device: DeviceId, now: VirtualTime) {
        let _ = self.farm.deallocate(device, now);
    }

    fn kill(&mut self, device: DeviceId, now: VirtualTime) {
        let _ = self.farm.kill(device, now);
    }

    fn round_losses(&mut self, round: u64, now: VirtualTime) -> Vec<DeviceId> {
        let victims: Vec<DeviceId> = self
            .farm
            .active_devices()
            .filter(|d| self.injector.device_loss(d.0, round, now))
            .collect();
        for _ in &victims {
            self.losses.inc();
        }
        victims
    }

    fn farm(&self) -> &DeviceFarm {
        &self.farm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultRates};

    #[test]
    fn inert_faulty_pool_behaves_like_the_plain_farm() {
        let mut pool = FaultyPool::new(DeviceFarm::new(2), FaultInjector::inert(1));
        let now = VirtualTime::ZERO;
        assert!(matches!(pool.allocate(now), PoolDecision::Granted(_)));
        assert!(matches!(pool.allocate(now), PoolDecision::Granted(_)));
        assert_eq!(pool.allocate(now), PoolDecision::Exhausted);
        for round in 1..100 {
            assert!(pool.round_losses(round, now).is_empty());
        }
        assert_eq!(pool.injector().stats().total_injected(), 0);
    }

    #[test]
    fn refusals_and_losses_follow_the_plan() {
        let mut rates = FaultRates::none();
        rates.alloc_refusal = 0.5;
        rates.device_loss = 0.2;
        let inj = FaultInjector::new(FaultPlan::new(11, rates));
        let mut pool = FaultyPool::new(DeviceFarm::new(64), inj);
        let now = VirtualTime::ZERO;
        let mut granted = 0usize;
        let mut refused = 0usize;
        for _ in 0..64 {
            match pool.allocate(now) {
                PoolDecision::Granted(_) => granted += 1,
                PoolDecision::Refused => refused += 1,
                PoolDecision::Exhausted => break,
            }
        }
        assert!(granted > 0, "some allocations must succeed");
        assert!(refused > 0, "rate 0.5 must refuse some allocations");
        let mut lost = 0usize;
        for round in 1..20 {
            for d in pool.round_losses(round, now) {
                pool.kill(d, now);
                lost += 1;
            }
        }
        assert!(lost > 0, "rate 0.2 must lose some devices");
        assert_eq!(pool.lost_count(), lost);
        let stats = pool.injector().stats();
        assert_eq!(stats.total_injected(), refused + lost);
    }

    #[test]
    fn loss_decisions_are_reproducible_for_a_seed() {
        let mut rates = FaultRates::none();
        rates.device_loss = 0.3;
        let run = |seed| {
            let inj = FaultInjector::new(FaultPlan::new(seed, rates));
            let mut pool = FaultyPool::new(DeviceFarm::new(8), inj);
            let now = VirtualTime::ZERO;
            for _ in 0..8 {
                let _ = pool.allocate(now);
            }
            let mut log = Vec::new();
            for round in 1..30 {
                for d in pool.round_losses(round, now) {
                    pool.kill(d, now);
                    log.push((round, d));
                }
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }
}
