//! Deterministic fault injection for the TaOPT reproduction.
//!
//! Parallel UI testing in a real device cloud is exposed to infrastructure
//! faults the paper's clean simulations never see: emulators die mid-run,
//! allocation requests bounce, instrumented events vanish in transit, and
//! enforcement messages fail to land. This crate injects exactly those
//! faults — **deterministically** — at the three seams of the
//! reproduction's architecture:
//!
//! * the **device** seam (farm + emulator): device loss mid-run,
//!   allocation refusals, latency spikes;
//! * the **event-bus** seam (Toller → analyzer): dropped, duplicated, and
//!   delayed trace events;
//! * the **enforcement** seam (coordinator → instances): block-rule
//!   broadcasts that fail to apply.
//!
//! A [`FaultPlan`] maps a seed plus per-seam [`FaultRates`] to pure
//! per-query decisions, so a chaos run replays bit-for-bit from its seed.
//! A [`FaultInjector`] binds a plan to a [`FaultLog`] recording every
//! injected fault and — via [`FaultInjector::record_recovery`] — every
//! repair the resilience layer performs, yielding recovery-latency
//! statistics ([`FaultStats`]).
//!
//! [`FaultyPool`] implements the device seam from `taopt-device` — the
//! same [`taopt_device::DeviceFarm`], but with plan-driven refusals and
//! per-round loss scheduling — so the one `SessionStep` runtime runs
//! chaotic and clean configurations through identical driver loops.

pub mod inject;
pub mod log;
pub mod plan;
pub mod pool;

pub use inject::{EventFate, FaultInjector};
pub use log::{FaultKind, FaultLog, FaultRecord, FaultStats, RecoveryKind, RecoveryRecord};
pub use plan::{FaultPlan, FaultRates, Seam, APP_LANE_SHIFT};
pub use pool::{FaultyLatency, FaultyPool};
