//! Entrypoint enforcement — blocking UI subspaces by disabling widgets.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use taopt_telemetry::Labels;
use taopt_ui_model::{AbstractScreenId, UiHierarchy};

/// One blocked subspace entrypoint.
///
/// An entrypoint is identified tool-agnostically by the *abstract screen*
/// hosting the entry widget and the widget's stable *resource id* — both
/// observable from UI hierarchies alone, with no knowledge of the app's
/// internals or the testing tool.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EntrypointRule {
    /// Abstract identity of the screen the entry widget lives on.
    pub screen: AbstractScreenId,
    /// Resource id of the entry widget to disable.
    pub widget_rid: String,
}

impl EntrypointRule {
    /// Creates a rule.
    pub fn new(screen: AbstractScreenId, widget_rid: impl Into<String>) -> Self {
        EntrypointRule {
            screen,
            widget_rid: widget_rid.into(),
        }
    }
}

impl fmt::Display for EntrypointRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {} on {}", self.widget_rid, self.screen)
    }
}

/// The set of entrypoints blocked on one testing instance.
///
/// The test coordinator owns one `BlockList` per instance (wrapped in a
/// [`SharedBlockList`]) and updates it when subspaces are dedicated; the
/// instance's step loop applies it to every observation.
#[derive(Debug, Clone, Default)]
pub struct BlockList {
    rules: Vec<EntrypointRule>,
}

impl BlockList {
    /// Creates an empty block list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (deduplicating).
    pub fn block(&mut self, rule: EntrypointRule) {
        if !self.rules.contains(&rule) {
            self.rules.push(rule);
            taopt_telemetry::global()
                .counter_labeled("block_rules_installed_total", Labels::seam("enforce"))
                .inc();
        }
    }

    /// Removes a rule (used when a subspace is dedicated to this very
    /// instance).
    pub fn unblock(&mut self, rule: &EntrypointRule) {
        let before = self.rules.len();
        self.rules.retain(|r| r != rule);
        if self.rules.len() < before {
            taopt_telemetry::global()
                .counter_labeled("block_rules_removed_total", Labels::seam("enforce"))
                .inc();
        }
    }

    /// The current rules.
    pub fn rules(&self) -> &[EntrypointRule] {
        &self.rules
    }

    /// Whether `rule` is currently present.
    pub fn contains(&self, rule: &EntrypointRule) -> bool {
        self.rules.contains(rule)
    }

    /// The rule changes that would turn this list into `intended`,
    /// as `(to_block, to_unblock)` in stable rule order.
    ///
    /// This is the primitive behind enforcement reconciliation: a
    /// broadcaster diffs a device-side list against the coordinator's
    /// intent and delivers exactly these operations, so retries stay
    /// idempotent and nothing is re-sent once it has landed.
    pub fn diff_to(&self, intended: &BlockList) -> (Vec<EntrypointRule>, Vec<EntrypointRule>) {
        let to_block = intended
            .rules
            .iter()
            .filter(|r| !self.contains(r))
            .cloned()
            .collect();
        let to_unblock = self
            .rules
            .iter()
            .filter(|r| !intended.contains(r))
            .cloned()
            .collect();
        (to_block, to_unblock)
    }

    /// Whether no entrypoints are blocked.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies the rules to a hierarchy observed on screen `screen`:
    /// disables every matching widget. Returns how many were disabled.
    pub fn apply(&self, screen: AbstractScreenId, hierarchy: &mut UiHierarchy) -> usize {
        let mut n = 0;
        for rule in &self.rules {
            if rule.screen == screen {
                n += hierarchy.disable_by_resource_id(&rule.widget_rid);
            }
        }
        // Telemetry only when something was disabled, keeping the
        // per-observation hot path free of registry lookups.
        if n > 0 {
            taopt_telemetry::global()
                .counter_labeled(
                    "enforcement_widgets_disabled_total",
                    Labels::seam("enforce"),
                )
                .add(n as u64);
        }
        n
    }
}

/// A block list shared between the coordinator and an instance's step loop.
pub type SharedBlockList = Arc<RwLock<BlockList>>;

/// Creates a fresh shared block list.
pub fn shared_block_list() -> SharedBlockList {
    Arc::new(RwLock::new(BlockList::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_ui_model::abstraction::abstract_hierarchy;
    use taopt_ui_model::{ActionId, ActionKind, Widget, WidgetClass};

    fn hierarchy() -> UiHierarchy {
        UiHierarchy::new(
            Widget::container(WidgetClass::LinearLayout)
                .with_child(
                    Widget::button("tab_shop", "Shop")
                        .with_affordance(ActionId(1), ActionKind::Click),
                )
                .with_child(
                    Widget::button("tab_account", "Account")
                        .with_affordance(ActionId(2), ActionKind::Click),
                ),
        )
    }

    #[test]
    fn apply_disables_only_matching_screen_and_rid() {
        let mut h = hierarchy();
        let sid = abstract_hierarchy(&h).id();
        let mut bl = BlockList::new();
        bl.block(EntrypointRule::new(sid, "tab_shop"));
        assert_eq!(bl.apply(sid, &mut h), 1);
        assert_eq!(h.enabled_actions().len(), 1);
        // Different screen id: nothing happens.
        let mut h2 = hierarchy();
        assert_eq!(bl.apply(AbstractScreenId(0), &mut h2), 0);
        assert_eq!(h2.enabled_actions().len(), 2);
    }

    #[test]
    fn block_dedupes_and_unblock_removes() {
        let mut bl = BlockList::new();
        let r = EntrypointRule::new(AbstractScreenId(1), "x");
        bl.block(r.clone());
        bl.block(r.clone());
        assert_eq!(bl.rules().len(), 1);
        bl.unblock(&r);
        assert!(bl.is_empty());
    }

    #[test]
    fn diff_to_yields_exactly_the_missing_and_stale_rules() {
        let mut actual = BlockList::new();
        let mut intended = BlockList::new();
        let keep = EntrypointRule::new(AbstractScreenId(1), "keep");
        let stale = EntrypointRule::new(AbstractScreenId(2), "stale");
        let missing = EntrypointRule::new(AbstractScreenId(3), "missing");
        actual.block(keep.clone());
        actual.block(stale.clone());
        intended.block(keep.clone());
        intended.block(missing.clone());
        let (to_block, to_unblock) = actual.diff_to(&intended);
        assert_eq!(to_block, vec![missing]);
        assert_eq!(to_unblock, vec![stale]);
        // A list is always in sync with itself.
        let (b, u) = actual.diff_to(&actual.clone());
        assert!(b.is_empty() && u.is_empty());
    }

    #[test]
    fn enforcement_preserves_abstraction() {
        let mut h = hierarchy();
        let before = abstract_hierarchy(&h).id();
        let mut bl = BlockList::new();
        bl.block(EntrypointRule::new(before, "tab_shop"));
        bl.apply(before, &mut h);
        assert_eq!(abstract_hierarchy(&h).id(), before);
    }

    #[test]
    fn shared_list_is_visible_across_clones() {
        let shared = shared_block_list();
        let other = Arc::clone(&shared);
        shared
            .write()
            .block(EntrypointRule::new(AbstractScreenId(5), "w"));
        assert_eq!(other.read().rules().len(), 1);
    }
}
