//! Streaming trace events across threads.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;

use taopt_telemetry::{Counter, Labels};
use taopt_ui_model::TraceEvent;

use crate::instance::InstanceId;

/// One trace event in transit, stamped with a per-instance sequence
/// number.
///
/// Sequence numbers are monotonic (0, 1, 2, …) per instance across every
/// sender handle of one bus, so a consumer can detect *gaps* (a dropped
/// event leaves a hole), *duplicates* (the same number arrives twice) and
/// *reordering* (numbers arrive out of order) without trusting the
/// transport.
#[derive(Debug, Clone)]
pub struct BusEvent {
    /// Producing instance.
    pub instance: InstanceId,
    /// Position of this event in the instance's publication stream.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A sending handle that stamps sequence numbers.
///
/// Cheap to clone; all clones of one bus share the per-instance counters,
/// so sequence numbers stay monotonic even when several components publish
/// for the same instance.
#[derive(Debug, Clone)]
pub struct EventSender {
    tx: Sender<BusEvent>,
    seqs: Arc<Mutex<HashMap<InstanceId, u64>>>,
    published: Counter,
}

impl EventSender {
    /// Stamps the next sequence number for `instance` and publishes.
    /// Returns the stamped number.
    ///
    /// # Errors
    ///
    /// Returns the event back if every receiver is gone.
    pub fn send(
        &self,
        instance: InstanceId,
        event: TraceEvent,
    ) -> Result<u64, SendError<TraceEvent>> {
        let seq = self.stamp(instance);
        self.send_raw(BusEvent {
            instance,
            seq,
            event,
        })
        .map(|()| seq)
        .map_err(|SendError(b)| SendError(b.event))
    }

    /// Consumes the next sequence number for `instance` *without* sending
    /// anything. An interposing layer (e.g. a fault injector) stamps
    /// first, then decides whether/how the event actually goes out —
    /// dropping a stamped event is what creates a detectable gap.
    pub fn stamp(&self, instance: InstanceId) -> u64 {
        self.published.inc();
        let mut seqs = self.seqs.lock();
        let slot = seqs.entry(instance).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Sends a pre-stamped event as-is (pair with [`EventSender::stamp`]).
    ///
    /// # Errors
    ///
    /// Returns the event back if every receiver is gone.
    pub fn send_raw(&self, event: BusEvent) -> Result<(), SendError<BusEvent>> {
        self.tx.send(event)
    }
}

/// A broadcast-ish bus for trace events: one sender per instance, one
/// receiver at the analyzer.
///
/// The lock-step session drives analysis synchronously, but the bus lets
/// experiment harnesses run instances on worker threads (e.g. sweeping the
/// 18-app catalog) while a single analyzer thread consumes the merged
/// stream, which mirrors TaOPT's deployment (one coordinator process, many
/// devices).
#[derive(Debug, Clone)]
pub struct EventBus {
    tx: Sender<BusEvent>,
    rx: Receiver<BusEvent>,
    seqs: Arc<Mutex<HashMap<InstanceId, u64>>>,
}

impl EventBus {
    /// Creates an unbounded bus.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        EventBus {
            tx,
            rx,
            seqs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// A sender handle for an instance's monitor.
    pub fn sender(&self) -> EventSender {
        EventSender {
            tx: self.tx.clone(),
            seqs: Arc::clone(&self.seqs),
            published: taopt_telemetry::global()
                .counter_labeled("bus_events_published_total", Labels::seam("bus")),
        }
    }

    /// The consumer side.
    pub fn receiver(&self) -> Receiver<BusEvent> {
        self.rx.clone()
    }

    /// Drains all currently queued events.
    pub fn drain(&self) -> Vec<BusEvent> {
        self.rx.try_iter().collect()
    }

    /// Next sequence number that will be stamped for `instance` — i.e.
    /// how many events it has published so far.
    pub fn published(&self, instance: InstanceId) -> u64 {
        self.seqs.lock().get(&instance).copied().unwrap_or(0)
    }
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
    use taopt_ui_model::{ActivityId, ScreenId, VirtualTime, WidgetClass};

    fn event() -> TraceEvent {
        let a = Arc::new(AbstractHierarchy::from_root(AbstractNode {
            class: WidgetClass::FrameLayout,
            resource_id: None,
            children: Vec::new(),
        }));
        TraceEvent {
            time: VirtualTime::ZERO,
            screen: ScreenId(0),
            activity: ActivityId(0),
            abstract_id: a.id(),
            abstraction: a,
            action: None,
            action_widget_rid: None,
        }
    }

    #[test]
    fn events_flow_from_sender_to_receiver() {
        let bus = EventBus::new();
        let tx = bus.sender();
        tx.send(InstanceId(1), event()).unwrap();
        tx.send(InstanceId(2), event()).unwrap();
        let drained = bus.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].instance, InstanceId(1));
    }

    #[test]
    fn sequence_numbers_are_monotonic_per_instance() {
        let bus = EventBus::new();
        let tx = bus.sender();
        let tx2 = bus.sender();
        assert_eq!(tx.send(InstanceId(1), event()).unwrap(), 0);
        assert_eq!(tx2.send(InstanceId(1), event()).unwrap(), 1);
        assert_eq!(tx.send(InstanceId(2), event()).unwrap(), 0);
        assert_eq!(tx.send(InstanceId(1), event()).unwrap(), 2);
        assert_eq!(bus.published(InstanceId(1)), 3);
        assert_eq!(bus.published(InstanceId(2)), 1);
        assert_eq!(bus.published(InstanceId(7)), 0);
        let seqs: Vec<u64> = bus
            .drain()
            .into_iter()
            .filter(|b| b.instance == InstanceId(1))
            .map(|b| b.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = EventBus::new();
        let tx = bus.sender();
        let handle = std::thread::spawn(move || {
            for _ in 0..10 {
                tx.send(InstanceId(0), event()).unwrap();
            }
        });
        handle.join().unwrap();
        let drained = bus.drain();
        assert_eq!(drained.len(), 10);
        // In-order per instance even across the thread boundary.
        let seqs: Vec<u64> = drained.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }
}
