//! Streaming trace events across threads.

use crossbeam::channel::{unbounded, Receiver, Sender};

use taopt_ui_model::TraceEvent;

use crate::instance::InstanceId;

/// A broadcast-ish bus for trace events: one sender per instance, one
/// receiver at the analyzer.
///
/// The lock-step session drives analysis synchronously, but the bus lets
/// experiment harnesses run instances on worker threads (e.g. sweeping the
/// 18-app catalog) while a single analyzer thread consumes the merged
/// stream, which mirrors TaOPT's deployment (one coordinator process, many
/// devices).
#[derive(Debug, Clone)]
pub struct EventBus {
    tx: Sender<(InstanceId, TraceEvent)>,
    rx: Receiver<(InstanceId, TraceEvent)>,
}

impl EventBus {
    /// Creates an unbounded bus.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        EventBus { tx, rx }
    }

    /// A sender handle for an instance's monitor.
    pub fn sender(&self) -> Sender<(InstanceId, TraceEvent)> {
        self.tx.clone()
    }

    /// The consumer side.
    pub fn receiver(&self) -> Receiver<(InstanceId, TraceEvent)> {
        self.rx.clone()
    }

    /// Drains all currently queued events.
    pub fn drain(&self) -> Vec<(InstanceId, TraceEvent)> {
        self.rx.try_iter().collect()
    }
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
    use taopt_ui_model::{ActivityId, ScreenId, VirtualTime, WidgetClass};

    fn event() -> TraceEvent {
        let a = Arc::new(AbstractHierarchy::from_root(AbstractNode {
            class: WidgetClass::FrameLayout,
            resource_id: None,
            children: Vec::new(),
        }));
        TraceEvent {
            time: VirtualTime::ZERO,
            screen: ScreenId(0),
            activity: ActivityId(0),
            abstract_id: a.id(),
            abstraction: a,
            action: None,
            action_widget_rid: None,
        }
    }

    #[test]
    fn events_flow_from_sender_to_receiver() {
        let bus = EventBus::new();
        let tx = bus.sender();
        tx.send((InstanceId(1), event())).unwrap();
        tx.send((InstanceId(2), event())).unwrap();
        let drained = bus.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, InstanceId(1));
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = EventBus::new();
        let tx = bus.sender();
        let handle = std::thread::spawn(move || {
            for _ in 0..10 {
                tx.send((InstanceId(0), event())).unwrap();
            }
        });
        handle.join().unwrap();
        assert_eq!(bus.drain().len(), 10);
    }
}
