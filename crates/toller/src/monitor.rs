//! UI transition monitoring.

use std::sync::Arc;

use taopt_ui_model::{Action, ScreenObservation, Trace, TraceEvent};

use crate::events::EventSender;
use crate::instance::InstanceId;

/// Builds the UI transition trace of one testing instance.
///
/// The monitor sees the same observations the tool sees (after
/// enforcement) plus the action that produced each of them — nothing else.
/// That is the entire information channel into TaOPT's analyzer.
#[derive(Debug)]
pub struct TransitionMonitor {
    instance: InstanceId,
    trace: Trace,
    publish: Option<EventSender>,
}

impl TransitionMonitor {
    /// Creates a monitor for the given instance.
    pub fn new(instance: InstanceId) -> Self {
        TransitionMonitor {
            instance,
            trace: Trace::new(),
            publish: None,
        }
    }

    /// Also publish each event on a bus ([`crate::EventBus::sender`]).
    pub fn with_publisher(mut self, tx: EventSender) -> Self {
        self.publish = Some(tx);
        self
    }

    /// Records an observation. `prev` is the screen the `action` was fired
    /// on (`None` for the very first observation).
    pub fn record(
        &mut self,
        prev: Option<&ScreenObservation>,
        action: Option<Action>,
        obs: &ScreenObservation,
    ) {
        let action_widget_rid = match (prev, action) {
            (Some(p), Some(Action::Widget(id))) => p
                .hierarchy
                .widget_for(id)
                .and_then(|w| w.resource_id.as_deref().map(Arc::from)),
            _ => None,
        };
        let event = TraceEvent {
            time: obs.time,
            screen: obs.screen,
            activity: obs.activity,
            abstract_id: obs.abstract_id(),
            abstraction: obs.abstraction.clone(),
            action,
            action_widget_rid,
        };
        if let Some(tx) = &self.publish {
            let _ = tx.send(self.instance, event.clone());
        }
        self.trace.push(event);
    }

    /// Records an already-built event (e.g. republishing another
    /// monitor's trace onto a bus).
    pub fn record_event(&mut self, event: TraceEvent) {
        if let Some(tx) = &self.publish {
            let _ = tx.send(self.instance, event.clone());
        }
        self.trace.push(event);
    }

    /// The instance this monitor belongs to.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// The trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
    use taopt_ui_model::VirtualTime;

    #[test]
    fn record_captures_widget_rid() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("mon", 1)).unwrap());
        let mut rt = AppRuntime::launch(app, 1);
        let mut m = TransitionMonitor::new(InstanceId(0));
        let first = rt.observe(VirtualTime::ZERO);
        m.record(None, None, &first);
        let (aid, _) = first.enabled_actions()[0];
        let out = rt
            .execute(Action::Widget(aid), VirtualTime::from_secs(1))
            .unwrap();
        m.record(Some(&first), Some(Action::Widget(aid)), &out.observation);
        let events = m.trace().events();
        assert_eq!(events.len(), 2);
        assert!(events[0].action_widget_rid.is_none());
        assert!(
            events[1].action_widget_rid.is_some(),
            "rid of the fired widget captured"
        );
        assert_eq!(events[1].action, Some(Action::Widget(aid)));
    }

    #[test]
    fn publisher_receives_copies() {
        let bus = crate::events::EventBus::new();
        let app = Arc::new(generate_app(&GeneratorConfig::small("mon", 2)).unwrap());
        let mut rt = AppRuntime::launch(app, 1);
        let mut m = TransitionMonitor::new(InstanceId(3)).with_publisher(bus.sender());
        let obs = rt.observe(VirtualTime::ZERO);
        m.record(None, None, &obs);
        let drained = bus.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].instance, InstanceId(3));
        assert_eq!(drained[0].seq, 0);
        assert_eq!(m.trace().len(), 1);
    }
}
