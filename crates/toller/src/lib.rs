//! A Toller-style instrumentation shim.
//!
//! The real Toller (Wang et al., ISSTA'21) is an infrastructure layer
//! injected into the Android system services: it can (a) report every UI
//! action together with the surrounding UI hierarchy *without modifying
//! the testing tool or the AUT*, and (b) manipulate UI elements — TaOPT
//! uses it to **disable** the widgets that lead into blocked UI subspaces
//! before the test-generation tool can interact with them (§5.2–§5.3).
//!
//! This crate reproduces that interposition point for the simulated stack:
//!
//! * [`TransitionMonitor`] — builds the per-instance UI transition
//!   [`taopt_ui_model::Trace`] from observations, optionally publishing
//!   each event on a [`crossbeam`] channel ([`EventBus`]) for streaming
//!   consumers;
//! * [`BlockList`] / [`EntrypointRule`] — the shared, dynamically updated
//!   set of blocked subspace entrypoints, applied to every hierarchy
//!   *before* the tool observes it;
//! * [`InstrumentedInstance`] — one testing instance: an emulator, a
//!   black-box tool, a monitor and the shared block list, advanced one
//!   tool step at a time.
//!
//! The key invariant (behaviour preservation, RQ5): enforcement only ever
//! flips `enabled` bits on widgets. It never changes the tool, the app's
//! transition model, or the screen abstraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enforce;
pub mod events;
pub mod instance;
pub mod monitor;

pub use enforce::{BlockList, EntrypointRule, SharedBlockList};
pub use events::{BusEvent, EventBus, EventSender};
pub use instance::{InstanceId, InstrumentedInstance, StepReport};
pub use monitor::TransitionMonitor;
