//! One instrumented testing instance.

use std::fmt;
use std::sync::Arc;

use taopt_app_sim::{App, CrashSignature};
use taopt_device::{DeviceId, Emulator};
use taopt_tools::TestingTool;
use taopt_ui_model::{ScreenObservation, VirtualTime};

use crate::enforce::{shared_block_list, SharedBlockList};
use crate::monitor::TransitionMonitor;

/// Identifier of a testing instance within a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u32);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// The outcome of one instrumented tool step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Device time after the step.
    pub time: VirtualTime,
    /// Crash fired by the step, if any.
    pub crash: Option<CrashSignature>,
    /// Whether a *new* distinct screen was reached (stall detection).
    pub new_screen: bool,
    /// How many widgets enforcement disabled before the tool observed.
    pub widgets_blocked: usize,
    /// Methods newly covered by this step (first time for this instance).
    pub newly_covered: Vec<taopt_app_sim::MethodId>,
}

/// One testing instance: emulator + black-box tool + Toller monitor +
/// shared block list, advanced one tool action at a time.
///
/// The step loop reproduces TaOPT's interposition exactly: *observe →
/// enforce (disable blocked entrypoints) → let the tool pick → execute →
/// monitor the transition*. The tool never sees a blocked widget, and
/// TaOPT never sees the tool's internals.
pub struct InstrumentedInstance {
    id: InstanceId,
    emulator: Emulator,
    tool: Box<dyn TestingTool>,
    monitor: TransitionMonitor,
    blocklist: SharedBlockList,
    distinct_screens: usize,
    last_obs: Option<ScreenObservation>,
}

impl fmt::Debug for InstrumentedInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstrumentedInstance")
            .field("id", &self.id)
            .field("device", &self.emulator.id())
            .field("tool", &self.tool.name())
            .field("trace_len", &self.monitor.trace().len())
            .finish()
    }
}

impl InstrumentedInstance {
    /// Boots an instance: device + tool + empty trace + fresh block list.
    pub fn boot(
        id: InstanceId,
        device: DeviceId,
        app: Arc<App>,
        tool: Box<dyn TestingTool>,
        seed: u64,
        start: VirtualTime,
    ) -> Self {
        Self::boot_with(
            id,
            device,
            app,
            tool,
            seed,
            start,
            taopt_device::EmulatorConfig::default(),
        )
    }

    /// [`InstrumentedInstance::boot`] with explicit emulator timing and
    /// flakiness configuration.
    pub fn boot_with(
        id: InstanceId,
        device: DeviceId,
        app: Arc<App>,
        tool: Box<dyn TestingTool>,
        seed: u64,
        start: VirtualTime,
        emulator_config: taopt_device::EmulatorConfig,
    ) -> Self {
        let emulator = Emulator::boot_with(device, app, seed, start, emulator_config);
        let mut inst = InstrumentedInstance {
            id,
            emulator,
            tool,
            monitor: TransitionMonitor::new(id),
            blocklist: shared_block_list(),
            distinct_screens: 0,
            last_obs: None,
        };
        // Record the initial screen (after auto-login, if any).
        let mut obs = inst.emulator.observe();
        inst.blocklist
            .read()
            .apply(obs.abstract_id(), &mut obs.hierarchy);
        inst.monitor.record(None, None, &obs);
        inst.distinct_screens = inst.emulator.distinct_screens();
        inst.last_obs = Some(obs);
        inst
    }

    /// Instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The emulator (coverage, crashes, logcat, clock).
    pub fn emulator(&self) -> &Emulator {
        &self.emulator
    }

    /// Mutable emulator access (used by partition baselines to jump
    /// between activities via Intents).
    pub fn emulator_mut(&mut self) -> &mut Emulator {
        &mut self.emulator
    }

    /// The shared block list handle (held by the coordinator too).
    pub fn blocklist(&self) -> SharedBlockList {
        Arc::clone(&self.blocklist)
    }

    /// The UI transition trace so far.
    pub fn trace(&self) -> &taopt_ui_model::Trace {
        self.monitor.trace()
    }

    /// The tool's name.
    pub fn tool_name(&self) -> &'static str {
        self.tool.name()
    }

    /// Current device time.
    pub fn now(&self) -> VirtualTime {
        self.emulator.now()
    }

    /// Runs one tool step.
    pub fn step(&mut self) -> StepReport {
        let prev = self
            .last_obs
            .take()
            .unwrap_or_else(|| self.emulator.observe());
        let action = self.tool.next_action(&prev);
        let out = self
            .emulator
            .execute(action)
            .expect("tools only fire actions offered by the observation");
        // Enforce on the *next* observation before the tool sees it.
        let mut obs = out.observation;
        let widgets_blocked = self
            .blocklist
            .read()
            .apply(obs.abstract_id(), &mut obs.hierarchy);
        self.tool.on_transition(prev.abstract_id(), action, &obs);
        if out.crash.is_some() {
            self.tool.on_crash();
        }
        self.monitor.record(Some(&prev), Some(action), &obs);
        let screens = self.emulator.distinct_screens();
        let new_screen = screens > self.distinct_screens;
        self.distinct_screens = screens;
        let report = StepReport {
            time: self.emulator.now(),
            crash: out.crash,
            new_screen,
            widgets_blocked,
            newly_covered: out.newly_covered,
        };
        self.last_obs = Some(obs);
        report
    }

    /// Launches a screen directly by Intent (ParaAim-style activity
    /// partitioning); the jump is recorded in the trace as an
    /// action-less observation.
    pub fn jump_to(&mut self, screen: taopt_ui_model::ScreenId) {
        let mut obs = self.emulator.jump_to(screen);
        self.blocklist
            .read()
            .apply(obs.abstract_id(), &mut obs.hierarchy);
        self.monitor.record(None, None, &obs);
        self.distinct_screens = self.emulator.distinct_screens();
        self.last_obs = Some(obs);
    }

    /// Runs steps until the device clock reaches `deadline`.
    pub fn run_until(&mut self, deadline: VirtualTime) -> Vec<StepReport> {
        let mut reports = Vec::new();
        while self.emulator.now() < deadline {
            reports.push(self.step());
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    fn boot(tool: ToolKind, seed: u64) -> InstrumentedInstance {
        let app = Arc::new(generate_app(&GeneratorConfig::small("inst", 5)).unwrap());
        InstrumentedInstance::boot(
            InstanceId(0),
            DeviceId(0),
            app,
            tool.build(seed),
            seed,
            VirtualTime::ZERO,
        )
    }

    #[test]
    fn stepping_builds_a_trace_and_advances_time() {
        let mut inst = boot(ToolKind::Monkey, 1);
        for _ in 0..50 {
            inst.step();
        }
        assert_eq!(inst.trace().len(), 51, "initial + 50 step events");
        assert!(inst.now() > VirtualTime::ZERO);
        assert!(inst.emulator().coverage().count() > 0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut inst = boot(ToolKind::Ape, 2);
        let deadline = VirtualTime::ZERO + VirtualDuration::from_mins(2);
        inst.run_until(deadline);
        assert!(inst.now() >= deadline);
        // One action is 1.5 s, so ~80 steps in 2 minutes.
        let len = inst.trace().len();
        assert!((60..=120).contains(&len), "trace len {len}");
    }

    #[test]
    fn blocking_an_entrypoint_stops_subspace_entry() {
        use crate::enforce::EntrypointRule;
        // Boot, find the hub observation and one tab widget.
        let mut inst = boot(ToolKind::Monkey, 3);
        let hub_obs = inst.emulator_mut().observe();
        let hub_abs = hub_obs.abstract_id();
        // Identify a tab widget rid from the hierarchy.
        let tab_rid = {
            let mut rid = None;
            hub_obs.hierarchy.root().visit(&mut |w| {
                if rid.is_none() {
                    if let Some(r) = &w.resource_id {
                        if r.starts_with("tab_") {
                            rid = Some(r.clone());
                        }
                    }
                }
            });
            rid.expect("hub has tab widgets")
        };
        inst.blocklist()
            .write()
            .block(EntrypointRule::new(hub_abs, tab_rid.clone()));
        // Drive; whenever we are on the hub, the blocked tab must be gone.
        let mut blocked_seen = 0;
        for _ in 0..400 {
            let r = inst.step();
            blocked_seen += r.widgets_blocked;
        }
        assert!(blocked_seen > 0, "enforcement fired at least once");
        // The tool can never fire the blocked tab: check the trace.
        let fired = inst
            .trace()
            .events()
            .iter()
            .any(|e| e.action_widget_rid.as_deref() == Some(tab_rid.as_str()));
        assert!(!fired, "blocked widget must never be actioned");
    }

    #[test]
    fn all_three_tools_drive_instances() {
        for kind in ToolKind::ALL {
            let mut inst = boot(kind, 9);
            for _ in 0..30 {
                inst.step();
            }
            assert_eq!(inst.tool_name(), kind.name());
            assert!(inst.trace().len() > 1);
        }
    }
}
