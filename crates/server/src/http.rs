//! A minimal, std-only HTTP/1.1 layer.
//!
//! The container this system builds in is offline, so no external HTTP
//! stack is available — and none is needed: the control plane speaks a
//! deliberately small subset of HTTP/1.1. One request per connection
//! (`Connection: close`), bodies framed by `Content-Length`, no chunked
//! transfer, no keep-alive, no TLS. Every limit is explicit so a
//! misbehaving peer costs a bounded amount of memory and time, never an
//! unbounded buffer or a hung worker.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body (checkpoints with big specs fit with
/// orders of magnitude to spare).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Socket read/write timeout: a stalled peer frees its worker.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parse- or framing-level HTTP failure (maps to 400, never a panic).
#[derive(Debug)]
pub struct HttpError(pub String);

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError(format!("io: {e}"))
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (`/v1/campaigns/3`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The path split into non-empty segments
    /// (`/v1/campaigns/3` → `["v1", "campaigns", "3"]`).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Reads and parses one request from `stream`. Enforces [`MAX_HEAD_BYTES`]
/// and [`MAX_BODY_BYTES`]; anything over budget or malformed is a clean
/// [`HttpError`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut head = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    head += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError("empty request line".to_owned()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError("request line missing target".to_owned()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError("request line missing version".to_owned()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError(format!("unsupported version {version}")));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head += header.len();
        if head > MAX_HEAD_BYTES {
            return Err(HttpError("request head too large".to_owned()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| HttpError("unreadable content-length".to_owned()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| HttpError("body is not utf-8".to_owned()))?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q),
        None => (target.clone(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (kv.to_owned(), String::new()),
        })
        .collect();

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// One response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let value = taopt_ui_model::json::Value::Object(vec![(
            "error".to_owned(),
            taopt_ui_model::json::Value::Str(message.to_owned()),
        )]);
        Response::json(status, value.to_json_string())
    }
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `response` to `stream` and flushes. Connection: close always —
/// one request per connection keeps the worker pool's accounting exact.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if response.status == 503 || response.status == 429 {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}
