//! JSON wire schemas shared by the server routes and the typed client.
//!
//! Everything on the wire is either a checkpoint in its durable text
//! format ([`taopt_service::checkpoint::encode`]) or a small JSON object
//! built from these codecs, so the client and server cannot drift apart.

use taopt_service::{CampaignId, CampaignStatus};
use taopt_ui_model::json::{JsonError, Value};

/// Renders a campaign status as its wire object:
/// `{"id":3,"state":"running","round":7}`.
pub fn status_to_value(id: CampaignId, status: &CampaignStatus) -> Value {
    let mut fields = vec![("id".to_owned(), Value::UInt(id.0))];
    match status {
        CampaignStatus::Queued => {
            fields.push(("state".to_owned(), Value::Str("queued".to_owned())));
        }
        CampaignStatus::Running { round } => {
            fields.push(("state".to_owned(), Value::Str("running".to_owned())));
            fields.push(("round".to_owned(), Value::UInt(*round)));
        }
        CampaignStatus::Paused { round } => {
            fields.push(("state".to_owned(), Value::Str("paused".to_owned())));
            fields.push(("round".to_owned(), Value::UInt(*round)));
        }
        CampaignStatus::Done => {
            fields.push(("state".to_owned(), Value::Str("done".to_owned())));
        }
        CampaignStatus::Failed(reason) => {
            fields.push(("state".to_owned(), Value::Str("failed".to_owned())));
            fields.push(("reason".to_owned(), Value::Str(reason.clone())));
        }
    }
    Value::Object(fields)
}

/// Parses the wire status object back into `(id, status)`.
pub fn status_from_value(v: &Value) -> Result<(CampaignId, CampaignStatus), JsonError> {
    let id = v
        .require("id")?
        .as_u64()
        .ok_or_else(|| JsonError::conversion("id must be a u64"))?;
    let state = v
        .require("state")?
        .as_str()
        .ok_or_else(|| JsonError::conversion("state must be a string"))?;
    let round = || -> Result<u64, JsonError> {
        v.require("round")?
            .as_u64()
            .ok_or_else(|| JsonError::conversion("round must be a u64"))
    };
    let status = match state {
        "queued" => CampaignStatus::Queued,
        "running" => CampaignStatus::Running { round: round()? },
        "paused" => CampaignStatus::Paused { round: round()? },
        "done" => CampaignStatus::Done,
        "failed" => CampaignStatus::Failed(
            v.require("reason")?
                .as_str()
                .ok_or_else(|| JsonError::conversion("reason must be a string"))?
                .to_owned(),
        ),
        other => {
            return Err(JsonError::conversion(format!(
                "unknown campaign state `{other}`"
            )))
        }
    };
    Ok((CampaignId(id), status))
}

/// `{"id":3}` — submit/import responses.
pub fn id_to_value(id: CampaignId) -> Value {
    Value::Object(vec![("id".to_owned(), Value::UInt(id.0))])
}

/// Parses an `{"id":3}` response.
pub fn id_from_value(v: &Value) -> Result<CampaignId, JsonError> {
    Ok(CampaignId(v.require("id")?.as_u64().ok_or_else(|| {
        JsonError::conversion("id must be a u64")
    })?))
}

/// `{"checkpointed":[1,2,3]}` — the drain response.
pub fn drained_to_value(ids: &[CampaignId]) -> Value {
    Value::Object(vec![(
        "checkpointed".to_owned(),
        Value::Array(ids.iter().map(|id| Value::UInt(id.0)).collect()),
    )])
}

/// Parses the drain response.
pub fn drained_from_value(v: &Value) -> Result<Vec<CampaignId>, JsonError> {
    v.require("checkpointed")?
        .as_array()
        .ok_or_else(|| JsonError::conversion("checkpointed must be an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(CampaignId)
                .ok_or_else(|| JsonError::conversion("checkpointed ids must be u64"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_roundtrips_every_state() {
        for status in [
            CampaignStatus::Queued,
            CampaignStatus::Running { round: 7 },
            CampaignStatus::Paused { round: 3 },
            CampaignStatus::Done,
            CampaignStatus::Failed("digest mismatch".to_owned()),
        ] {
            let text = status_to_value(CampaignId(9), &status).to_json_string();
            let v = Value::parse(&text).unwrap();
            let (id, back) = status_from_value(&v).unwrap();
            assert_eq!(id, CampaignId(9));
            assert_eq!(back, status);
        }
    }

    #[test]
    fn drain_list_roundtrips() {
        let ids = vec![CampaignId(1), CampaignId(5), CampaignId(12)];
        let text = drained_to_value(&ids).to_json_string();
        let back = drained_from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ids);
    }
}
