//! Typed blocking client for the control-plane API.
//!
//! One connection per request (mirroring the server's `Connection:
//! close` policy), std `TcpStream` only. Every call either returns the
//! typed payload or a [`ClientError`] that distinguishes transport
//! failures from server-side rejections (which carry the HTTP status and
//! the server's error message).

use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use taopt_service::checkpoint as ckpt_codec;
use taopt_service::{CampaignId, CampaignSpec, CampaignStatus, Checkpoint, Priority};
use taopt_ui_model::json::Value;

use crate::http::IO_TIMEOUT;
use crate::wire;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level trouble (connect, read, write).
    Io(std::io::Error),
    /// The server answered with an error status.
    Server {
        /// HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
    /// The response did not match the wire schema.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server { status, message } => write!(f, "server ({status}): {message}"),
            ClientError::Protocol(why) => write!(f, "protocol: {why}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The HTTP status of a server-side rejection, if that is what this
    /// error is.
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Server { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// A blocking control-plane client bound to one shard address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the shard at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr }
    }

    /// The shard this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/response exchange. Returns `(status, body)` for any
    /// complete HTTP response; transport failures are `Err`.
    fn exchange(
        &self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        // Connection: close framing — read to EOF, then split the head.
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let (head, payload) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| ClientError::Protocol("response missing header block".to_owned()))?;
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ClientError::Protocol("unreadable status line".to_owned()))?;
        Ok((status, payload.to_owned()))
    }

    /// Like [`Client::exchange`], but turns non-2xx statuses into
    /// [`ClientError::Server`] with the `error` field as the message.
    fn call(
        &self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> Result<String, ClientError> {
        let (status, payload) = self.exchange(method, path, content_type, body)?;
        if (200..300).contains(&status) {
            return Ok(payload);
        }
        let message = Value::parse(&payload)
            .ok()
            .and_then(|v| v.get("error").and_then(|e| e.as_str().map(str::to_owned)))
            .unwrap_or(payload);
        Err(ClientError::Server { status, message })
    }

    fn parse(payload: &str) -> Result<Value, ClientError> {
        Value::parse(payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a campaign spec at `priority`; returns the shard-assigned
    /// id.
    pub fn submit(
        &self,
        spec: &CampaignSpec,
        priority: Priority,
    ) -> Result<CampaignId, ClientError> {
        let body = Value::Object(vec![
            ("priority".to_owned(), Value::UInt(priority as u64)),
            ("spec".to_owned(), spec.to_value()),
        ])
        .to_json_string();
        let payload = self.call("POST", "/v1/campaigns", "application/json", &body)?;
        wire::id_from_value(&Self::parse(&payload)?)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Current status of a campaign.
    pub fn status(&self, id: CampaignId) -> Result<CampaignStatus, ClientError> {
        let payload = self.call("GET", &format!("/v1/campaigns/{}", id.0), "text/plain", "")?;
        let (_, status) = wire::status_from_value(&Self::parse(&payload)?)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(status)
    }

    /// One bounded server-side wait: blocks up to `timeout` (capped by
    /// the server) and returns the status reached.
    pub fn wait_once(
        &self,
        id: CampaignId,
        timeout: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        let payload = self.call(
            "GET",
            &format!(
                "/v1/campaigns/{}/wait?timeout_ms={}",
                id.0,
                timeout.as_millis()
            ),
            "text/plain",
            "",
        )?;
        let (_, status) = wire::status_from_value(&Self::parse(&payload)?)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(status)
    }

    /// Blocks until the campaign is terminal or `deadline` elapses,
    /// looping bounded server-side waits (no busy polling). On deadline,
    /// returns the last observed status.
    pub fn wait(&self, id: CampaignId, deadline: Duration) -> Result<CampaignStatus, ClientError> {
        let t0 = Instant::now();
        loop {
            let left = deadline.saturating_sub(t0.elapsed());
            let status = self.wait_once(id, left.min(Duration::from_secs(5)))?;
            match status {
                CampaignStatus::Done | CampaignStatus::Failed(_) => return Ok(status),
                _ if t0.elapsed() >= deadline => return Ok(status),
                _ => {}
            }
        }
    }

    /// The finished campaign's coverage report.
    pub fn result(&self, id: CampaignId) -> Result<String, ClientError> {
        let payload = self.call(
            "GET",
            &format!("/v1/campaigns/{}/result", id.0),
            "text/plain",
            "",
        )?;
        Self::parse(&payload)?
            .get("report")
            .and_then(|r| r.as_str().map(str::to_owned))
            .ok_or_else(|| ClientError::Protocol("result missing `report`".to_owned()))
    }

    /// Prometheus text exposition of the shard's metrics.
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.call("GET", "/metrics", "text/plain", "")
    }

    /// Drains the shard: every campaign checkpoints, nothing new is
    /// accepted. Returns the checkpointed campaign ids.
    pub fn drain(&self) -> Result<Vec<CampaignId>, ClientError> {
        let payload = self.call("POST", "/v1/drain", "application/json", "")?;
        wire::drained_from_value(&Self::parse(&payload)?)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Exports a campaign's checkpoint in its durable text format,
    /// detaching the campaign from the shard (preempting it first if it
    /// is mid-flight).
    pub fn export_checkpoint_text(&self, id: CampaignId) -> Result<String, ClientError> {
        self.call(
            "GET",
            &format!("/v1/campaigns/{}/checkpoint", id.0),
            "text/plain",
            "",
        )
    }

    /// Typed variant of [`Client::export_checkpoint_text`]: parses and
    /// checksum-validates the exported checkpoint.
    pub fn export_checkpoint(&self, id: CampaignId) -> Result<Checkpoint, ClientError> {
        let text = self.export_checkpoint_text(id)?;
        ckpt_codec::decode(&text, &format!("export from {}", self.addr))
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Imports checkpoint text exported from another shard; returns the
    /// importing shard's fresh id for the campaign.
    pub fn import_checkpoint_text(&self, text: &str) -> Result<CampaignId, ClientError> {
        let payload = self.call(
            "POST",
            "/v1/campaigns/import",
            "application/x-taopt-checkpoint",
            text,
        )?;
        wire::id_from_value(&Self::parse(&payload)?)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Typed variant of [`Client::import_checkpoint_text`].
    pub fn import_checkpoint(&self, ckpt: &Checkpoint) -> Result<CampaignId, ClientError> {
        self.import_checkpoint_text(&ckpt_codec::encode(ckpt))
    }
}

/// Migrates a campaign between shards: exports the durable checkpoint
/// from `from` (preempting a mid-flight campaign at its next round
/// boundary) and imports it into `to`, where it resumes by verified
/// deterministic replay. Returns the destination shard's id for the
/// campaign. The checkpoint bytes travel verbatim — the checksum written
/// by the source shard is what the destination validates.
pub fn migrate(from: &Client, to: &Client, id: CampaignId) -> Result<CampaignId, ClientError> {
    let text = from.export_checkpoint_text(id)?;
    to.import_checkpoint_text(&text)
}
