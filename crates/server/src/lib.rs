//! # taopt-server — the campaign service on the network
//!
//! [`taopt-service`](taopt_service) answers "run many campaigns
//! durably, in one process". This crate puts that service on the wire so
//! one farm shard can serve many tenants — and so shards can hand
//! campaigns to each other (DESIGN.md §14):
//!
//! - **Control plane** ([`server`]) — a std-only HTTP/1.1 API over
//!   `TcpListener` (the build environment is offline; no external HTTP
//!   stack): submit, status, bounded wait, result, Prometheus `/metrics`,
//!   graceful drain. A bounded worker pool with explicit backpressure
//!   (503 when the connection queue is full, 429 at the pending-campaign
//!   cap) keeps the footprint fixed under any load — never a thread per
//!   connection.
//! - **Checkpoint migration** — `GET /v1/campaigns/{id}/checkpoint`
//!   exports a campaign's durable `(spec, round, digest)` checkpoint,
//!   preempting it first if it is mid-flight, and *detaches* it from the
//!   shard; `POST /v1/campaigns/import` admits it elsewhere, where it
//!   resumes by deterministic replay with the `CampaignDigest` verified
//!   — so a campaign
//!   migrated between shards finishes byte-identical to one that never
//!   moved, and a tampered checkpoint is rejected cleanly.
//! - **Typed client** ([`client`]) — a blocking client over `TcpStream`
//!   with the same types the service uses in-process, plus
//!   [`migrate`] composing export and import.
//!
//! ```no_run
//! use taopt_server::{serve, Client, ServerConfig};
//! use taopt_service::{AppSource, AppSpec, CampaignService, CampaignSpec, ServiceConfig};
//! use taopt::experiments::ExperimentScale;
//! use taopt::RunMode;
//! use taopt_tools::ToolKind;
//! use std::time::Duration;
//!
//! let service = CampaignService::start(ServiceConfig::new("/tmp/taopt-shard-a")).unwrap();
//! let handle = serve(service, ServerConfig::new("127.0.0.1:0")).unwrap();
//! let client = Client::new(handle.addr());
//! let spec = CampaignSpec::new(
//!     "nightly",
//!     vec![AppSpec {
//!         source: AppSource::Catalog("AbsWorkout".to_owned()),
//!         tool: ToolKind::Monkey,
//!         mode: RunMode::TaoptDuration,
//!         seed: 7,
//!     }],
//!     ExperimentScale::quick(),
//! );
//! let id = client.submit(&spec, 5).unwrap();
//! client.wait(id, Duration::from_secs(600)).unwrap();
//! println!("{}", client.result(id).unwrap());
//! handle.stop().shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use client::{migrate, Client, ClientError};
pub use server::{serve, ServerConfig, ServerHandle};
