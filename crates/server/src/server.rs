//! The control-plane server: a bounded worker pool over a `TcpListener`,
//! dispatching the versioned `/v1` API onto a [`CampaignService`].
//!
//! # Backpressure
//!
//! The acceptor never spawns per-connection threads. Accepted sockets go
//! into a bounded queue drained by a fixed worker pool; when the queue is
//! full the acceptor answers `503 Service Unavailable` (with
//! `Retry-After`) on the spot and closes — saturation costs one small
//! write, not a thread. A second, application-level valve protects the
//! service itself: when the number of non-terminal campaigns reaches
//! `max_pending_campaigns`, submissions and imports get `429 Too Many
//! Requests` while cheap status reads keep working. Both rejections are
//! counted (`server_backpressure_total`, `server_throttled_total`).
//!
//! # Routes
//!
//! | Method & path                      | Meaning                                  |
//! |------------------------------------|------------------------------------------|
//! | `POST /v1/campaigns`               | submit `{"priority":P,"spec":{...}}`     |
//! | `GET /v1/campaigns/{id}`           | status                                   |
//! | `GET /v1/campaigns/{id}/wait`      | status, blocking up to `?timeout_ms=T`   |
//! | `GET /v1/campaigns/{id}/result`    | finished coverage report                 |
//! | `GET /v1/campaigns/{id}/checkpoint`| export checkpoint (preempts, detaches)   |
//! | `POST /v1/campaigns/import`        | admit a foreign checkpoint               |
//! | `POST /v1/drain`                   | checkpoint everything, stop accepting    |
//! | `GET /metrics`                     | Prometheus text exposition               |

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use taopt_service::checkpoint as ckpt_codec;
use taopt_service::{CampaignId, CampaignService, CampaignSpec, CampaignStatus, ServiceError};
use taopt_telemetry::Labels;
use taopt_ui_model::json::Value;

use crate::http::{read_request, write_response, Request, Response};
use crate::wire;

/// Server knobs. The defaults favor a small, fully bounded footprint.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// starts answering 503.
    pub queue_depth: usize,
    /// Non-terminal campaigns before submissions/imports get 429.
    pub max_pending_campaigns: usize,
    /// Hard cap on the `wait` route's `timeout_ms` parameter.
    pub max_wait: Duration,
}

impl ServerConfig {
    /// Defaults on `addr`: 4 workers, 64 queued connections, 256 pending
    /// campaigns, 30 s wait cap.
    pub fn new(addr: impl Into<String>) -> Self {
        ServerConfig {
            addr: addr.into(),
            workers: 4,
            queue_depth: 64,
            max_pending_campaigns: 256,
            max_wait: Duration::from_secs(30),
        }
    }
}

/// Anything that can stop the server from starting.
pub type StartError = std::io::Error;

struct Inner {
    service: CampaignService,
    config: ServerConfig,
    stop: AtomicBool,
}

/// A running control-plane server. [`ServerHandle::stop`] shuts the
/// listener and workers down and hands the wrapped service back.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts a server wrapping `service` per `config`.
pub fn serve(service: CampaignService, config: ServerConfig) -> Result<ServerHandle, StartError> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let inner = Arc::new(Inner {
        service,
        config,
        stop: AtomicBool::new(false),
    });

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&rx, &inner))
        })
        .collect();
    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || acceptor_loop(&listener, tx, &inner))
    };

    Ok(ServerHandle {
        inner,
        addr,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped service, for in-process observation alongside the
    /// wire API.
    pub fn service(&self) -> &CampaignService {
        &self.inner.service
    }

    /// Stops accepting, drains in-flight requests, joins every thread,
    /// and returns the wrapped service (so the caller can `shutdown`,
    /// `crash`, or keep using it in-process).
    pub fn stop(mut self) -> CampaignService {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let mut inner = self.inner;
        // Every thread holding a clone has been joined; the unwrap can
        // only race the brief window inside a just-finished join.
        loop {
            match Arc::try_unwrap(inner) {
                Ok(i) => return i.service,
                Err(back) => {
                    inner = back;
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Accepts connections and feeds the bounded worker queue; answers 503
/// inline when the queue is full.
fn acceptor_loop(listener: &TcpListener, tx: SyncSender<TcpStream>, inner: &Arc<Inner>) {
    let backpressure = taopt_telemetry::global().counter("server_backpressure_total");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                backpressure.inc();
                let _ = write_response(
                    &mut stream,
                    &Response::error(503, "request queue is full; retry later"),
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Drains the connection queue until the acceptor hangs up.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, inner: &Inner) {
    loop {
        // Hold the lock only for the dequeue, not for the handling.
        let stream = match rx.lock().recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        handle_connection(stream, inner);
    }
}

/// Reads one request, dispatches it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, inner: &Inner) {
    let telemetry = taopt_telemetry::global();
    let start = Instant::now();
    let (route, response) = match read_request(&mut stream) {
        Ok(request) => dispatch(&request, inner),
        Err(e) => ("bad-request", Response::error(400, &e.to_string())),
    };
    telemetry
        .counter_labeled("server_requests_total", Labels::kind(route))
        .inc();
    if response.status >= 400 {
        telemetry
            .counter_labeled("server_errors_total", Labels::kind(route))
            .inc();
    }
    telemetry
        .histogram_labeled("server_request_latency_us", Labels::kind(route))
        .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    let _ = write_response(&mut stream, &response);
}

/// Maps a [`ServiceError`] onto the wire: not-found, conflict, bad input
/// and internal faults are distinguishable to a remote caller.
fn service_error_response(e: &ServiceError) -> Response {
    let status = match e {
        ServiceError::UnknownCampaign(_) => 404,
        ServiceError::Rejected(_) | ServiceError::DigestMismatch { .. } => 409,
        ServiceError::Corrupt { .. }
        | ServiceError::UnsupportedVersion { .. }
        | ServiceError::Malformed(_)
        | ServiceError::UnknownApp(_) => 400,
        ServiceError::Io(_) => 500,
    };
    Response::error(status, &e.to_string())
}

/// True when the service already tracks `max_pending_campaigns`
/// non-terminal campaigns (the 429 valve for submit/import).
fn at_pending_cap(inner: &Inner) -> bool {
    inner.service.pending_campaigns() >= inner.config.max_pending_campaigns
}

/// Routes one request. Returns the route label (for telemetry) and the
/// response.
fn dispatch(request: &Request, inner: &Inner) -> (&'static str, Response) {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => ("metrics", Response::text(200, inner.service.metrics_text())),
        ("POST", ["v1", "drain"]) => {
            let ids = inner.service.drain();
            (
                "drain",
                Response::json(200, wire::drained_to_value(&ids).to_json_string()),
            )
        }
        ("POST", ["v1", "campaigns"]) => ("submit", handle_submit(request, inner)),
        ("POST", ["v1", "campaigns", "import"]) => ("import", handle_import(request, inner)),
        ("GET", ["v1", "campaigns", id]) => ("status", handle_status(id, inner)),
        ("GET", ["v1", "campaigns", id, "wait"]) => ("wait", handle_wait(request, id, inner)),
        ("GET", ["v1", "campaigns", id, "result"]) => ("result", handle_result(id, inner)),
        ("GET", ["v1", "campaigns", id, "checkpoint"]) => ("export", handle_export(id, inner)),
        (_, ["metrics"]) | (_, ["v1", ..]) => {
            ("unknown", Response::error(405, "method not allowed"))
        }
        _ => ("unknown", Response::error(404, "no such route")),
    }
}

fn parse_id(raw: &str) -> Result<CampaignId, Response> {
    raw.parse::<u64>()
        .map(CampaignId)
        .map_err(|_| Response::error(400, &format!("campaign id `{raw}` is not a u64")))
}

fn handle_submit(request: &Request, inner: &Inner) -> Response {
    if at_pending_cap(inner) {
        taopt_telemetry::global()
            .counter("server_throttled_total")
            .inc();
        return Response::error(429, "too many pending campaigns; retry later");
    }
    let v = match Value::parse(&request.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not json: {e}")),
    };
    let priority = match v.require("priority").ok().and_then(|p| p.as_u64()) {
        Some(p) if p <= u8::MAX as u64 => p as u8,
        _ => return Response::error(400, "field `priority` must be a u8"),
    };
    let spec = match v.require("spec").and_then(CampaignSpec::from_value) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("bad spec: {e}")),
    };
    match inner.service.submit(spec, priority) {
        Ok(id) => Response::json(201, wire::id_to_value(id).to_json_string()),
        Err(e) => service_error_response(&e),
    }
}

fn handle_import(request: &Request, inner: &Inner) -> Response {
    if at_pending_cap(inner) {
        taopt_telemetry::global()
            .counter("server_throttled_total")
            .inc();
        return Response::error(429, "too many pending campaigns; retry later");
    }
    let ckpt = match ckpt_codec::decode(&request.body, "wire import") {
        Ok(c) => c,
        Err(e) => return service_error_response(&e),
    };
    match inner.service.import_checkpoint(ckpt) {
        Ok(id) => Response::json(201, wire::id_to_value(id).to_json_string()),
        Err(e) => service_error_response(&e),
    }
}

fn handle_status(raw_id: &str, inner: &Inner) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(r) => return r,
    };
    match inner.service.status(id) {
        Ok(status) => Response::json(200, wire::status_to_value(id, &status).to_json_string()),
        Err(e) => service_error_response(&e),
    }
}

fn handle_wait(request: &Request, raw_id: &str, inner: &Inner) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(r) => return r,
    };
    let timeout = request
        .query_param("timeout_ms")
        .and_then(|t| t.parse::<u64>().ok())
        .map_or(inner.config.max_wait, Duration::from_millis)
        .min(inner.config.max_wait);
    // Bounded by construction: wait_timeout can never outlive max_wait,
    // so a slow campaign cannot pin this worker (or the peer) forever.
    match inner.service.wait_timeout(id, timeout) {
        Ok(Some(status)) => {
            Response::json(200, wire::status_to_value(id, &status).to_json_string())
        }
        Ok(None) => match inner.service.status(id) {
            Ok(status) => Response::json(200, wire::status_to_value(id, &status).to_json_string()),
            Err(e) => service_error_response(&e),
        },
        Err(e) => service_error_response(&e),
    }
}

fn handle_result(raw_id: &str, inner: &Inner) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(r) => return r,
    };
    match inner.service.result(id) {
        Ok(Some(report)) => {
            let v = Value::Object(vec![
                ("id".to_owned(), Value::UInt(id.0)),
                ("report".to_owned(), Value::Str(report)),
            ]);
            Response::json(200, v.to_json_string())
        }
        Ok(None) => match inner.service.status(id) {
            Ok(CampaignStatus::Failed(reason)) => {
                Response::error(409, &format!("campaign failed: {reason}"))
            }
            _ => Response::error(409, "campaign has not finished"),
        },
        Err(e) => service_error_response(&e),
    }
}

fn handle_export(raw_id: &str, inner: &Inner) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(r) => return r,
    };
    match inner.service.export_checkpoint(id) {
        Ok(ckpt) => Response {
            status: 200,
            content_type: "application/x-taopt-checkpoint",
            body: ckpt_codec::encode(&ckpt),
        },
        Err(e) => service_error_response(&e),
    }
}
