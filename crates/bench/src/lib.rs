//! Shared harness for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` for the index). All binaries accept an
//! optional scale argument:
//!
//! ```text
//! cargo run --release -p taopt-bench --bin table4 [-- quick|paper] [n_apps]
//! ```
//!
//! `paper` (default) runs the full §6.1 setting — 18 apps, 5 instances,
//! 1 virtual hour per run; `quick` shrinks the setting for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::BenchReport;

use std::sync::Arc;

use taopt::experiments::ExperimentScale;
use taopt_app_sim::{catalog_entries, App};

/// A named subject app.
pub type NamedApp = (String, Arc<App>);

/// Loads the first `n` catalog apps (18 = the paper's full set).
pub fn load_apps(n: usize) -> Vec<NamedApp> {
    catalog_entries()
        .into_iter()
        .take(n)
        .map(|e| (e.name.to_owned(), Arc::new(e.generate())))
        .collect()
}

/// Parsed command line of a regeneration binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessArgs {
    /// Evaluation scale.
    pub scale: ExperimentScale,
    /// Number of catalog apps to use.
    pub n_apps: usize,
    /// Base seed.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parses `[quick|paper] [n_apps] [seed]` from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_strs(&args.iter().map(String::as_str).collect::<Vec<_>>())
    }

    /// Parses from raw strings (testable).
    pub fn from_strs(args: &[&str]) -> Self {
        let mut scale = ExperimentScale::paper();
        let mut n_apps = 18;
        let mut seed = 2025;
        let mut positional = 0;
        for a in args {
            match *a {
                "quick" => {
                    scale = ExperimentScale::quick();
                    if n_apps == 18 {
                        n_apps = 4;
                    }
                }
                "paper" => scale = ExperimentScale::paper(),
                other => {
                    if let Ok(v) = other.parse::<u64>() {
                        if positional == 0 {
                            n_apps = v as usize;
                        } else {
                            seed = v;
                        }
                        positional += 1;
                    }
                }
            }
        }
        HarnessArgs {
            scale,
            n_apps: n_apps.clamp(1, 18),
            seed,
        }
    }
}

/// Formats a `(tool → value)` summary line.
pub fn tool_line(label: &str, values: [f64; 3]) -> String {
    format!(
        "{label}: Monkey {:.1}%  Ape {:.1}%  WCTester {:.1}%",
        values[0] * 100.0,
        values[1] * 100.0,
        values[2] * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_to_paper_scale() {
        let a = HarnessArgs::from_strs(&[]);
        assert_eq!(a.n_apps, 18);
        assert_eq!(a.scale, ExperimentScale::paper());
    }

    #[test]
    fn parse_quick_and_counts() {
        let a = HarnessArgs::from_strs(&["quick", "6", "7"]);
        assert_eq!(a.scale, ExperimentScale::quick());
        assert_eq!(a.n_apps, 6);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn load_apps_returns_named_catalog_entries() {
        let apps = load_apps(2);
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].0, "AbsWorkout");
        assert!(apps[0].1.screen_count() > 10);
    }
}
