//! Table 4: statistics of cumulative code coverage — per app and tool,
//! baseline vs. TaOPT duration-constrained vs. TaOPT resource-constrained.

#![allow(clippy::needless_range_loop)]

use taopt::experiments::{evaluation_matrix, table4_rows};
use taopt::report::{pct, TextTable};
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("table4: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = table4_rows(&matrix);

    println!("Table 4: cumulative method coverage (union across instances)");
    let mut table = TextTable::new([
        "App Name", "Mon.", "Ape", "WCT.", "Mon.(D)", "Ape(D)", "WCT.(D)", "Mon.(R)", "Ape(R)",
        "WCT.(R)",
    ]);
    let mut sums = [[0usize; 3]; 3];
    let mut positive = 0usize;
    let mut cells = 0usize;
    for r in &rows {
        let mut line = vec![r.app.clone()];
        for mode in 0..3 {
            for tool in 0..3 {
                let v = r.coverage[tool][mode];
                sums[tool][mode] += v;
                if mode == 0 {
                    line.push(v.to_string());
                } else {
                    let base = r.coverage[tool][0].max(1);
                    let delta = v as f64 / base as f64 - 1.0;
                    line.push(format!("{v} ({})", pct(delta)));
                    cells += 1;
                    if v >= r.coverage[tool][0] {
                        positive += 1;
                    }
                }
            }
        }
        table.row(line);
    }
    let n = rows.len().max(1);
    let mut avg = vec!["Average".to_owned()];
    for mode in 0..3 {
        for tool in 0..3 {
            avg.push((sums[tool][mode] / n).to_string());
        }
    }
    table.row(avg);
    print!("{}", table.render());
    for (ti, name) in ["Monkey", "Ape", "WCTester"].iter().enumerate() {
        let base = sums[ti][0].max(1) as f64;
        println!(
            "{name}: duration {} resource {} (paper: +20.4%/+14.2% Mon, +7.6%/+13.3% Ape, \
             +10.2%/+8.8% WCT)",
            pct(sums[ti][1] as f64 / base - 1.0),
            pct(sums[ti][2] as f64 / base - 1.0),
        );
    }
    println!("{positive}/{cells} cells improve over baseline (paper: 81.5%)");
}
