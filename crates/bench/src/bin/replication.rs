//! Multi-seed replication of the headline coverage gains: reruns the
//! evaluation matrix under several seeds and reports mean ± sd per
//! (tool, mode) — the robustness check behind the single-seed tables.

use taopt::experiments::replicate_gains;
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps.min(8));
    let seeds = [
        args.seed,
        args.seed ^ 0xDEAD,
        args.seed.wrapping_mul(31).wrapping_add(7),
    ];
    eprintln!(
        "replication: {} apps x {} seeds, {:?}",
        apps.len(),
        seeds.len(),
        args.scale
    );
    let rows = replicate_gains(&apps, &args.scale, &seeds);
    println!(
        "coverage gain over baseline, mean +/- sd over {} seeds:",
        seeds.len()
    );
    let mut t = TextTable::new(["Tool", "Mode", "Mean gain", "SD", "Per-seed"]);
    for r in rows {
        t.row([
            r.tool.name().to_owned(),
            r.mode.label().to_owned(),
            format!("{:+.1}%", 100.0 * r.mean_gain),
            format!("{:.1}pp", 100.0 * r.sd_gain),
            r.gains
                .iter()
                .map(|g| format!("{:+.1}%", 100.0 * g))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print!("{}", t.render());
}
