//! Table 5: statistics of distinct crashes — per app and tool, baseline
//! vs. TaOPT duration-constrained vs. TaOPT resource-constrained.

#![allow(clippy::needless_range_loop)]

use taopt::experiments::{evaluation_matrix, table5_rows};
use taopt::report::{times, TextTable};
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("table5: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = table5_rows(&matrix);

    println!("Table 5: distinct crashes (union across instances)");
    let mut table = TextTable::new([
        "App Name", "Mon.", "Ape", "WCT.", "Mon.(D)", "Ape(D)", "WCT.(D)", "Mon.(R)", "Ape(R)",
        "WCT.(R)",
    ]);
    let mut sums = [[0usize; 3]; 3];
    for r in &rows {
        let mut line = vec![r.app.clone()];
        for mode in 0..3 {
            for tool in 0..3 {
                let v = r.crashes[tool][mode];
                sums[tool][mode] += v;
                line.push(v.to_string());
            }
        }
        table.row(line);
    }
    let mut totals = vec!["Total".to_owned()];
    for mode in 0..3 {
        for tool in 0..3 {
            totals.push(sums[tool][mode].to_string());
        }
    }
    table.row(totals);
    print!("{}", table.render());
    let base_total: usize = (0..3).map(|t| sums[t][0]).sum();
    let dur_total: usize = (0..3).map(|t| sums[t][1]).sum();
    let res_total: usize = (0..3).map(|t| sums[t][2]).sum();
    println!(
        "totals: baseline {base_total}, duration {dur_total} ({}), resource {res_total} ({}) \
         (paper: 50 -> 79 duration / 71 resource, 1.2-2.1x per tool)",
        times(dur_total as f64 / base_total.max(1) as f64),
        times(res_total as f64 / base_total.max(1) as f64),
    );
}
