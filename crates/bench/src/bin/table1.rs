//! Table 1: overlaps of UI subspace exploration — for each offline-
//! identified subspace, how many of the parallel instances explored it.

use taopt::experiments::{evaluation_matrix, table1_histogram};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("table1: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let histogram = table1_histogram(&matrix);
    let total: usize = histogram.values().sum();

    println!("Table 1: overlaps of UI subspace exploration (baseline runs)");
    let mut table = TextTable::new(["Overlap freq.", "# of subspaces", "share"]);
    for k in 1..=args.scale.instances {
        let n = histogram.get(&k).copied().unwrap_or(0);
        table.row([
            format!("{k}/{}", args.scale.instances),
            n.to_string(),
            format!(
                "{:.0}%",
                if total > 0 {
                    100.0 * n as f64 / total as f64
                } else {
                    0.0
                }
            ),
        ]);
    }
    print!("{}", table.render());
    let multi: usize = histogram
        .iter()
        .filter(|(k, _)| **k > 1)
        .map(|(_, v)| v)
        .sum();
    println!(
        "total {total} subspaces; {multi} ({:.0}%) explored by more than one instance \
         (paper: 97%), {} by all instances (paper: 36%)",
        if total > 0 {
            100.0 * multi as f64 / total as f64
        } else {
            0.0
        },
        histogram.get(&args.scale.instances).copied().unwrap_or(0),
    );
}
