//! Table 2: method coverage of WCTester under ParaAim-style activity
//! partitioning vs. uncoordinated parallel baseline.

use taopt::experiments::table2_rows;
use taopt::report::{pct, TextTable};
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("table2: {} apps, {:?}", apps.len(), args.scale);
    let rows = table2_rows(&apps, &args.scale, args.seed);

    println!("Table 2: method coverage of WCTester under activity partitioning");
    let mut table = TextTable::new(["App Name", "Baseline", "Parallel", "Rel. Improve."]);
    let mut base_sum = 0usize;
    let mut part_sum = 0usize;
    let mut hurt = 0usize;
    for r in &rows {
        table.row([
            r.app.clone(),
            r.baseline.to_string(),
            r.parallel.to_string(),
            pct(r.relative_improvement()),
        ]);
        base_sum += r.baseline;
        part_sum += r.parallel;
        if r.parallel < r.baseline {
            hurt += 1;
        }
    }
    let n = rows.len().max(1);
    table.row([
        "Average".to_owned(),
        (base_sum / n).to_string(),
        (part_sum / n).to_string(),
        pct(part_sum as f64 / base_sum.max(1) as f64 - 1.0),
    ]);
    print!("{}", table.render());
    println!(
        "activity partitioning reduces coverage on {hurt}/{} apps \
         (paper: 89% of apps, -28.5% average)",
        rows.len()
    );
}
