//! RQ5 behaviour preservation: Jaccard similarity between the method sets
//! covered by baseline and TaOPT runs, and the fraction of baseline-only
//! methods TaOPT misses.

use taopt::experiments::{behavior_rows, evaluation_matrix};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("behavior: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = behavior_rows(&matrix);

    println!("RQ5 behaviour preservation (TaOPT vs baseline union coverage)");
    let mut table = TextTable::new(["Tool", "Mode", "Jaccard", "Baseline-only missed"]);
    for r in &rows {
        table.row([
            r.tool.name().to_owned(),
            r.mode.label().to_owned(),
            format!("{:.2}", r.jaccard),
            format!("{:.1}%", 100.0 * r.missed_fraction),
        ]);
    }
    print!("{}", table.render());
    println!(
        "paper: Jaccard 0.77/0.86/0.85 (duration), 0.77/0.81/0.83 (resource); \
         missed 3.3-5.3%; TaOPT covers >95% of what the tools cover alone"
    );
}
