//! Campaign-service durability bench: an 8-campaign queue with mixed
//! priorities over a capacity-limited farm, killed mid-run and recovered
//! from durable checkpoints. Writes `BENCH_service.json`.
//!
//! Flow: run every campaign directly ([`run_campaign`] via spec) to get
//! the uninterrupted reference reports, then submit all eight to a
//! [`CampaignService`] whose farm only fits two at a time (so the queue,
//! priority order and admission control are all exercised), crash the
//! service once the long flagship campaign is provably mid-run, recover
//! from the checkpoint directory, and drain. Campaigns that finished
//! before the kill lost their in-memory reports with the "process", so
//! they are re-submitted; resumed ones continue from their snapshots.
//!
//! Exit gates (CI smoke): every one of the eight service-produced
//! coverage reports must be byte-identical to its direct reference, at
//! least one campaign must have resumed from a mid-flight (round > 0)
//! checkpoint, and p95 resume latency must stay under
//! [`MAX_RESUME_P95_US`] of host time.

use std::process::ExitCode;
use std::time::Instant;

use taopt::report::TextTable;
use taopt::run_campaign;
use taopt::session::RunMode;
use taopt_bench::{load_apps, BenchReport, HarnessArgs};
use taopt_service::{
    AppSource, AppSpec, CampaignService, CampaignSpec, CampaignStatus, CheckpointStore,
    ServiceConfig,
};
use taopt_tools::ToolKind;
use taopt_ui_model::Value;

/// Campaigns in the queue.
const CAMPAIGNS: usize = 8;

/// Mixed submission priorities (higher runs first).
const PRIORITIES: [u8; CAMPAIGNS] = [9, 5, 3, 7, 2, 6, 4, 8];

/// Host-time p95 resume-latency gate, in µs.
const MAX_RESUME_P95_US: u64 = 5_000_000;

/// Checkpoint cadence in rounds.
const CHECKPOINT_EVERY: u64 = 3;

/// Builds the bench's campaign specs: two catalog apps each, mixed
/// tools, per-campaign seeds, demand capped so the farm fits exactly two
/// campaigns at a time. Campaign 0 is the long flagship the kill targets.
fn build_specs(args: &HarnessArgs) -> Vec<CampaignSpec> {
    let names: Vec<String> = load_apps(args.n_apps).into_iter().map(|(n, _)| n).collect();
    (0..CAMPAIGNS)
        .map(|i| {
            let apps = (0..2)
                .map(|j| AppSpec {
                    source: AppSource::Catalog(names[(i + j) % names.len()].clone()),
                    tool: if (i + j) % 2 == 0 {
                        ToolKind::Monkey
                    } else {
                        ToolKind::Ape
                    },
                    mode: RunMode::TaoptDuration,
                    seed: args.seed + (i * 2 + j) as u64 * 31,
                })
                .collect();
            let mut spec = CampaignSpec::new(format!("bench-{i}"), apps, args.scale);
            spec.capacity = Some(2 * args.scale.instances);
            if i == 0 {
                // Long enough that the kill provably lands mid-run.
                spec.scale.duration = args.scale.duration * 4;
            }
            spec
        })
        .collect()
}

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let specs = build_specs(&args);
    let demand = specs[0].device_demand();
    eprintln!(
        "service: {CAMPAIGNS} campaigns x demand {demand}, farm {}, {:?}",
        2 * demand,
        args.scale
    );

    // Uninterrupted references.
    let direct_start = Instant::now();
    let expected: Vec<String> = specs
        .iter()
        .map(|s| {
            let (apps, config) = s.build().expect("bench spec builds");
            run_campaign(apps, &config).coverage_report()
        })
        .collect();
    let direct_ms = direct_start.elapsed().as_millis() as u64;
    eprintln!("  direct reference runs: {direct_ms}ms");

    // Service run, killed mid-flight.
    let dir = std::env::temp_dir().join(format!("taopt-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 2 * demand;
    config.checkpoint_every = CHECKPOINT_EVERY;
    let service = match CampaignService::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service bench FAILED: cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<_> = specs
        .iter()
        .zip(PRIORITIES)
        .map(|(s, pri)| service.submit(s.clone(), pri).expect("bench spec admitted"))
        .collect();

    // Kill once the flagship campaign (highest priority, runs first) is
    // past its first checkpoints.
    let poll_start = Instant::now();
    loop {
        match service.status(ids[0]).expect("known campaign") {
            CampaignStatus::Running { round } if round >= 2 * CHECKPOINT_EVERY => break,
            CampaignStatus::Done | CampaignStatus::Failed(_) => break,
            _ if poll_start.elapsed().as_secs() > 60 => break,
            _ => std::thread::yield_now(),
        }
    }
    let kill_status = service.status(ids[0]).expect("known campaign");
    service.crash();
    eprintln!("  killed service with flagship at {kill_status:?}");

    // What survived on disk, and how far along each checkpoint was.
    let store = CheckpointStore::new(&dir).expect("checkpoint dir exists");
    let mut checkpoint_rounds: Vec<(u64, u64)> = Vec::new();
    for path in store.list().expect("listable checkpoint dir") {
        match store.load(&path) {
            Ok(c) => checkpoint_rounds.push((c.campaign, c.round)),
            Err(e) => {
                eprintln!("service bench FAILED: unreadable checkpoint {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mid_flight = checkpoint_rounds.iter().filter(|(_, r)| *r > 0).count();

    // Recover and drain.
    let recover_start = Instant::now();
    let (service, recovery) = match CampaignService::recover(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("service bench FAILED: recover: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !recovery.rejected.is_empty() {
        eprintln!(
            "service bench FAILED: recover rejected checkpoints: {:?}",
            recovery.rejected
        );
        return ExitCode::FAILURE;
    }
    // Campaigns that completed before the kill removed their checkpoints
    // and lost their reports with the process: run them again.
    let mut final_ids = ids.clone();
    for (i, id) in ids.iter().enumerate() {
        if !recovery.resumed.contains(id) {
            final_ids[i] = service
                .submit(specs[i].clone(), PRIORITIES[i])
                .expect("resubmission admitted");
        }
    }
    service.wait_all();
    let recover_ms = recover_start.elapsed().as_millis() as u64;

    let mut table = TextTable::new(["Campaign", "Priority", "Path", "CkptRound", "Identical"]);
    let mut all_identical = true;
    for (i, id) in final_ids.iter().enumerate() {
        let resumed = recovery.resumed.contains(id);
        let report = service.result(*id).expect("known campaign");
        let identical = report.as_deref() == Some(expected[i].as_str());
        all_identical &= identical;
        table.row([
            specs[i].name.clone(),
            PRIORITIES[i].to_string(),
            if resumed { "resumed" } else { "rerun" }.to_owned(),
            checkpoint_rounds
                .iter()
                .find(|(c, _)| *c == id.0)
                .map_or("-".to_owned(), |(_, r)| r.to_string()),
            if identical { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!(
        "Campaign service: {CAMPAIGNS} campaigns, farm {} devices, kill + recover mid-run",
        2 * demand
    );
    print!("{}", table.render());

    let snapshot = taopt_telemetry::global().snapshot();
    let resume_hist = snapshot.histogram_total("service_resume_latency_us");
    let (resume_p50_us, resume_p95_us, resumes) = resume_hist.as_ref().map_or((0, 0, 0), |h| {
        (
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.count,
        )
    });
    let checkpoints_written = snapshot.counter_total("service_checkpoints_written_total");
    println!(
        "recovered {} campaigns ({mid_flight} mid-flight), {} replays, \
         resume p50 {:.1}ms / p95 {:.1}ms, {checkpoints_written} checkpoints written, \
         drain {recover_ms}ms (direct {direct_ms}ms)",
        recovery.resumed.len(),
        resumes,
        resume_p50_us as f64 / 1000.0,
        resume_p95_us as f64 / 1000.0,
    );

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("service".to_owned())),
        ("campaigns".to_owned(), Value::UInt(CAMPAIGNS as u64)),
        ("farm_capacity".to_owned(), Value::UInt(2 * demand as u64)),
        ("seed".to_owned(), Value::UInt(args.seed)),
        ("checkpoint_every".to_owned(), Value::UInt(CHECKPOINT_EVERY)),
        (
            "resumed".to_owned(),
            Value::UInt(recovery.resumed.len() as u64),
        ),
        (
            "mid_flight_resumes".to_owned(),
            Value::UInt(mid_flight as u64),
        ),
        ("replays".to_owned(), Value::UInt(resumes)),
        ("byte_identical".to_owned(), Value::Bool(all_identical)),
        ("resume_p50_us".to_owned(), Value::UInt(resume_p50_us)),
        ("resume_p95_us".to_owned(), Value::UInt(resume_p95_us)),
        (
            "checkpoints_written".to_owned(),
            Value::UInt(checkpoints_written),
        ),
        ("direct_ms".to_owned(), Value::UInt(direct_ms)),
        ("recover_drain_ms".to_owned(), Value::UInt(recover_ms)),
    ]);
    let mut report = BenchReport::new("service bench");
    let out = "BENCH_service.json";
    let bytes = report.write_json(out, &doc);
    println!("service bench: wrote {out} ({bytes} bytes)");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    report.gate(all_identical, || {
        "a recovered campaign diverged from its direct run".to_owned()
    });
    report.gate(mid_flight > 0, || {
        "no campaign was mid-flight at the kill".to_owned()
    });
    report.gate(resume_p95_us <= MAX_RESUME_P95_US, || {
        format!("p95 resume latency {resume_p95_us}us exceeds {MAX_RESUME_P95_US}us")
    });
    report.finish()
}
