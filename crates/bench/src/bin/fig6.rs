//! Figure 6: testing resources (machine time) saved by TaOPT — the
//! fraction of the baseline's machine-time budget left over when TaOPT
//! reaches the baseline's final coverage. Also reports the RQ4 discussion's
//! non-parallel control (one instance running the whole budget).

use std::sync::Arc;

use taopt::experiments::{evaluation_matrix, non_parallel_control, savings_rows};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("fig6: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = savings_rows(&matrix, &args.scale);

    println!("Figure 6: machine time saved by TaOPT (% of the baseline machine budget)");
    let mut table = TextTable::new(["App", "Tool", "Duration mode", "Resource mode"]);
    for r in &rows {
        table.row([
            r.app.clone(),
            r.tool.name().to_owned(),
            format!("{:.1}%", 100.0 * r.resource_saved_duration_mode),
            format!("{:.1}%", 100.0 * r.resource_saved_resource_mode),
        ]);
    }
    print!("{}", table.render());
    for tool in ToolKind::ALL {
        let rs: Vec<_> = rows.iter().filter(|r| r.tool == tool).collect();
        let n = rs.len().max(1) as f64;
        let dur: f64 = rs
            .iter()
            .map(|r| r.resource_saved_duration_mode)
            .sum::<f64>()
            / n;
        let res: f64 = rs
            .iter()
            .map(|r| r.resource_saved_resource_mode)
            .sum::<f64>()
            / n;
        println!(
            "{}: mean machine time saved {:.1}% (duration mode), {:.1}% (resource mode) \
             (paper: 64.6/65.9 Mon, 48.9/50.1 Ape, 42.5/47.6 WCT)",
            tool.name(),
            100.0 * dur,
            100.0 * res
        );
    }

    // RQ4 discussion: single long-duration run with the same machine hours.
    println!("\nNon-parallel control (1 instance x full machine budget), first app:");
    if let Some((name, app)) = apps.first() {
        for tool in ToolKind::ALL {
            let single = non_parallel_control(Arc::clone(app), tool, &args.scale, args.seed);
            let parallel = matrix
                .iter()
                .find(|r| {
                    r.app == *name && r.tool == tool && r.mode == taopt::session::RunMode::Baseline
                })
                .map(|r| r.union_coverage)
                .unwrap_or(0);
            println!(
                "  {} on {name}: single {single} vs parallel baseline {parallel} \
                 (paper: parallel is comparable or better)",
                tool.name()
            );
        }
    }
}
