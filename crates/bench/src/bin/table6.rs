//! Table 6: UI overlap measured by the average number of occurrences of
//! distinct abstract UI screens across instances.

#![allow(clippy::needless_range_loop)]

use taopt::experiments::{evaluation_matrix, table6_rows};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("table6: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = table6_rows(&matrix);

    println!("Table 6: average occurrences of distinct UIs");
    let mut table = TextTable::new([
        "App Name", "Mon.", "Ape", "WCT.", "Mon.(D)", "Ape(D)", "WCT.(D)", "Mon.(R)", "Ape(R)",
        "WCT.(R)",
    ]);
    let mut sums = [[0.0f64; 3]; 3];
    for r in &rows {
        let mut line = vec![r.app.clone()];
        for mode in 0..3 {
            for tool in 0..3 {
                let v = r.occurrences[tool][mode];
                sums[tool][mode] += v;
                line.push(format!("{v:.1}"));
            }
        }
        table.row(line);
    }
    let n = rows.len().max(1) as f64;
    let mut avg = vec!["Average".to_owned()];
    for mode in 0..3 {
        for tool in 0..3 {
            avg.push(format!("{:.1}", sums[tool][mode] / n));
        }
    }
    table.row(avg);
    print!("{}", table.render());
    for (ti, name) in ["Monkey", "Ape", "WCTester"].iter().enumerate() {
        let base = sums[ti][0].max(1e-9);
        println!(
            "{name}: overlap reduction duration {:.1}% resource {:.1}% \
             (paper: 64.5/64.5 Mon, 89.5/90.1 Ape, 52.1/37.6 WCT)",
            100.0 * (1.0 - sums[ti][1] / base),
            100.0 * (1.0 - sums[ti][2] / base),
        );
    }
}
