//! Figure 3: overlaps of methods covered by different testing instances in
//! non-coordinated (baseline) parallelized testing — Average Jaccard
//! Similarity over testing duration, per tool.

use taopt::experiments::{evaluation_matrix, fig3_rows};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("fig3: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = fig3_rows(&matrix);

    println!("Figure 3: AJS of covered methods across instances (baseline runs)");
    let mut table = TextTable::new(["Time (s)", "Monkey", "Ape", "WCTester"]);
    if let Some((_, first)) = rows.first() {
        for (i, (t, _)) in first.iter().enumerate() {
            let cells: Vec<String> = std::iter::once(t.to_string())
                .chain(rows.iter().map(|(_, curve)| format!("{:.3}", curve[i].1)))
                .collect();
            table.row(cells);
        }
    }
    print!("{}", table.render());
    for (tool, curve) in &rows {
        let first = curve.first().map(|(_, v)| *v).unwrap_or(0.0);
        let last = curve.last().map(|(_, v)| *v).unwrap_or(0.0);
        println!(
            "{}: AJS {:.2} -> {:.2} ({})",
            tool.name(),
            first,
            last,
            if last > first {
                "rising, as in the paper"
            } else {
                "flat/declining"
            }
        );
    }
}
