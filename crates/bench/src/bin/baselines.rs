//! Head-to-head of all parallelization strategies: uncoordinated baseline,
//! PATS-style master–slave dispatch, ParaAim-style activity partitioning,
//! and TaOPT (both modes) — the comparison the paper's related-work
//! section (§9) sketches qualitatively.

use std::sync::Arc;

use taopt::experiments::run_and_summarize;
use taopt::report::{pct, TextTable};
use taopt::session::RunMode;
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

const MODES: [RunMode; 5] = [
    RunMode::Baseline,
    RunMode::PatsMasterSlave,
    RunMode::ActivityPartition,
    RunMode::TaoptDuration,
    RunMode::TaoptResource,
];

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps.min(6));
    eprintln!("baselines: {} apps, {:?}", apps.len(), args.scale);

    for tool in [ToolKind::Monkey, ToolKind::WcTester] {
        println!(
            "\nparallelization strategies under {} (union coverage):",
            tool.name()
        );
        let mut table =
            TextTable::new(["App", "Baseline", "PATS", "ParaAim", "TaOPT(D)", "TaOPT(R)"]);
        let mut sums = [0usize; 5];
        for (name, app) in &apps {
            let mut row = vec![name.clone()];
            for (i, mode) in MODES.into_iter().enumerate() {
                let s =
                    run_and_summarize(name, Arc::clone(app), tool, mode, &args.scale, args.seed);
                sums[i] += s.union_coverage;
                row.push(s.union_coverage.to_string());
            }
            table.row(row);
        }
        let base = sums[0].max(1);
        table.row(
            std::iter::once("vs baseline".to_owned())
                .chain(sums.iter().map(|s| pct(*s as f64 / base as f64 - 1.0)))
                .collect::<Vec<_>>(),
        );
        print!("{}", table.render());
    }
    println!(
        "\nexpected ordering (paper §3.3/§9): ParaAim < Baseline, PATS ⪅ Baseline \
         (bidirectional transitions defeat dispatch), TaOPT > Baseline."
    );
}
