//! Figure 5: testing duration saved by TaOPT — the fraction of the
//! wall-clock budget left over when TaOPT reaches the baseline's final
//! coverage.

use taopt::experiments::{evaluation_matrix, savings_rows};
use taopt::report::TextTable;
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("fig5: {} apps, {:?}", apps.len(), args.scale);
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    let rows = savings_rows(&matrix, &args.scale);

    println!(
        "Figure 5: testing duration saved by TaOPT (% of the {} budget)",
        args.scale.duration
    );
    let mut table = TextTable::new(["App", "Tool", "Duration mode", "Resource mode"]);
    for r in &rows {
        table.row([
            r.app.clone(),
            r.tool.name().to_owned(),
            format!("{:.1}%", 100.0 * r.duration_saved_duration_mode),
            format!("{:.1}%", 100.0 * r.duration_saved_resource_mode),
        ]);
    }
    print!("{}", table.render());
    for tool in ToolKind::ALL {
        let rs: Vec<_> = rows.iter().filter(|r| r.tool == tool).collect();
        let n = rs.len().max(1) as f64;
        let dur: f64 = rs
            .iter()
            .map(|r| r.duration_saved_duration_mode)
            .sum::<f64>()
            / n;
        let res: f64 = rs
            .iter()
            .map(|r| r.duration_saved_resource_mode)
            .sum::<f64>()
            / n;
        println!(
            "{}: mean duration saved {:.1}% (duration mode), {:.1}% (resource mode) \
             (paper duration mode: 64.0% Mon, 48% Ape, 41.0% WCT)",
            tool.name(),
            100.0 * dur,
            100.0 * res
        );
    }
}
