//! Longitudinal evolution bench: a five-version release train driven by
//! [`run_campaign_sequence`], warm-start versus cold-start arms. Writes
//! `BENCH_evolution.json` with per-version [`taopt::EvolutionReport`]s
//! from both arms plus the rounds-to-first-dedication comparison.
//!
//! Exit gates (CI smoke): the warm-start sequence must be byte-identical
//! at 1 and 4 workers (per-version coverage reports and evolution
//! reports), every version past the base must inject at least one
//! regression crash and the campaign must catch all of them, and the
//! warm arm must reach its first subspace dedication strictly earlier
//! than the cold arm on every post-base version (carried territory is
//! re-dedicated in the first repair pass; cold discovery has to sit out
//! the full `l_min` confirmation window).

use std::process::ExitCode;
use std::sync::Arc;

use taopt::session::{RunMode, SessionConfig};
use taopt::{run_campaign_sequence, CampaignApp, CampaignConfig, VersionOutcome};
use taopt_app_sim::{generate_app, AppEvolution, GeneratorConfig};
use taopt_bench::BenchReport;
use taopt_tools::ToolKind;
use taopt_ui_model::{Value, VirtualDuration};

/// Releases in the train (`V0` plus four evolved versions).
const VERSIONS: u64 = 5;

/// Subject apps per arm.
const N_APPS: usize = 2;

/// Parsed command line: `[quick|paper] [seed]`.
struct Args {
    /// Per-release session budget.
    duration: VirtualDuration,
    /// Base seed for app generation and the evolution sampler.
    seed: u64,
    /// Scale label echoed into the JSON document.
    scale: &'static str,
}

fn parse_args() -> Args {
    let mut duration = VirtualDuration::from_mins(18);
    let mut scale = "paper";
    let mut seed = 21;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "quick" => {
                duration = VirtualDuration::from_mins(12);
                scale = "quick";
            }
            "paper" => {
                duration = VirtualDuration::from_mins(18);
                scale = "paper";
            }
            other => {
                if let Ok(v) = other.parse::<u64>() {
                    seed = v;
                }
            }
        }
    }
    Args {
        duration,
        seed,
        scale,
    }
}

/// The base (`V0`) apps: small generated subjects at a scale where the
/// analyzer reliably confirms subspaces within one release.
fn base_apps(args: &Args) -> Vec<CampaignApp> {
    (0..N_APPS)
        .map(|i| {
            let name = format!("evo{i}");
            let mut config = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
            config.instances = 3;
            config.duration = args.duration;
            config.tick = VirtualDuration::from_secs(10);
            config.analyzer.find_space.l_min = VirtualDuration::from_secs(30);
            config.analyzer.analysis_interval = VirtualDuration::from_secs(20);
            config.seed = args.seed + i as u64;
            CampaignApp {
                name: name.clone(),
                app: Arc::new(
                    generate_app(&GeneratorConfig::small(&name, args.seed + i as u64))
                        .expect("generator config is valid"),
                ),
                config,
            }
        })
        .collect()
}

/// The bench's release train: milder than [`AppEvolution::new`] so
/// learned subspaces regularly survive a release (no renames or screen
/// splits — added affordances are the only touched surface), with
/// shallow always-firing regression crashes a release-length campaign
/// reliably reaches.
fn release_train(seed: u64) -> AppEvolution {
    AppEvolution {
        widget_renames: 0,
        screen_renames: 0,
        screen_splits: 0,
        crash_probability: 1.0,
        crash_min_depth: 1,
        ..AppEvolution::new(seed ^ 0xe0)
    }
}

/// Runs one arm of the comparison.
fn run_arm(args: &Args, workers: usize, warm: bool) -> Vec<VersionOutcome> {
    let config = CampaignConfig {
        workers,
        ..CampaignConfig::default()
    };
    run_campaign_sequence(
        base_apps(args),
        &config,
        &release_train(args.seed),
        VERSIONS,
        warm,
    )
    .expect("evolution sequence runs")
}

/// Earliest dedication round across an outcome's apps (`None` = no app
/// dedicated anything this release).
fn first_dedication(outcome: &VersionOutcome) -> Option<u64> {
    outcome
        .report
        .apps
        .iter()
        .filter_map(|a| a.rounds_to_first_dedication)
        .min()
}

fn arm_json(outcomes: &[VersionOutcome]) -> Value {
    Value::Array(outcomes.iter().map(|o| o.report.to_value()).collect())
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "evolution: {N_APPS} apps x {VERSIONS} versions, {} per release, seed {}",
        args.duration, args.seed
    );

    let warm1 = run_arm(&args, 1, true);
    let warm4 = run_arm(&args, 4, true);
    let cold = run_arm(&args, 1, false);

    let mut report = BenchReport::new("evolution bench");

    // Gate 1: the warm-start release train is byte-deterministic across
    // worker counts — per-version coverage reports and evolution reports.
    let mut deterministic = true;
    for (a, b) in warm1.iter().zip(&warm4) {
        let same = a.result.coverage_report() == b.result.coverage_report() && a.report == b.report;
        report.gate(same, || {
            format!("version {} differs between 1 and 4 workers", a.version)
        });
        deterministic &= same;
    }

    // Gate 2: every post-base version injects at least one regression
    // crash and the campaign catches all of them.
    for o in warm1.iter().skip(1) {
        let injected: usize = o.report.apps.iter().map(|a| a.injected_crashes).sum();
        let missed: usize = o.report.apps.iter().map(|a| a.missed_regressions).sum();
        report.gate(injected >= 1, || {
            format!("version {} injected no regression crash", o.version)
        });
        report.gate(missed == 0, || {
            format!(
                "version {} missed {missed} of {injected} regressions",
                o.version
            )
        });
    }

    // Gate 3: warm-start reaches its first dedication strictly earlier
    // than cold on every post-base version (None = never = infinity).
    let mut dedication = Vec::new();
    for (w, c) in warm1.iter().zip(&cold).skip(1) {
        let wr = first_dedication(w);
        let cr = first_dedication(c);
        report.gate(wr.unwrap_or(u64::MAX) < cr.unwrap_or(u64::MAX), || {
            format!(
                "version {}: warm first dedication {wr:?} not strictly below cold {cr:?}",
                w.version
            )
        });
        dedication.push(Value::Object(vec![
            ("version".to_owned(), Value::UInt(w.version)),
            (
                "warm_rounds".to_owned(),
                wr.map(Value::UInt).unwrap_or(Value::Null),
            ),
            (
                "cold_rounds".to_owned(),
                cr.map(Value::UInt).unwrap_or(Value::Null),
            ),
        ]));
    }

    for o in &warm1 {
        let caught: usize = o.report.apps.iter().map(|a| a.caught_regressions).sum();
        let injected: usize = o.report.apps.iter().map(|a| a.injected_crashes).sum();
        let coverage: usize = o.report.apps.iter().map(|a| a.coverage).sum();
        eprintln!(
            "  V{}: coverage {coverage}, regressions {caught}/{injected} caught, \
             carried {} / invalidated {}",
            o.version,
            o.report
                .apps
                .iter()
                .map(|a| a.subspaces_carried)
                .sum::<usize>(),
            o.report
                .apps
                .iter()
                .map(|a| a.subspaces_invalidated)
                .sum::<usize>(),
        );
    }

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("evolution".to_owned())),
        ("scale".to_owned(), Value::Str(args.scale.to_owned())),
        ("seed".to_owned(), Value::UInt(args.seed)),
        ("versions".to_owned(), Value::UInt(VERSIONS)),
        ("n_apps".to_owned(), Value::UInt(N_APPS as u64)),
        ("deterministic".to_owned(), Value::Bool(deterministic)),
        ("warm".to_owned(), arm_json(&warm1)),
        ("cold".to_owned(), arm_json(&cold)),
        ("dedication".to_owned(), Value::Array(dedication)),
    ]);
    let out = "BENCH_evolution.json";
    let bytes = report.write_json(out, &doc);
    println!("evolution bench: deterministic {deterministic}, wrote {out} ({bytes} bytes)");
    report.finish()
}
