//! Telemetry smoke bench: runs duration-mode TaOPT sessions under
//! moderate chaos and prints what the global telemetry domain observed —
//! the metrics snapshot (counters + latency histograms), the top-k
//! slowest spans, and a replay check of the flight recorder's last 1k
//! events.
//!
//! Exits non-zero when the snapshot is empty or any required series is
//! missing, so CI catches accidental un-wiring of an instrumentation
//! seam.

use std::process::ExitCode;
use std::sync::Arc;

use taopt::run_with_chaos;
use taopt::session::RunMode;
use taopt_bench::{load_apps, BenchReport, HarnessArgs};
use taopt_chaos::{FaultInjector, FaultPlan, FaultRates};
use taopt_telemetry::HistogramSnapshot;
use taopt_tools::ToolKind;

/// Same moderate per-seam rates as the chaos resilience tests: enough
/// pressure to exercise every seam without drowning the session.
fn moderate_rates() -> FaultRates {
    let mut rates = FaultRates::none();
    rates.device_loss = 0.02;
    rates.alloc_refusal = 0.05;
    rates.latency_spike = 0.02;
    rates.event_drop = 0.03;
    rates.event_duplicate = 0.02;
    rates.event_delay = 0.02;
    rates.enforcement_failure = 0.2;
    rates
}

/// Counter series the wiring must produce under moderate chaos.
const REQUIRED_COUNTERS: [&str; 5] = [
    "cover_events_total",
    "bus_events_published_total",
    "faults_injected_total",
    "enforcement_retries_total",
    "chaos_rounds_total",
];

/// Histogram series the wiring must produce under moderate chaos.
const REQUIRED_HISTOGRAMS: [&str; 3] = [
    "span_ns{kind=\"dedicate\"}",
    "emulator_step_ns{seam=\"device\"}",
    "span_ns{kind=\"broadcast\"}",
];

fn histogram_row(name: &str, h: &HistogramSnapshot) -> String {
    let us = |ns: f64| ns / 1000.0;
    format!(
        "  {name:<42} n={:<8} mean={:>9.1}us p50={:>9.1}us p95={:>9.1}us p99={:>9.1}us max={:>9.1}us",
        h.count,
        us(h.mean() as f64),
        us(h.p50() as f64),
        us(h.p95() as f64),
        us(h.p99() as f64),
        us(h.max as f64),
    )
}

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("telemetry: {} apps, {:?}", apps.len(), args.scale);
    let config = args
        .scale
        .session_config(ToolKind::Monkey, RunMode::TaoptDuration, args.seed);

    for (name, app) in &apps {
        let injector = FaultInjector::new(FaultPlan::new(args.seed, moderate_rates()));
        let report = run_with_chaos(Arc::clone(app), &config, &injector);
        eprintln!(
            "  {name}: coverage {}, {} faults injected",
            report.session.union_coverage(),
            report.fault_stats.total_injected()
        );
    }

    let telemetry = taopt_telemetry::global();
    let snapshot = telemetry.snapshot();

    println!(
        "Telemetry snapshot: TaOPT duration mode under moderate chaos ({} instances, seed {})",
        config.instances, config.seed
    );
    if !telemetry.is_enabled() {
        println!("telemetry is DISABLED (TAOPT_TELEMETRY=off); nothing to report");
        return ExitCode::FAILURE;
    }

    println!("\ncounters:");
    for (series, value) in &snapshot.counters {
        println!("  {series:<58} {value}");
    }
    println!("\ngauges:");
    for (series, value) in &snapshot.gauges {
        println!("  {series:<58} {value}");
    }
    println!("\nlatency histograms:");
    for (series, h) in &snapshot.histograms {
        if !h.is_empty() {
            println!("{}", histogram_row(series, h));
        }
    }

    let recorder = telemetry.recorder();
    println!("\ntop 10 slowest spans:");
    for e in recorder.slowest_spans(10) {
        println!(
            "  seq={:<8} {:<12} {:<24} {:>12.1}us",
            e.seq,
            e.name,
            e.labels.render(),
            e.wall_ns as f64 / 1000.0
        );
    }

    // Flight replay: the last 1k events must come out in strict sequence
    // order, and the JSON dump must parse back losslessly.
    let last = recorder.last(1000);
    let in_order = last.windows(2).all(|w| w[0].seq < w[1].seq);
    let json = recorder.dump_json(1000).to_json_string();
    let parsed = taopt_ui_model::Value::parse(&json);
    let parsed_len = parsed
        .as_ref()
        .ok()
        .and_then(|v| v.as_array().map(<[_]>::len))
        .unwrap_or(0);
    println!(
        "\nflight recorder: {} events buffered (cap {}), replayed last {} \
         (in order: {in_order}, JSON round-trip: {} events, {} bytes)",
        recorder.len(),
        recorder.capacity(),
        last.len(),
        parsed_len,
        json.len()
    );

    let mut report = BenchReport::new("telemetry smoke");
    report.gate(!snapshot.is_empty(), || {
        "metrics snapshot is empty".to_owned()
    });
    for name in REQUIRED_COUNTERS {
        report.gate(snapshot.counter_total(name) > 0, || {
            format!("counter {name} never incremented")
        });
    }
    for series in REQUIRED_HISTOGRAMS {
        report.gate(
            snapshot
                .histograms
                .get(series)
                .is_some_and(|h| !h.is_empty()),
            || format!("histogram {series} is missing or empty"),
        );
    }
    report.gate(!last.is_empty(), || "flight recorder is empty".to_owned());
    report.gate(in_order, || {
        "flight replay out of sequence order".to_owned()
    });
    report.gate(parsed_len == last.len(), || {
        format!(
            "flight JSON round-trip lost events ({parsed_len} != {})",
            last.len()
        )
    });
    report.finish()
}
