//! Chaos degradation table: coverage and crash-finding under increasing
//! fault rates, versus the fault-free baseline of the same seed. Writes
//! `BENCH_chaos.json` with per-rate retention and recovery-latency
//! percentiles, plus a faulted-campaign determinism arm.
//!
//! Every row injects faults at all three seams (device farm, event bus,
//! enforcement) with a uniform per-opportunity rate, runs the same
//! duration-constrained TaOPT sessions as the fault-free baseline, and
//! reports what the self-healing coordinator retained: union coverage,
//! unique crashes, faults injected/recovered, recovery latencies, device
//! losses survived and enforcement retries.
//!
//! Exit gates (CI smoke): coverage retention at the moderate fault rate
//! must stay above [`MIN_RETENTION`], no orphaned subspaces may remain
//! unresolved at any rate, and a faulted campaign must produce
//! byte-identical coverage reports at 1 and 4 workers.

use std::process::ExitCode;
use std::sync::Arc;

use taopt::report::{pct, TextTable};
use taopt::session::RunMode;
use taopt::{run_campaign, run_with_chaos, CampaignApp, CampaignConfig, ChaosReport};
use taopt_bench::{load_apps, BenchReport, HarnessArgs, NamedApp};
use taopt_chaos::{FaultInjector, FaultPlan, FaultRates, RecoveryKind};
use taopt_telemetry::HistogramSnapshot;
use taopt_tools::ToolKind;
use taopt_ui_model::Value;

/// Uniform per-opportunity fault rates of the table's rows (0 = the
/// fault-free baseline).
const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

/// The "moderate" rate the retention gate is checked at.
const GATE_RATE: f64 = 0.02;

/// Minimum coverage retention (faulted / fault-free) at [`GATE_RATE`].
const MIN_RETENTION: f64 = 0.8;

/// Uniform fault rate of the campaign determinism arm.
const CAMPAIGN_RATE: f64 = 0.02;

/// One table row, aggregated across apps.
#[derive(Default)]
struct RateSummary {
    coverage: usize,
    crashes: usize,
    injected: usize,
    recovered: usize,
    devices_lost: usize,
    replacements: usize,
    abandoned: usize,
    enforcement_retries: usize,
    rededications: usize,
    gaps: usize,
    duplicates: usize,
    mean_recovery_ms: f64,
    max_recovery_ms: u64,
    unresolved_orphans: usize,
    /// Every recovery latency observed at this rate, pooled across apps,
    /// so percentiles are computed over the real distribution rather
    /// than a mean of per-app means.
    recovery_latencies_ms: Vec<u64>,
    /// Samples the `chaos_recovery_latency_us` registry histogram gained
    /// while this rate ran (the live-telemetry view of the same data).
    registry_samples: u64,
    /// p50 of the registry histogram delta, in µs.
    registry_p50_us: u64,
    /// p95 of the registry histogram delta, in µs.
    registry_p95_us: u64,
}

/// Merged snapshot of every `chaos_recovery_latency_us` series.
fn recovery_registry() -> Option<HistogramSnapshot> {
    taopt_telemetry::global()
        .snapshot()
        .histogram_total("chaos_recovery_latency_us")
}

/// What the registry histogram gained between two snapshots.
fn registry_delta(
    before: Option<HistogramSnapshot>,
    after: Option<HistogramSnapshot>,
) -> Option<HistogramSnapshot> {
    let after = after?;
    Some(match before {
        None => after,
        Some(b) => HistogramSnapshot {
            buckets: std::array::from_fn(|i| after.buckets[i].saturating_sub(b.buckets[i])),
            count: after.count.saturating_sub(b.count),
            sum: after.sum.saturating_sub(b.sum),
            max: after.max,
        },
    })
}

impl RateSummary {
    fn absorb(&mut self, report: &ChaosReport) {
        self.coverage += report.session.union_coverage();
        self.crashes += report.session.unique_crashes().len();
        self.injected += report.fault_stats.total_injected();
        self.recovered += report.fault_stats.total_recovered();
        self.devices_lost += report.devices_lost;
        self.replacements += report.replacements;
        self.abandoned += report.replacements_abandoned;
        self.enforcement_retries += report.enforcement_retries;
        self.rededications += report
            .fault_stats
            .recovered
            .get(&RecoveryKind::SubspaceRededicated)
            .copied()
            .unwrap_or(0);
        self.gaps += report.stream.gaps;
        self.duplicates += report.stream.duplicates;
        // Mean of means weighted later by dividing through the app count
        // would hide outliers; track the global latency extremes instead.
        self.mean_recovery_ms += report.fault_stats.mean_recovery_ms;
        self.max_recovery_ms = self.max_recovery_ms.max(report.fault_stats.max_recovery_ms);
        self.unresolved_orphans += report.unresolved_orphans;
        self.recovery_latencies_ms
            .extend(report.fault_log.recoveries().iter().map(|r| r.latency_ms()));
    }

    /// The p-th percentile (0..=100) of pooled recovery latency, in ms.
    fn latency_percentile_ms(&self, p: f64) -> u64 {
        let mut sorted = self.recovery_latencies_ms.clone();
        if sorted.is_empty() {
            return 0;
        }
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

fn rate_json(rate: f64, s: &RateSummary, baseline: f64) -> Value {
    Value::Object(vec![
        ("rate".to_owned(), Value::Float(rate)),
        ("coverage".to_owned(), Value::UInt(s.coverage as u64)),
        (
            "retention".to_owned(),
            Value::Float(s.coverage as f64 / baseline),
        ),
        ("crashes".to_owned(), Value::UInt(s.crashes as u64)),
        ("injected".to_owned(), Value::UInt(s.injected as u64)),
        ("recovered".to_owned(), Value::UInt(s.recovered as u64)),
        (
            "recovery_p95_ms".to_owned(),
            Value::UInt(s.latency_percentile_ms(95.0)),
        ),
        (
            "recovery_p50_ms".to_owned(),
            Value::UInt(s.latency_percentile_ms(50.0)),
        ),
        (
            "recovery_mean_ms".to_owned(),
            Value::Float(s.mean_recovery_ms),
        ),
        ("recovery_max_ms".to_owned(), Value::UInt(s.max_recovery_ms)),
        (
            "devices_lost".to_owned(),
            Value::UInt(s.devices_lost as u64),
        ),
        (
            "replacements".to_owned(),
            Value::UInt(s.replacements as u64),
        ),
        ("abandoned".to_owned(), Value::UInt(s.abandoned as u64)),
        (
            "enforcement_retries".to_owned(),
            Value::UInt(s.enforcement_retries as u64),
        ),
        (
            "rededications".to_owned(),
            Value::UInt(s.rededications as u64),
        ),
        ("stream_gaps".to_owned(), Value::UInt(s.gaps as u64)),
        (
            "stream_duplicates".to_owned(),
            Value::UInt(s.duplicates as u64),
        ),
        (
            "unresolved_orphans".to_owned(),
            Value::UInt(s.unresolved_orphans as u64),
        ),
        (
            "registry_recovery_samples".to_owned(),
            Value::UInt(s.registry_samples),
        ),
        (
            "registry_recovery_p50_us".to_owned(),
            Value::UInt(s.registry_p50_us),
        ),
        (
            "registry_recovery_p95_us".to_owned(),
            Value::UInt(s.registry_p95_us),
        ),
    ])
}

/// Runs the same faulted campaign at 1 and 4 workers and reports whether
/// the coverage reports (and fault statistics) came out byte-identical —
/// the layered runtime's determinism pin, exercised end to end.
fn campaign_arm(apps: &[NamedApp], args: &HarnessArgs) -> (bool, Value) {
    let take = apps.len().min(4);
    let catalog = |_: usize| -> Vec<CampaignApp> {
        apps[..take]
            .iter()
            .enumerate()
            .map(|(i, (name, app))| CampaignApp {
                name: name.clone(),
                app: Arc::clone(app),
                config: args.scale.session_config(
                    ToolKind::Monkey,
                    RunMode::TaoptDuration,
                    args.seed + i as u64,
                ),
            })
            .collect()
    };
    let capacity = 2 * args.scale.instances;
    let mut reports = Vec::new();
    let mut stats = Vec::new();
    let mut rounds = 0u64;
    let mut devices_lost = 0usize;
    for workers in [1usize, 4] {
        let config = CampaignConfig {
            workers,
            capacity: Some(capacity),
            faults: Some(FaultPlan::new(
                args.seed,
                FaultRates::uniform(CAMPAIGN_RATE),
            )),
            ..CampaignConfig::default()
        };
        let result = run_campaign(catalog(workers), &config);
        rounds = result.rounds;
        devices_lost = result.apps.iter().map(|a| a.devices_lost).sum();
        eprintln!(
            "  faulted campaign x{workers}: {} rounds, wall {}, {} devices lost",
            result.rounds, result.wall_clock, devices_lost
        );
        reports.push(result.coverage_report());
        stats.push(result.fault_stats.expect("fault plan was set"));
    }
    let deterministic = reports[0] == reports[1] && stats[0] == stats[1];
    let json = Value::Object(vec![
        ("apps".to_owned(), Value::UInt(take as u64)),
        ("rate".to_owned(), Value::Float(CAMPAIGN_RATE)),
        ("capacity".to_owned(), Value::UInt(capacity as u64)),
        ("rounds".to_owned(), Value::UInt(rounds)),
        ("devices_lost".to_owned(), Value::UInt(devices_lost as u64)),
        (
            "injected".to_owned(),
            Value::UInt(stats[0].total_injected() as u64),
        ),
        (
            "recovered".to_owned(),
            Value::UInt(stats[0].total_recovered() as u64),
        ),
        ("deterministic".to_owned(), Value::Bool(deterministic)),
    ]);
    (deterministic, json)
}

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("chaos: {} apps, {:?}", apps.len(), args.scale);
    let config = args
        .scale
        .session_config(ToolKind::Monkey, RunMode::TaoptDuration, args.seed);

    let mut rows: Vec<RateSummary> = Vec::new();
    for rate in &RATES {
        let mut summary = RateSummary::default();
        let registry_before = recovery_registry();
        for (_, app) in &apps {
            let injector = if *rate == 0.0 {
                FaultInjector::inert(args.seed)
            } else {
                FaultInjector::new(FaultPlan::new(args.seed, FaultRates::uniform(*rate)))
            };
            let report = run_with_chaos(Arc::clone(app), &config, &injector);
            summary.absorb(&report);
        }
        summary.mean_recovery_ms /= apps.len().max(1) as f64;
        if let Some(delta) = registry_delta(registry_before, recovery_registry()) {
            summary.registry_samples = delta.count;
            summary.registry_p50_us = delta.quantile(0.5).unwrap_or(0);
            summary.registry_p95_us = delta.quantile(0.95).unwrap_or(0);
        }
        eprintln!(
            "  rate {:.2}: coverage {}, {} faults, {} recoveries, p95 recovery {}ms \
             (registry: {} samples, p95 {}us)",
            rate,
            summary.coverage,
            summary.injected,
            summary.recovered,
            summary.latency_percentile_ms(95.0),
            summary.registry_samples,
            summary.registry_p95_us
        );
        rows.push(summary);
    }

    let baseline = rows[0].coverage.max(1) as f64;
    let crash_delta = |crashes: usize| {
        if rows[0].crashes == 0 {
            "-".to_owned()
        } else {
            pct(crashes as f64 / rows[0].crashes as f64 - 1.0)
        }
    };
    println!(
        "Chaos degradation: TaOPT duration mode, {} instances, uniform fault rates",
        config.instances
    );
    let mut table = TextTable::new([
        "Rate",
        "Coverage",
        "vs clean",
        "Crashes",
        "vs clean",
        "Faults",
        "Recov.",
        "p95Rec(s)",
        "MaxRec(s)",
        "Lost",
        "Repl.",
        "Enf.retry",
        "Gaps",
    ]);
    for (rate, s) in RATES.iter().zip(&rows) {
        table.row([
            format!("{rate:.2}"),
            s.coverage.to_string(),
            pct(s.coverage as f64 / baseline - 1.0),
            s.crashes.to_string(),
            crash_delta(s.crashes),
            s.injected.to_string(),
            s.recovered.to_string(),
            format!("{:.1}", s.latency_percentile_ms(95.0) as f64 / 1000.0),
            format!("{:.1}", s.max_recovery_ms as f64 / 1000.0),
            s.devices_lost.to_string(),
            s.replacements.to_string(),
            s.enforcement_retries.to_string(),
            s.gaps.to_string(),
        ]);
    }
    print!("{}", table.render());

    let worst = rows.last().expect("at least one rate");
    println!(
        "at rate {:.2}: coverage {} vs fault-free; survived {} device losses \
         ({} replaced, {} abandoned), re-dedicated {} subspaces, repaired {} gaps / {} dups",
        RATES[RATES.len() - 1],
        pct(worst.coverage as f64 / baseline - 1.0),
        worst.devices_lost,
        worst.replacements,
        worst.abandoned,
        worst.rededications,
        worst.gaps,
        worst.duplicates,
    );
    let orphans: usize = rows.iter().map(|s| s.unresolved_orphans).sum();
    println!("unresolved orphaned subspaces across all rates: {orphans} (expect 0)");

    let (campaign_deterministic, campaign_json) = campaign_arm(&apps, &args);

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("chaos".to_owned())),
        ("n_apps".to_owned(), Value::UInt(apps.len() as u64)),
        ("seed".to_owned(), Value::UInt(args.seed)),
        (
            "scale".to_owned(),
            Value::Str(format!("{:?}", args.scale.duration)),
        ),
        (
            "rates".to_owned(),
            Value::Array(
                RATES
                    .iter()
                    .zip(&rows)
                    .map(|(rate, s)| rate_json(*rate, s, baseline))
                    .collect(),
            ),
        ),
        ("faulted_campaign".to_owned(), campaign_json),
    ]);
    let mut report = BenchReport::new("chaos bench");
    let out = "BENCH_chaos.json";
    let bytes = report.write_json(out, &doc);

    let gate_row = RATES
        .iter()
        .position(|r| *r == GATE_RATE)
        .expect("gate rate is a table row");
    let retention = rows[gate_row].coverage as f64 / baseline;
    println!(
        "chaos bench: retention {:.1}% at rate {GATE_RATE:.2}, campaign deterministic: \
         {campaign_deterministic}; wrote {out} ({bytes} bytes)",
        retention * 100.0,
    );
    report.gate(retention >= MIN_RETENTION, || {
        format!("retention {retention:.3} at rate {GATE_RATE:.2} below gate {MIN_RETENTION:.2}")
    });
    report.gate(orphans == 0, || {
        format!("{orphans} unresolved orphaned subspaces (expect 0)")
    });
    report.gate(campaign_deterministic, || {
        "faulted campaign differs between 1 and 4 workers".to_owned()
    });
    report.finish()
}
