//! Chaos degradation table: coverage and crash-finding under increasing
//! fault rates, versus the fault-free baseline of the same seed.
//!
//! Every row injects faults at all three seams (device farm, event bus,
//! enforcement) with a uniform per-opportunity rate, runs the same
//! duration-constrained TaOPT sessions as the fault-free baseline, and
//! reports what the self-healing coordinator retained: union coverage,
//! unique crashes, faults injected/recovered, recovery latencies, device
//! losses survived and enforcement retries.

use std::sync::Arc;

use taopt::report::{pct, TextTable};
use taopt::session::RunMode;
use taopt::{run_with_chaos, ChaosReport};
use taopt_bench::{load_apps, HarnessArgs};
use taopt_chaos::{FaultInjector, FaultPlan, FaultRates, RecoveryKind};
use taopt_tools::ToolKind;

/// Uniform per-opportunity fault rates of the table's rows (0 = the
/// fault-free baseline).
const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

/// One table row, aggregated across apps.
#[derive(Default)]
struct RateSummary {
    coverage: usize,
    crashes: usize,
    injected: usize,
    recovered: usize,
    devices_lost: usize,
    replacements: usize,
    abandoned: usize,
    enforcement_retries: usize,
    rededications: usize,
    gaps: usize,
    duplicates: usize,
    mean_recovery_ms: f64,
    max_recovery_ms: u64,
    unresolved_orphans: usize,
}

impl RateSummary {
    fn absorb(&mut self, report: &ChaosReport) {
        self.coverage += report.session.union_coverage();
        self.crashes += report.session.unique_crashes().len();
        self.injected += report.fault_stats.total_injected();
        self.recovered += report.fault_stats.total_recovered();
        self.devices_lost += report.devices_lost;
        self.replacements += report.replacements;
        self.abandoned += report.replacements_abandoned;
        self.enforcement_retries += report.enforcement_retries;
        self.rededications += report
            .fault_stats
            .recovered
            .get(&RecoveryKind::SubspaceRededicated)
            .copied()
            .unwrap_or(0);
        self.gaps += report.stream.gaps;
        self.duplicates += report.stream.duplicates;
        // Mean of means weighted later by dividing through the app count
        // would hide outliers; track the global latency extremes instead.
        self.mean_recovery_ms += report.fault_stats.mean_recovery_ms;
        self.max_recovery_ms = self.max_recovery_ms.max(report.fault_stats.max_recovery_ms);
        self.unresolved_orphans += report.unresolved_orphans;
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!("chaos: {} apps, {:?}", apps.len(), args.scale);
    let config = args
        .scale
        .session_config(ToolKind::Monkey, RunMode::TaoptDuration, args.seed);

    let mut rows: Vec<RateSummary> = Vec::new();
    for rate in &RATES {
        let mut summary = RateSummary::default();
        for (_, app) in &apps {
            let injector = if *rate == 0.0 {
                FaultInjector::inert(args.seed)
            } else {
                FaultInjector::new(FaultPlan::new(args.seed, FaultRates::uniform(*rate)))
            };
            let report = run_with_chaos(Arc::clone(app), &config, &injector);
            summary.absorb(&report);
        }
        summary.mean_recovery_ms /= apps.len().max(1) as f64;
        eprintln!(
            "  rate {:.2}: coverage {}, {} faults, {} recoveries",
            rate, summary.coverage, summary.injected, summary.recovered
        );
        rows.push(summary);
    }

    let baseline = rows[0].coverage.max(1) as f64;
    let crash_delta = |crashes: usize| {
        if rows[0].crashes == 0 {
            "-".to_owned()
        } else {
            pct(crashes as f64 / rows[0].crashes as f64 - 1.0)
        }
    };
    println!(
        "Chaos degradation: TaOPT duration mode, {} instances, uniform fault rates",
        config.instances
    );
    let mut table = TextTable::new([
        "Rate",
        "Coverage",
        "vs clean",
        "Crashes",
        "vs clean",
        "Faults",
        "Recov.",
        "MeanRec(s)",
        "MaxRec(s)",
        "Lost",
        "Repl.",
        "Enf.retry",
        "Gaps",
    ]);
    for (rate, s) in RATES.iter().zip(&rows) {
        table.row([
            format!("{rate:.2}"),
            s.coverage.to_string(),
            pct(s.coverage as f64 / baseline - 1.0),
            s.crashes.to_string(),
            crash_delta(s.crashes),
            s.injected.to_string(),
            s.recovered.to_string(),
            format!("{:.1}", s.mean_recovery_ms / 1000.0),
            format!("{:.1}", s.max_recovery_ms as f64 / 1000.0),
            s.devices_lost.to_string(),
            s.replacements.to_string(),
            s.enforcement_retries.to_string(),
            s.gaps.to_string(),
        ]);
    }
    print!("{}", table.render());

    let worst = rows.last().expect("at least one rate");
    println!(
        "at rate {:.2}: coverage {} vs fault-free; survived {} device losses \
         ({} replaced, {} abandoned), re-dedicated {} subspaces, repaired {} gaps / {} dups",
        RATES[RATES.len() - 1],
        pct(worst.coverage as f64 / baseline - 1.0),
        worst.devices_lost,
        worst.replacements,
        worst.abandoned,
        worst.rededications,
        worst.gaps,
        worst.duplicates,
    );
    let orphans: usize = rows.iter().map(|s| s.unresolved_orphans).sum();
    println!("unresolved orphaned subspaces across all rates: {orphans} (expect 0)");
}
