//! Theorem 1 empirically: separation success rate of the clique-pair
//! instance as a function of the sample budget, clique size and cross-edge
//! damping — the experimental counterpart of the paper's `O(n² log n)`
//! bound (§4.2).

use taopt::report::TextTable;
use taopt::theorem::{required_samples, separation_success_rate, CliquePairConfig};

fn main() {
    let trials = 30;

    println!("Theorem 1: success rate vs sample budget (n = 8, alpha = 16)");
    let cfg = CliquePairConfig { n: 8, alpha: 16.0 };
    let mut t = TextTable::new(["Samples", "C (of n^2 ln n)", "Success rate"]);
    for c in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0] {
        let n_samples = required_samples(cfg.n, c);
        let rate = separation_success_rate(&cfg, n_samples, trials, 42);
        t.row([
            n_samples.to_string(),
            format!("{c:.1}"),
            format!("{:.0}%", rate * 100.0),
        ]);
    }
    print!("{}", t.render());

    println!("\nTheorem 1: success rate vs clique size (C = 24, alpha = 16)");
    let mut t = TextTable::new(["n", "Samples", "Success rate"]);
    for n in [4usize, 6, 8, 12, 16] {
        let cfg = CliquePairConfig { n, alpha: 16.0 };
        let samples = required_samples(n, 24.0);
        let rate = separation_success_rate(&cfg, samples, trials, 7);
        t.row([
            n.to_string(),
            samples.to_string(),
            format!("{:.0}%", rate * 100.0),
        ]);
    }
    print!("{}", t.render());

    println!("\nTheorem 1: success rate vs cross-edge damping (n = 8, C = 24)");
    let mut t = TextTable::new(["alpha", "Success rate"]);
    for alpha in [1.5f64, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let cfg = CliquePairConfig { n: 8, alpha };
        let samples = required_samples(8, 24.0);
        let rate = separation_success_rate(&cfg, samples, trials, 11);
        t.row([format!("{alpha:.1}"), format!("{:.0}%", rate * 100.0)]);
    }
    print!("{}", t.render());
    println!(
        "\nreading: separation needs alpha >> 1 (a genuinely rare cross edge) and a \
         sample budget on the order of n^2 ln n, exactly as Theorem 1 prescribes."
    );
}
