//! Regenerates every table and figure from a single evaluation matrix
//! (the cheapest way to reproduce the whole evaluation section).

use std::sync::Arc;

use taopt::experiments::{
    behavior_rows, evaluation_matrix, fig3_rows, savings_rows, table1_histogram, table2_rows,
    table4_rows, table6_rows,
};
use taopt::report::{pct, times, TextTable};
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    eprintln!(
        "all: {} apps, {} instances, {} per run, seed {}",
        apps.len(),
        args.scale.instances,
        args.scale.duration,
        args.seed
    );
    let t0 = std::time::Instant::now();
    let matrix = evaluation_matrix(&apps, &args.scale, args.seed);
    eprintln!(
        "matrix of {} sessions in {:.1?}s",
        matrix.len(),
        t0.elapsed().as_secs_f64()
    );

    // ----- Figure 3 -----
    println!("\n===== Figure 3: baseline AJS over time =====");
    for (tool, curve) in fig3_rows(&matrix) {
        let pts: Vec<String> = curve.iter().map(|(t, v)| format!("{t}s:{v:.2}")).collect();
        println!("{:<9} {}", tool.name(), pts.join(" "));
    }

    // ----- Table 1 -----
    println!("\n===== Table 1: subspace exploration overlap =====");
    let hist = table1_histogram(&matrix);
    let total: usize = hist.values().sum();
    for k in 1..=args.scale.instances {
        let n = hist.get(&k).copied().unwrap_or(0);
        println!(
            "  {k}/{}: {n} ({:.0}%)",
            args.scale.instances,
            if total > 0 {
                100.0 * n as f64 / total as f64
            } else {
                0.0
            }
        );
    }

    // ----- Table 4 / Table 5 -----
    println!("\n===== Table 4: cumulative coverage / Table 5: crashes =====");
    let rows = table4_rows(&matrix);
    let mut cov_sums = [[0usize; 3]; 3];
    let mut crash_sums = [[0usize; 3]; 3];
    let mut positive = 0;
    let mut cells = 0;
    for r in &rows {
        for tool in 0..3 {
            for mode in 0..3 {
                cov_sums[tool][mode] += r.coverage[tool][mode];
                crash_sums[tool][mode] += r.crashes[tool][mode];
                if mode > 0 {
                    cells += 1;
                    if r.coverage[tool][mode] >= r.coverage[tool][0] {
                        positive += 1;
                    }
                }
            }
        }
    }
    let mut t4 = TextTable::new(["Tool", "Baseline", "TaOPT(D)", "TaOPT(R)", "crashes B/D/R"]);
    for (ti, tool) in ToolKind::ALL.into_iter().enumerate() {
        let n = rows.len().max(1);
        t4.row([
            tool.name().to_owned(),
            (cov_sums[ti][0] / n).to_string(),
            format!(
                "{} ({})",
                cov_sums[ti][1] / n,
                pct(cov_sums[ti][1] as f64 / cov_sums[ti][0].max(1) as f64 - 1.0)
            ),
            format!(
                "{} ({})",
                cov_sums[ti][2] / n,
                pct(cov_sums[ti][2] as f64 / cov_sums[ti][0].max(1) as f64 - 1.0)
            ),
            format!(
                "{}/{}/{}",
                crash_sums[ti][0], crash_sums[ti][1], crash_sums[ti][2]
            ),
        ]);
    }
    print!("{}", t4.render());
    println!("coverage cells improving: {positive}/{cells} (paper: 81.5%)");
    let cb: usize = (0..3).map(|t| crash_sums[t][0]).sum();
    let cd: usize = (0..3).map(|t| crash_sums[t][1]).sum();
    let cr: usize = (0..3).map(|t| crash_sums[t][2]).sum();
    println!(
        "crash totals: {cb} -> {cd} ({}) duration, {cr} ({}) resource",
        times(cd as f64 / cb.max(1) as f64),
        times(cr as f64 / cb.max(1) as f64)
    );

    // ----- Table 6 -----
    println!("\n===== Table 6: UI overlap (avg occurrences of distinct UIs) =====");
    let rows6 = table6_rows(&matrix);
    for (ti, tool) in ToolKind::ALL.into_iter().enumerate() {
        let n = rows6.len().max(1) as f64;
        let base: f64 = rows6.iter().map(|r| r.occurrences[ti][0]).sum::<f64>() / n;
        let dur: f64 = rows6.iter().map(|r| r.occurrences[ti][1]).sum::<f64>() / n;
        let res: f64 = rows6.iter().map(|r| r.occurrences[ti][2]).sum::<f64>() / n;
        println!(
            "  {:<9} baseline {base:.1}, duration {dur:.1} (-{:.1}%), resource {res:.1} (-{:.1}%)",
            tool.name(),
            100.0 * (1.0 - dur / base.max(1e-9)),
            100.0 * (1.0 - res / base.max(1e-9)),
        );
    }

    // ----- Figures 5 and 6 -----
    println!("\n===== Figures 5/6: duration and machine time saved =====");
    let srows = savings_rows(&matrix, &args.scale);
    for tool in ToolKind::ALL {
        let rs: Vec<_> = srows.iter().filter(|r| r.tool == tool).collect();
        let n = rs.len().max(1) as f64;
        println!(
            "  {:<9} duration saved {:.1}%/{:.1}%  machine saved {:.1}%/{:.1}% (D/R modes)",
            tool.name(),
            100.0
                * rs.iter()
                    .map(|r| r.duration_saved_duration_mode)
                    .sum::<f64>()
                / n,
            100.0
                * rs.iter()
                    .map(|r| r.duration_saved_resource_mode)
                    .sum::<f64>()
                / n,
            100.0
                * rs.iter()
                    .map(|r| r.resource_saved_duration_mode)
                    .sum::<f64>()
                / n,
            100.0
                * rs.iter()
                    .map(|r| r.resource_saved_resource_mode)
                    .sum::<f64>()
                / n,
        );
    }

    // ----- RQ5 behaviour preservation -----
    println!("\n===== RQ5 behaviour preservation =====");
    for b in behavior_rows(&matrix) {
        println!(
            "  {:<9} {:<17} Jaccard {:.2}, baseline-only missed {:.1}%",
            b.tool.name(),
            b.mode.label(),
            b.jaccard,
            100.0 * b.missed_fraction
        );
    }

    // ----- Table 2 (extra sessions) -----
    println!("\n===== Table 2: activity partitioning (WCTester) =====");
    let rows2 = table2_rows(&apps, &args.scale, args.seed);
    let base: usize = rows2.iter().map(|r| r.baseline).sum();
    let part: usize = rows2.iter().map(|r| r.parallel).sum();
    let hurt = rows2.iter().filter(|r| r.parallel < r.baseline).count();
    for r in &rows2 {
        println!(
            "  {:<18} {:>7} -> {:>7} ({})",
            r.app,
            r.baseline,
            r.parallel,
            pct(r.relative_improvement())
        );
    }
    println!(
        "  average {} (paper: -28.5%), hurts {hurt}/{} apps (paper: 89%)",
        pct(part as f64 / base.max(1) as f64 - 1.0),
        rows2.len()
    );

    // Sanity: keep one strong reference to the apps so the borrow checker
    // sees them live for the whole report (they back Arc clones in rows).
    let _keep: Vec<Arc<_>> = apps.iter().map(|(_, a)| Arc::clone(a)).collect();
}
