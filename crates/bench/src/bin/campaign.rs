//! Campaign bench: the app catalog run serially (one dedicated `d_max`
//! slice at a time, the paper's setting) versus campaign-scheduled over a
//! shared farm of four slices. Writes `BENCH_campaign.json` with
//! wall-clock, machine-time and per-app coverage for both arms, so the
//! repo tracks a perf trajectory.
//!
//! Wall-clock is **virtual device-farm time** — rounds × tick — the
//! quantity TaOPT optimizes and the only one that is deterministic on
//! shared CI hardware; host milliseconds are reported alongside for
//! information only.
//!
//! Exits non-zero when either gate fails:
//! * speedup: the 4-worker campaign must be ≥ 1.5× faster (virtual
//!   wall-clock) than the serial fault-free run;
//! * determinism: 1-worker and 4-worker campaigns must produce
//!   byte-identical coverage reports.
//!
//! `farm` mode scales to a 100-app catalog and adds the host-side
//! compute-pool gates (see [`farm`]): per-round host p50/p95, zero
//! thread spawns after warmup, and pooled host time strictly below the
//! legacy nested-spawn path.
//!
//! ```text
//! cargo run --release -p taopt-bench --bin campaign -- [quick|paper] [n_apps] [seed]
//! cargo run --release -p taopt-bench --bin campaign -- farm [seed]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use taopt::campaign::{run_campaign, Campaign, CampaignApp, CampaignConfig, CampaignResult};
use taopt::experiments::ExperimentScale;
use taopt::session::{ParallelSession, RunMode, SessionConfig, SessionResult};
use taopt_app_sim::{generate_app, GeneratorConfig};
use taopt_bench::{load_apps, BenchReport, HarnessArgs, NamedApp};
use taopt_tools::ToolKind;
use taopt_ui_model::{Value, VirtualDuration};

/// The shared farm rents four of the paper's per-app device slices.
const SLICES: usize = 4;
/// Speedup gate: campaign vs serial, virtual wall-clock.
const MIN_SPEEDUP: f64 = 1.5;

/// Farm mode: catalog size (synthetic apps).
const FARM_APPS: usize = 100;
/// Farm mode: shared device capacity.
const FARM_CAPACITY: usize = 200;
/// Farm mode: speedup gate at [`FARM_WORKERS`] workers.
const MIN_FARM_SPEEDUP: f64 = 6.0;
/// Farm mode: parallel-phase worker count for the measured arm.
const FARM_WORKERS: usize = 8;

fn app_config(args: &HarnessArgs, index: usize) -> SessionConfig {
    // Rotate the paper's three tools across the catalog; duration mode is
    // the fault-free headline setting.
    let tool = match index % 3 {
        0 => ToolKind::Monkey,
        1 => ToolKind::Ape,
        _ => ToolKind::WcTester,
    };
    args.scale.session_config(
        tool,
        RunMode::TaoptDuration,
        args.seed.wrapping_add(index as u64),
    )
}

fn per_app_json(name: &str, session: &SessionResult) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        (
            "coverage".to_owned(),
            Value::UInt(session.union_coverage() as u64),
        ),
        (
            "crashes".to_owned(),
            Value::UInt(session.unique_crashes().len() as u64),
        ),
        (
            "wall_ms".to_owned(),
            Value::UInt(session.wall_clock.as_millis()),
        ),
        (
            "machine_ms".to_owned(),
            Value::UInt(session.machine_time.as_millis()),
        ),
    ])
}

fn campaign_json(result: &CampaignResult, workers: usize, host_ms: u64) -> Value {
    campaign_json_extra(result, workers, host_ms, Vec::new())
}

fn campaign_json_extra(
    result: &CampaignResult,
    workers: usize,
    host_ms: u64,
    extra: Vec<(String, Value)>,
) -> Value {
    let mut fields = vec![
        ("workers".to_owned(), Value::UInt(workers as u64)),
        ("rounds".to_owned(), Value::UInt(result.rounds)),
        (
            "wall_ms".to_owned(),
            Value::UInt(result.wall_clock.as_millis()),
        ),
        (
            "machine_ms".to_owned(),
            Value::UInt(result.machine_time.as_millis()),
        ),
        ("capacity".to_owned(), Value::UInt(result.capacity as u64)),
        (
            "peak_active".to_owned(),
            Value::UInt(result.peak_active as u64),
        ),
        ("grants".to_owned(), Value::UInt(result.grants)),
        ("revocations".to_owned(), Value::UInt(result.revocations)),
        (
            "lease_conflicts".to_owned(),
            Value::UInt(result.lease_conflicts),
        ),
        ("steals".to_owned(), Value::UInt(result.steals)),
        ("host_ms".to_owned(), Value::UInt(host_ms)),
    ];
    fields.extend(extra);
    fields.push((
        "apps".to_owned(),
        Value::Array(
            result
                .apps
                .iter()
                .map(|a| per_app_json(&a.name, &a.session))
                .collect(),
        ),
    ));
    Value::Object(fields)
}

/// The `p`-th percentile of an ascending-sorted sample (nearest-rank).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn catalog(apps: &[NamedApp], args: &HarnessArgs) -> Vec<CampaignApp> {
    apps.iter()
        .enumerate()
        .map(|(i, (name, app))| CampaignApp {
            name: name.clone(),
            app: Arc::clone(app),
            config: app_config(args, i),
        })
        .collect()
}

/// One farm arm driven round by round so per-round host time and thread
/// churn are observable from outside the campaign.
struct FarmArm {
    result: CampaignResult,
    /// Total host milliseconds, `Campaign::new` through `finish`.
    host_ms: u64,
    /// Per-round host microseconds, ascending.
    round_us: Vec<u64>,
    /// `host_threads_spawned_total` delta after warmup (pool construction
    /// plus the first round) — must be 0 for the persistent pool, and is
    /// the per-round churn for the legacy scoped-thread path.
    spawned_after_warmup: u64,
}

/// Runs one farm campaign stepwise: `scoped` replays the pre-pool
/// nested-`thread::scope` path, otherwise the persistent compute pool
/// is budgeted at `host_threads`.
fn run_farm_arm(
    apps: &[NamedApp],
    args: &HarnessArgs,
    host_threads: usize,
    scoped: bool,
) -> FarmArm {
    let config = CampaignConfig {
        workers: FARM_WORKERS,
        host_threads: if scoped { 0 } else { host_threads },
        scoped_threads: scoped,
        capacity: Some(FARM_CAPACITY),
        ..CampaignConfig::default()
    };
    let spawn_counter = taopt_telemetry::global().counter("host_threads_spawned_total");
    let host = Instant::now();
    let mut campaign = Campaign::new(catalog(apps, args), &config);
    let mut round_us = Vec::new();
    // Warmup: pool construction and the first round (lazy per-app state).
    let t0 = Instant::now();
    let mut live = campaign.advance_round();
    round_us.push(t0.elapsed().as_micros() as u64);
    let after_warmup = spawn_counter.get();
    while live {
        let t0 = Instant::now();
        live = campaign.advance_round();
        round_us.push(t0.elapsed().as_micros() as u64);
    }
    let spawned_after_warmup = spawn_counter.get() - after_warmup;
    let result = campaign.finish();
    let host_ms = host.elapsed().as_millis() as u64;
    round_us.sort_unstable();
    FarmArm {
        result,
        host_ms,
        round_us,
        spawned_after_warmup,
    }
}

/// Farm mode: a 100-app synthetic catalog on a 200-device shared farm,
/// short sessions (the scheduler's packing, not per-app depth, is what
/// is under test), campaign-scheduled under the persistent compute pool
/// at host budgets 1 and [`FARM_WORKERS`], against both the serial
/// one-app-at-a-time baseline and the legacy per-round
/// `thread::scope` path at [`FARM_WORKERS`] workers.
///
/// Virtual clocks (rounds × tick) keep the result-side gates
/// deterministic on shared hardware; host-side gates compare the two
/// in-process host measurements of the same workload:
/// * speedup: the pooled [`FARM_WORKERS`]-budget campaign must finish
///   the catalog ≥ [`MIN_FARM_SPEEDUP`]× faster than the serial
///   baseline in virtual wall-clock;
/// * determinism: legacy, pool×1 and pool×[`FARM_WORKERS`] coverage
///   reports must be byte-identical (the host budget is a throughput
///   knob, never a result knob);
/// * no churn: after warmup the pooled arm must spawn **zero** host
///   threads — `host_threads_spawned_total` stays flat across rounds;
/// * no regression: pooled host_ms must be strictly below the legacy
///   nested-spawn arm at the same worker count (min of two runs each,
///   damping scheduler noise).
fn farm(seed: u64) -> ExitCode {
    let scale = ExperimentScale {
        instances: 2,
        duration: VirtualDuration::from_mins(4),
        tick: VirtualDuration::from_secs(10),
        stall_timeout: VirtualDuration::from_secs(45),
        l_min_short: VirtualDuration::from_secs(40),
        l_min_long: VirtualDuration::from_secs(100),
        grid_points: 8,
    };
    let args = HarnessArgs {
        scale,
        n_apps: FARM_APPS,
        seed,
    };
    eprintln!(
        "campaign farm: {FARM_APPS} generated apps, capacity {FARM_CAPACITY} devices, \
         host budgets [1, {FARM_WORKERS}] + legacy scoped x{FARM_WORKERS}, seed {seed}"
    );
    let apps: Vec<NamedApp> = (0..FARM_APPS)
        .map(|i| {
            let name = format!("farm-{i:03}");
            let app = generate_app(&GeneratorConfig::small(&name, seed.wrapping_add(i as u64)))
                .expect("generator config is valid");
            (name, Arc::new(app))
        })
        .collect();

    // Arm 1: serial — each app alone on a dedicated slice, one after
    // another; the farm's virtual wall-clock is the sum.
    let host = Instant::now();
    let serial: Vec<(String, SessionResult)> = apps
        .iter()
        .enumerate()
        .map(|(i, (name, app))| {
            let r = ParallelSession::run(Arc::clone(app), &app_config(&args, i));
            (name.clone(), r)
        })
        .collect();
    let serial_host_ms = host.elapsed().as_millis() as u64;
    let serial_wall: VirtualDuration = serial
        .iter()
        .fold(VirtualDuration::ZERO, |acc, (_, r)| acc + r.wall_clock);
    let serial_machine: VirtualDuration = serial
        .iter()
        .fold(VirtualDuration::ZERO, |acc, (_, r)| acc + r.machine_time);
    eprintln!("  serial: wall {serial_wall} machine {serial_machine} host {serial_host_ms}ms");

    // Arm 2: the legacy per-round thread::scope path at FARM_WORKERS
    // workers (the pre-pool baseline, reproduced in-process), then the
    // persistent pool at host budgets 1 and FARM_WORKERS. The legacy and
    // pool-8 arms run twice and keep the faster host measurement, so the
    // strict pool-beats-legacy gate compares minima, not scheduler noise.
    let legacy_a = run_farm_arm(&apps, &args, 0, true);
    let legacy_b = run_farm_arm(&apps, &args, 0, true);
    let legacy_host_ms = legacy_a.host_ms.min(legacy_b.host_ms);
    let legacy = legacy_a;
    let pool_1 = run_farm_arm(&apps, &args, 1, false);
    let pool_8a = run_farm_arm(&apps, &args, FARM_WORKERS, false);
    let pool_8b = run_farm_arm(&apps, &args, FARM_WORKERS, false);
    let pool_8_host_ms = pool_8a.host_ms.min(pool_8b.host_ms);
    let pool_8 = pool_8a;
    for (tag, arm) in [
        (format!("legacy x{FARM_WORKERS}"), &legacy),
        ("pool x1".to_owned(), &pool_1),
        (format!("pool x{FARM_WORKERS}"), &pool_8),
    ] {
        eprintln!(
            "  {tag}: {} rounds, wall {}, host {}ms (p50 {}us p95 {}us), \
             {} threads spawned after warmup",
            arm.result.rounds,
            arm.result.wall_clock,
            arm.host_ms,
            percentile(&arm.round_us, 50),
            percentile(&arm.round_us, 95),
            arm.spawned_after_warmup
        );
    }

    let speedup =
        serial_wall.as_millis() as f64 / pool_8.result.wall_clock.as_millis().max(1) as f64;
    let reference = legacy.result.coverage_report();
    let deterministic = reference == pool_1.result.coverage_report()
        && reference == pool_8.result.coverage_report();

    let arm_json = |arm: &FarmArm, host_ms: u64, budget: usize, scoped: bool| {
        campaign_json_extra(
            &arm.result,
            FARM_WORKERS,
            host_ms,
            vec![
                ("host_threads".to_owned(), Value::UInt(budget as u64)),
                ("scoped_threads".to_owned(), Value::Bool(scoped)),
                (
                    "host_us_p50".to_owned(),
                    Value::UInt(percentile(&arm.round_us, 50)),
                ),
                (
                    "host_us_p95".to_owned(),
                    Value::UInt(percentile(&arm.round_us, 95)),
                ),
                (
                    "threads_spawned".to_owned(),
                    Value::UInt(arm.spawned_after_warmup),
                ),
            ],
        )
    };
    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("campaign".to_owned())),
        ("mode".to_owned(), Value::Str("farm".to_owned())),
        ("n_apps".to_owned(), Value::UInt(FARM_APPS as u64)),
        ("capacity".to_owned(), Value::UInt(FARM_CAPACITY as u64)),
        ("seed".to_owned(), Value::UInt(seed)),
        (
            "serial".to_owned(),
            Value::Object(vec![
                ("wall_ms".to_owned(), Value::UInt(serial_wall.as_millis())),
                (
                    "machine_ms".to_owned(),
                    Value::UInt(serial_machine.as_millis()),
                ),
                ("host_ms".to_owned(), Value::UInt(serial_host_ms)),
            ]),
        ),
        (
            "campaigns".to_owned(),
            Value::Array(vec![
                arm_json(&legacy, legacy_host_ms, FARM_WORKERS, true),
                arm_json(&pool_1, pool_1.host_ms, 1, false),
                arm_json(&pool_8, pool_8_host_ms, FARM_WORKERS, false),
            ]),
        ),
        ("speedup_virtual_wall".to_owned(), Value::Float(speedup)),
        ("speedup_gate".to_owned(), Value::Float(MIN_FARM_SPEEDUP)),
        ("deterministic".to_owned(), Value::Bool(deterministic)),
    ]);
    let mut report = BenchReport::new("campaign bench");
    let out = "BENCH_campaign.json";
    let bytes = report.write_json(out, &doc);
    println!(
        "campaign farm: serial wall {serial_wall} vs pool x{FARM_WORKERS} campaign wall {} \
         -> speedup {speedup:.2}x; host {pool_8_host_ms}ms pooled vs {legacy_host_ms}ms legacy; \
         deterministic: {deterministic}; wrote {out} ({bytes} bytes)",
        pool_8.result.wall_clock,
    );

    report.gate(speedup >= MIN_FARM_SPEEDUP, || {
        format!("speedup {speedup:.2}x below the {MIN_FARM_SPEEDUP}x farm gate")
    });
    report.gate(deterministic, || {
        "legacy, pool x1 and pool x8 campaigns diverged".to_owned()
    });
    report.gate(
        pool_8.spawned_after_warmup == 0 && pool_8b.spawned_after_warmup == 0,
        || {
            format!(
                "pooled arm spawned {} host threads after warmup (must be 0)",
                pool_8
                    .spawned_after_warmup
                    .max(pool_8b.spawned_after_warmup)
            )
        },
    );
    report.gate(pool_8_host_ms < legacy_host_ms, || {
        format!("pooled host {pool_8_host_ms}ms not below legacy nested-spawn {legacy_host_ms}ms")
    });
    report.gate(pool_8.result.lease_conflicts == 0, || {
        format!(
            "{} double-allocations observed",
            pool_8.result.lease_conflicts
        )
    });
    report.finish()
}

fn main() -> ExitCode {
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.first().map(String::as_str) == Some("farm") {
            let seed = argv.get(1).and_then(|s| s.parse().ok()).unwrap_or(2025);
            return farm(seed);
        }
    }
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps);
    let capacity = SLICES * args.scale.instances;
    eprintln!(
        "campaign: {} apps, {:?}, shared capacity {capacity} ({SLICES} slices of {})",
        apps.len(),
        args.scale,
        args.scale.instances
    );

    // Arm 1: serial — each app alone on a dedicated d_max slice.
    let host = Instant::now();
    let serial: Vec<(String, SessionResult)> = apps
        .iter()
        .enumerate()
        .map(|(i, (name, app))| {
            let r = ParallelSession::run(Arc::clone(app), &app_config(&args, i));
            eprintln!("  serial {name}: coverage {}", r.union_coverage());
            (name.clone(), r)
        })
        .collect();
    let serial_host_ms = host.elapsed().as_millis() as u64;
    let serial_wall: VirtualDuration = serial
        .iter()
        .fold(VirtualDuration::ZERO, |acc, (_, r)| acc + r.wall_clock);
    let serial_machine: VirtualDuration = serial
        .iter()
        .fold(VirtualDuration::ZERO, |acc, (_, r)| acc + r.machine_time);

    // Arm 2: campaign-scheduled at 1 and 4 workers (identical results by
    // construction; both are run to *prove* it).
    let mut campaigns = Vec::new();
    for workers in [1usize, 4] {
        let config = CampaignConfig {
            workers,
            capacity: Some(capacity),
            ..CampaignConfig::default()
        };
        let host = Instant::now();
        let result = run_campaign(catalog(&apps, &args), &config);
        let host_ms = host.elapsed().as_millis() as u64;
        eprintln!(
            "  campaign x{workers}: {} rounds, wall {}, {} grants, {} steals, host {host_ms}ms",
            result.rounds, result.wall_clock, result.grants, result.steals
        );
        campaigns.push((workers, result, host_ms));
    }

    let (_, four_workers, _) = campaigns.iter().find(|(w, _, _)| *w == 4).unwrap();
    let speedup =
        serial_wall.as_millis() as f64 / four_workers.wall_clock.as_millis().max(1) as f64;
    let deterministic = campaigns[0].1.coverage_report() == campaigns[1].1.coverage_report();

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("campaign".to_owned())),
        ("n_apps".to_owned(), Value::UInt(apps.len() as u64)),
        ("seed".to_owned(), Value::UInt(args.seed)),
        (
            "scale".to_owned(),
            Value::Str(format!("{:?}", args.scale.duration)),
        ),
        (
            "serial".to_owned(),
            Value::Object(vec![
                ("wall_ms".to_owned(), Value::UInt(serial_wall.as_millis())),
                (
                    "machine_ms".to_owned(),
                    Value::UInt(serial_machine.as_millis()),
                ),
                ("host_ms".to_owned(), Value::UInt(serial_host_ms)),
                (
                    "apps".to_owned(),
                    Value::Array(
                        serial
                            .iter()
                            .map(|(name, r)| per_app_json(name, r))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "campaigns".to_owned(),
            Value::Array(
                campaigns
                    .iter()
                    .map(|(w, r, h)| campaign_json(r, *w, *h))
                    .collect(),
            ),
        ),
        ("speedup_virtual_wall".to_owned(), Value::Float(speedup)),
        ("deterministic".to_owned(), Value::Bool(deterministic)),
    ]);
    let mut report = BenchReport::new("campaign bench");
    let out = "BENCH_campaign.json";
    let bytes = report.write_json(out, &doc);
    println!(
        "campaign bench: serial wall {} vs campaign wall {} -> speedup {speedup:.2}x \
         (machine {} vs {}); deterministic: {deterministic}; wrote {out} ({bytes} bytes)",
        serial_wall, four_workers.wall_clock, serial_machine, four_workers.machine_time,
    );

    report.gate(speedup >= MIN_SPEEDUP, || {
        format!("speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate")
    });
    report.gate(deterministic, || {
        "1-worker and 4-worker campaigns diverged".to_owned()
    });
    report.gate(four_workers.lease_conflicts == 0, || {
        format!(
            "{} double-allocations observed",
            four_workers.lease_conflicts
        )
    });
    report.finish()
}
