//! Generalization check: TaOPT coordinating a tool outside the paper's
//! evaluation matrix (Badge, bandit-prioritized exploration). If the
//! tool-agnosticism claim holds, the improvement pattern should carry over
//! to a policy TaOPT was never tuned against.

use std::sync::Arc;

use taopt::experiments::run_and_summarize;
use taopt::report::{pct, TextTable};
use taopt::session::RunMode;
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps.min(6));
    eprintln!("extended_tools: {} apps, {:?}", apps.len(), args.scale);

    println!("TaOPT on Badge (extension tool, not in the paper's matrix)");
    let mut table = TextTable::new(["App", "Baseline", "TaOPT(D)", "Delta", "TaOPT(R)", "Delta"]);
    let mut sums = [0usize; 3];
    for (name, app) in &apps {
        let mut row = vec![name.clone()];
        let mut cells = [0usize; 3];
        for (i, mode) in [
            RunMode::Baseline,
            RunMode::TaoptDuration,
            RunMode::TaoptResource,
        ]
        .into_iter()
        .enumerate()
        {
            let s = run_and_summarize(
                name,
                Arc::clone(app),
                ToolKind::Badge,
                mode,
                &args.scale,
                args.seed,
            );
            cells[i] = s.union_coverage;
            sums[i] += s.union_coverage;
        }
        row.push(cells[0].to_string());
        row.push(cells[1].to_string());
        row.push(pct(cells[1] as f64 / cells[0].max(1) as f64 - 1.0));
        row.push(cells[2].to_string());
        row.push(pct(cells[2] as f64 / cells[0].max(1) as f64 - 1.0));
        table.row(row);
    }
    table.row([
        "Average".to_owned(),
        (sums[0] / apps.len()).to_string(),
        (sums[1] / apps.len()).to_string(),
        pct(sums[1] as f64 / sums[0].max(1) as f64 - 1.0),
        (sums[2] / apps.len()).to_string(),
        pct(sums[2] as f64 / sums[0].max(1) as f64 - 1.0),
    ]);
    print!("{}", table.render());
}
