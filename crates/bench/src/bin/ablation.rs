//! Ablations over TaOPT's design choices (DESIGN.md §7):
//!
//! * `l_min` sensitivity (Theorem 1's accuracy-vs-latency trade-off);
//! * confirmation policy (accept-at-once vs two independent reports);
//! * `FindSpace` acceptance bound (`max_score`).

use std::sync::Arc;

use taopt::experiments::summarize;
use taopt::session::{ParallelSession, RunMode};
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn main() {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps.min(3));
    eprintln!("ablation: {} apps, {:?}", apps.len(), args.scale);
    let scale = args.scale;

    let run = |label: &str, f: &dyn Fn(&mut taopt::session::SessionConfig)| {
        let mut cov = 0usize;
        let mut subspaces = 0usize;
        for (name, app) in &apps {
            let mut cfg = scale.session_config(ToolKind::Monkey, RunMode::TaoptDuration, args.seed);
            f(&mut cfg);
            let r = ParallelSession::run(Arc::clone(app), &cfg);
            let s = summarize(name, &r, &scale);
            cov += s.union_coverage;
            subspaces += s.confirmed_subspaces;
        }
        println!("  {label:<42} coverage {cov:>8}  confirmed subspaces {subspaces:>3}");
    };

    println!("Ablation: l_min (duration-mode split threshold)");
    for secs in [20u64, 60, 180, 300] {
        run(&format!("l_min = {secs}s"), &move |cfg| {
            cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(secs);
        });
    }

    println!("Ablation: confirmation policy");
    for conf in [1usize, 2, 3] {
        run(&format!("confirmations_required = {conf}"), &move |cfg| {
            cfg.analyzer.confirmations_required = conf;
        });
    }

    println!("Ablation: FindSpace acceptance bound");
    for ms in [0.3f64, 0.6, 0.9] {
        run(&format!("max_score = {ms}"), &move |cfg| {
            cfg.analyzer.find_space.max_score = ms;
        });
    }

    println!("Ablation: stall timeout");
    for mins in [1u64, 3, 6] {
        run(&format!("stall_timeout = {mins}m"), &move |cfg| {
            cfg.stall_timeout = VirtualDuration::from_mins(mins);
        });
    }

    // Content feeds (extension): paginated screens make the UI space
    // effectively inexhaustible, as on real apps.
    println!("Ablation: content feeds (inexhaustible UI spaces)");
    for fraction in [0.0f64, 0.25, 0.5] {
        let mut cov_base = 0usize;
        let mut cov_taopt = 0usize;
        for (i, (name, _)) in apps.iter().enumerate() {
            let entry = &taopt_app_sim::catalog_entries()[i];
            let mut gcfg = entry.config();
            gcfg.feed_fraction = fraction;
            let app = std::sync::Arc::new(taopt_app_sim::generate_app(&gcfg).unwrap());
            for (mode, slot) in [
                (RunMode::Baseline, &mut cov_base),
                (RunMode::TaoptDuration, &mut cov_taopt),
            ] {
                let cfg = scale.session_config(ToolKind::Monkey, mode, args.seed);
                let r = ParallelSession::run(std::sync::Arc::clone(&app), &cfg);
                let s = summarize(name, &r, &scale);
                *slot += s.union_coverage;
            }
        }
        println!(
            "  feed_fraction = {fraction:<4} baseline {cov_base:>8}  taopt(D) {cov_taopt:>8}  ({:+.1}%)",
            100.0 * (cov_taopt as f64 / cov_base.max(1) as f64 - 1.0)
        );
    }
}
