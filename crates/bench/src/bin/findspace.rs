//! FindSpace bench: full-rescan `find_space_candidates` versus the
//! incremental [`FindSpaceEngine`] on a paper-scale replay.
//!
//! A synthetic append-only trace (≥10k events, a few dozen distinct
//! abstract screens wandering across cluster phases — the shape the
//! analyzer sees from a Monkey-style walk) is analyzed at every 50-event
//! checkpoint, exactly like `Analyzer::maybe_analyze` re-running every
//! few virtual seconds. The rescan arm rebuilds its state from the full
//! prefix each checkpoint (`O(N·D)` per analysis); the engine arm feeds
//! only the appended 50 events (`O(ΔN·D + P)`).
//!
//! Writes `BENCH_findspace.json` and exits non-zero when either gate
//! fails:
//! * equivalence: every checkpoint's candidate list must be
//!   **bit-identical** across the two arms (same indices, same score
//!   bits);
//! * speedup: the engine must be ≥ 5× faster over the whole replay.
//!
//! Per-analysis engine latency is recorded in the
//! `findspace_analysis_us` telemetry histogram (the same series the live
//! analyzer feeds) and its percentiles are reported in the JSON.
//!
//! ```text
//! cargo run --release -p taopt-bench --bin findspace -- [quick|paper] [seed]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use taopt::findspace::{find_space_candidates, FindSpaceConfig, FindSpaceEngine, SimilarityCache};
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, TraceEvent, UiHierarchy, Value, VirtualDuration,
    VirtualTime, Widget, WidgetClass,
};

/// Analysis cadence: one FindSpace run per this many appended events.
const ANALYZE_EVERY: usize = 50;
/// Speedup gate: engine vs full rescan over the whole replay.
const MIN_SPEEDUP: f64 = 5.0;
/// Candidates requested per analysis (the analyzer's setting).
const K: usize = 5;

/// Builds an event whose abstract screen identity is `label`.
fn event(t_ms: u64, label: u32) -> TraceEvent {
    let mut root = Widget::container(WidgetClass::LinearLayout);
    for i in 0..6 {
        root = root.with_child(Widget::text_view(&format!("s{label}_{i}"), "t"));
    }
    let h = UiHierarchy::new(root);
    let a = Arc::new(abstract_hierarchy(&h));
    TraceEvent {
        time: VirtualTime::from_millis(t_ms),
        screen: ScreenId(label),
        activity: ActivityId(0),
        abstract_id: a.id(),
        abstraction: a,
        action: Some(Action::Widget(ActionId(label))),
        action_widget_rid: Some(Arc::from(format!("w{label}"))),
    }
}

/// Deterministic xorshift64* step.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A paper-scale trace: phases that dwell in one 8-screen cluster with
/// occasional hops back through earlier clusters, so prefixes keep a
/// realistic distinct-screen population (~40 screens over 5 clusters)
/// and genuine loose boundaries appear as phases change.
fn synth_trace(n_events: usize, seed: u64) -> Vec<TraceEvent> {
    const CLUSTERS: u32 = 5;
    const SCREENS_PER_CLUSTER: u32 = 8;
    let mut rng = seed | 1;
    let mut events = Vec::with_capacity(n_events);
    let mut t_ms = 0u64;
    let mut cluster = 0u32;
    for i in 0..n_events {
        // Change phase every ~400 events.
        if i > 0 && i.is_multiple_of(400) {
            cluster = (cluster + 1) % CLUSTERS;
        }
        let r = next_rand(&mut rng);
        // 6% of steps revisit a hub screen of an earlier cluster
        // (transit traffic), the rest wander the current cluster.
        let label = if r % 100 < 6 && cluster > 0 {
            (r as u32 / 100) % cluster * SCREENS_PER_CLUSTER
        } else {
            cluster * SCREENS_PER_CLUSTER + (r as u32 / 100) % SCREENS_PER_CLUSTER
        };
        // ~2 s cadence with jitter; occasional same-instant bursts.
        t_ms += if r.is_multiple_of(10) {
            0
        } else {
            1500 + r % 1000
        };
        events.push(event(t_ms, label));
    }
    events
}

/// Bitwise equality of two candidate lists.
fn identical(
    a: &[taopt::findspace::SplitCandidate],
    b: &[taopt::findspace::SplitCandidate],
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.index == y.index && x.score.to_bits() == y.score.to_bits())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("quick");
    let n_events = match mode {
        "paper" => 40_000,
        _ => 12_000,
    };
    let seed: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7a0f_7a0f);
    let config = FindSpaceConfig {
        l_min: VirtualDuration::from_mins(1),
        ..FindSpaceConfig::default()
    };

    eprintln!("findspace: {n_events} events, analysis every {ANALYZE_EVERY}, seed {seed:#x}");
    let events = synth_trace(n_events, seed);
    let checkpoints: Vec<usize> = (1..=n_events / ANALYZE_EVERY)
        .map(|i| i * ANALYZE_EVERY)
        .collect();

    // Warm both code paths (and the allocator) on a small prefix so the
    // measured arms start from comparable conditions.
    {
        let warm = &events[..1000.min(events.len())];
        let mut cache = SimilarityCache::new();
        let _ = find_space_candidates(warm, &config, &mut cache, K);
        let mut engine = FindSpaceEngine::new(config.clone());
        let mut cache = SimilarityCache::new();
        engine.extend_from(warm, &mut cache);
        let _ = engine.analyze(K);
    }

    // Arm 1: full rescan per checkpoint (the pre-engine analyzer path).
    let mut rescan_cache = SimilarityCache::new();
    let mut rescan_results = Vec::with_capacity(checkpoints.len());
    let t0 = Instant::now();
    for &end in &checkpoints {
        rescan_results.push(find_space_candidates(
            &events[..end],
            &config,
            &mut rescan_cache,
            K,
        ));
    }
    let rescan = t0.elapsed();

    // Arm 2: persistent engine fed only the appended events.
    let histogram = taopt_telemetry::global().histogram("findspace_analysis_us");
    let mut engine = FindSpaceEngine::new(config.clone());
    let mut engine_cache = SimilarityCache::new();
    let mut engine_results = Vec::with_capacity(checkpoints.len());
    let t1 = Instant::now();
    for &end in &checkpoints {
        let t = Instant::now();
        engine.extend_from(&events[..end], &mut engine_cache);
        engine_results.push(engine.analyze(K));
        histogram.record(t.elapsed().as_micros() as u64);
    }
    let engine_total = t1.elapsed();

    let all_identical = rescan_results
        .iter()
        .zip(&engine_results)
        .all(|(a, b)| identical(a, b));
    let splits_found = engine_results.iter().filter(|r| !r.is_empty()).count();
    let speedup = rescan.as_secs_f64() / engine_total.as_secs_f64().max(1e-9);
    let analyses = checkpoints.len() as u64;
    let hist_snap = taopt_telemetry::global()
        .snapshot()
        .histogram_total("findspace_analysis_us");
    let (p50_us, p95_us) = hist_snap.map_or((0, 0), |h| (h.p50(), h.p95()));

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("findspace".to_owned())),
        ("mode".to_owned(), Value::Str(mode.to_owned())),
        ("n_events".to_owned(), Value::UInt(n_events as u64)),
        ("seed".to_owned(), Value::UInt(seed)),
        ("analyses".to_owned(), Value::UInt(analyses)),
        (
            "analyze_every".to_owned(),
            Value::UInt(ANALYZE_EVERY as u64),
        ),
        (
            "distinct_screens".to_owned(),
            Value::UInt(engine.distinct_screens() as u64),
        ),
        (
            "checkpoints_with_split".to_owned(),
            Value::UInt(splits_found as u64),
        ),
        (
            "rescan_total_us".to_owned(),
            Value::UInt(rescan.as_micros() as u64),
        ),
        (
            "engine_total_us".to_owned(),
            Value::UInt(engine_total.as_micros() as u64),
        ),
        (
            "rescan_per_analysis_us".to_owned(),
            Value::UInt(rescan.as_micros() as u64 / analyses.max(1)),
        ),
        (
            "engine_per_analysis_us".to_owned(),
            Value::UInt(engine_total.as_micros() as u64 / analyses.max(1)),
        ),
        ("engine_p50_us".to_owned(), Value::UInt(p50_us)),
        ("engine_p95_us".to_owned(), Value::UInt(p95_us)),
        ("speedup".to_owned(), Value::Float(speedup)),
        ("bit_identical".to_owned(), Value::Bool(all_identical)),
    ]);
    let json = doc.to_json_string();
    let out = "BENCH_findspace.json";
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("findspace bench FAILED: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "findspace bench: {analyses} analyses over {n_events} events -> rescan {:.1}ms, \
         engine {:.1}ms, speedup {speedup:.1}x; bit-identical: {all_identical}; \
         {splits_found} checkpoints proposed a split; wrote {out} ({} bytes)",
        rescan.as_secs_f64() * 1e3,
        engine_total.as_secs_f64() * 1e3,
        json.len()
    );

    let mut failures = Vec::new();
    if !all_identical {
        failures.push("engine diverged from full-rescan reference".to_owned());
    }
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate"
        ));
    }
    if splits_found == 0 {
        failures.push("replay never proposed a split — trace shape is not protective".to_owned());
    }
    if failures.is_empty() {
        println!("findspace bench: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("findspace bench FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
