//! FindSpace bench: full-rescan `find_space_candidates` versus the
//! incremental [`FindSpaceEngine`] on a paper-scale replay.
//!
//! A synthetic append-only trace (≥10k events, a few dozen distinct
//! abstract screens wandering across cluster phases — the shape the
//! analyzer sees from a Monkey-style walk) is analyzed at every 50-event
//! checkpoint, exactly like `Analyzer::maybe_analyze` re-running every
//! few virtual seconds. The rescan arm rebuilds its state from the full
//! prefix each checkpoint (`O(N·D)` per analysis); the engine arm feeds
//! only the appended 50 events (`O(ΔN·D + P)`).
//!
//! Writes `BENCH_findspace.json` and exits non-zero when either gate
//! fails:
//! * equivalence: every checkpoint's candidate list must be
//!   **bit-identical** across the two arms (same indices, same score
//!   bits);
//! * speedup: the engine must be ≥ 5× faster over the whole replay.
//!
//! Per-analysis engine latency is recorded in the
//! `findspace_analysis_us` telemetry histogram (the same series the live
//! analyzer feeds) and its percentiles are reported in the JSON.
//!
//! ```text
//! cargo run --release -p taopt-bench --bin findspace -- [quick|paper] [seed]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use taopt::findspace::{find_space_candidates, FindSpaceConfig, FindSpaceEngine, SimilarityCache};
use taopt_bench::BenchReport;
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, TraceEvent, UiHierarchy, Value, VirtualDuration,
    VirtualTime, Widget, WidgetClass,
};

/// Analysis cadence: one FindSpace run per this many appended events.
const ANALYZE_EVERY: usize = 50;
/// Speedup gate: engine vs full rescan over the whole replay.
const MIN_SPEEDUP: f64 = 5.0;
/// Candidates requested per analysis (the analyzer's setting).
const K: usize = 5;
/// Abstract-screen population shape shared by all modes.
const CLUSTERS: u32 = 5;
const SCREENS_PER_CLUSTER: u32 = 8;

/// Scaled replay: total appended events.
const SCALED_EVENTS: usize = 1_000_000;
/// Scaled replay: phase length (events per dwell cluster).
const SCALED_PHASE: usize = 2_000;
/// Scaled replay: analysis cadence (events appended per checkpoint).
const SCALED_ANALYZE_EVERY: usize = 25;
/// Scaled replay: the analyzer-style window is rebased once it reaches
/// this many events, preferring a split-candidate boundary as the cut.
const WINDOW_CAP: usize = 2_000;
/// Scaled gate: vectorized-arm per-analysis p95, microseconds.
const MAX_P95_US: u64 = 9;
/// Scaled replay: full-rescan cross-checks sampled across the run.
const CROSS_CHECKS: u64 = 24;

/// Builds an event whose abstract screen identity is `label`.
fn event(t_ms: u64, label: u32) -> TraceEvent {
    let mut root = Widget::container(WidgetClass::LinearLayout);
    for i in 0..6 {
        root = root.with_child(Widget::text_view(&format!("s{label}_{i}"), "t"));
    }
    let h = UiHierarchy::new(root);
    let a = Arc::new(abstract_hierarchy(&h));
    TraceEvent {
        time: VirtualTime::from_millis(t_ms),
        screen: ScreenId(label),
        activity: ActivityId(0),
        abstract_id: a.id(),
        abstraction: a,
        action: Some(Action::Widget(ActionId(label))),
        action_widget_rid: Some(Arc::from(format!("w{label}"))),
    }
}

/// Deterministic xorshift64* step.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A paper-scale trace: phases that dwell in one 8-screen cluster with
/// occasional hops back through earlier clusters, so prefixes keep a
/// realistic distinct-screen population (~40 screens over 5 clusters)
/// and genuine loose boundaries appear as phases change.
fn synth_trace(n_events: usize, seed: u64) -> Vec<TraceEvent> {
    let mut rng = seed | 1;
    let mut events = Vec::with_capacity(n_events);
    let mut t_ms = 0u64;
    let mut cluster = 0u32;
    for i in 0..n_events {
        // Change phase every ~400 events.
        if i > 0 && i.is_multiple_of(400) {
            cluster = (cluster + 1) % CLUSTERS;
        }
        let r = next_rand(&mut rng);
        // 6% of steps revisit a hub screen of an earlier cluster
        // (transit traffic), the rest wander the current cluster.
        let label = if r % 100 < 6 && cluster > 0 {
            (r as u32 / 100) % cluster * SCREENS_PER_CLUSTER
        } else {
            cluster * SCREENS_PER_CLUSTER + (r as u32 / 100) % SCREENS_PER_CLUSTER
        };
        // ~2 s cadence with jitter; occasional same-instant bursts.
        t_ms += if r.is_multiple_of(10) {
            0
        } else {
            1500 + r % 1000
        };
        events.push(event(t_ms, label));
    }
    events
}

/// Streaming variant of [`synth_trace`] for the 1M-event scaled replay:
/// events are minted one at a time from per-label templates (one tree
/// build per distinct screen, `Arc`-cloned thereafter) so the replay
/// never materializes the full trace.
struct SynthStream {
    templates: Vec<TraceEvent>,
    rng: u64,
    t_ms: u64,
    cluster: u32,
    produced: usize,
}

impl SynthStream {
    fn new(seed: u64) -> Self {
        SynthStream {
            templates: (0..CLUSTERS * SCREENS_PER_CLUSTER)
                .map(|l| event(0, l))
                .collect(),
            rng: seed | 1,
            t_ms: 0,
            cluster: 0,
            produced: 0,
        }
    }

    fn next_event(&mut self) -> TraceEvent {
        if self.produced > 0 && self.produced.is_multiple_of(SCALED_PHASE) {
            self.cluster = (self.cluster + 1) % CLUSTERS;
        }
        let r = next_rand(&mut self.rng);
        let label = if r % 100 < 6 && self.cluster > 0 {
            (r as u32 / 100) % self.cluster * SCREENS_PER_CLUSTER
        } else {
            self.cluster * SCREENS_PER_CLUSTER + (r as u32 / 100) % SCREENS_PER_CLUSTER
        };
        self.t_ms += if r.is_multiple_of(10) {
            0
        } else {
            1500 + r % 1000
        };
        self.produced += 1;
        let mut e = self.templates[label as usize].clone();
        e.time = VirtualTime::from_millis(self.t_ms);
        e
    }
}

/// Bitwise equality of two candidate lists.
fn identical(
    a: &[taopt::findspace::SplitCandidate],
    b: &[taopt::findspace::SplitCandidate],
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.index == y.index && x.score.to_bits() == y.score.to_bits())
}

/// The scaled arm: a 1M-event windowed replay pitting the vectorized
/// lane sweep over the default sharded cache against the scalar
/// reference sweep over the 1-shard reference cache, checkpoint by
/// checkpoint.
///
/// The window is rebased (analyzer-style: cut at a split-candidate
/// boundary when one exists, else mid-window) whenever it reaches
/// [`WINDOW_CAP`], so memory stays bounded and every analysis sees a
/// realistic post-dedication window. Both arms share each rebase
/// decision, which is taken from the scalar arm's output — legal only
/// because the bit-identical gate proves the vectorized arm would have
/// decided the same. Gates:
/// * `bit_identical`: every checkpoint's candidates agree bitwise
///   across arms, plus [`CROSS_CHECKS`] sampled full-rescan
///   (`find_space_candidates`) agreements;
/// * `engine_p95_us` ≤ [`MAX_P95_US`] on the vectorized arm.
fn scaled(seed: u64) -> ExitCode {
    let config = FindSpaceConfig {
        l_min: VirtualDuration::from_mins(1),
        ..FindSpaceConfig::default()
    };
    eprintln!(
        "findspace scaled: {SCALED_EVENTS} events, window cap {WINDOW_CAP}, \
         analysis every {SCALED_ANALYZE_EVERY}, seed {seed:#x}"
    );
    let mut stream = SynthStream::new(seed);
    let vec_cache = SimilarityCache::new();
    let ref_cache = SimilarityCache::with_shards(1);
    let rescan_cache = SimilarityCache::new();
    let mut vec_engine = FindSpaceEngine::new(config.clone());
    let mut ref_engine = FindSpaceEngine::new(config.clone());
    let histogram = taopt_telemetry::global().histogram("findspace_analysis_us");

    // Warm both arms so the first measured checkpoint is not paying
    // first-touch allocation.
    {
        let warm: Vec<TraceEvent> = (0..256)
            .map(|_| SynthStream::new(seed ^ 1).next_event())
            .collect();
        let cache = SimilarityCache::new();
        let mut engine = FindSpaceEngine::new(config.clone());
        engine.extend_from(&warm, &cache);
        let _ = engine.analyze(K);
        let _ = engine.analyze_reference(K);
    }

    let mut window: Vec<TraceEvent> = Vec::with_capacity(WINDOW_CAP + ANALYZE_EVERY);
    let mut produced = 0usize;
    let mut analyses = 0u64;
    let mut bit_identical = true;
    let mut splits_found = 0u64;
    let mut rebases = 0u64;
    let mut cross_checked = 0u64;
    let mut max_window = 0usize;
    let cross_stride = (SCALED_EVENTS as u64 / SCALED_ANALYZE_EVERY as u64 / CROSS_CHECKS).max(1);
    let t0 = Instant::now();
    while produced < SCALED_EVENTS {
        for _ in 0..SCALED_ANALYZE_EVERY {
            if produced >= SCALED_EVENTS {
                break;
            }
            window.push(stream.next_event());
            produced += 1;
        }
        max_window = max_window.max(window.len());

        // Vectorized arm: default lane width over the sharded cache.
        // The timed region is exactly what the analyzer pays per pass.
        let t = Instant::now();
        vec_engine.extend_from(&window, &vec_cache);
        let vec_out = vec_engine.analyze(K);
        histogram.record(t.elapsed().as_micros() as u64);

        // Scalar reference arm: verbatim pre-vectorization sweep over
        // the 1-shard reference cache.
        ref_engine.extend_from(&window, &ref_cache);
        let ref_out = ref_engine.analyze_reference(K);
        analyses += 1;

        if !identical(&vec_out, &ref_out) {
            bit_identical = false;
        }
        if !ref_out.is_empty() {
            splits_found += 1;
        }
        if analyses.is_multiple_of(cross_stride) && cross_checked < CROSS_CHECKS {
            cross_checked += 1;
            if !identical(
                &ref_out,
                &find_space_candidates(&window, &config, &rescan_cache, K),
            ) {
                bit_identical = false;
            }
        }

        if window.len() >= WINDOW_CAP {
            let len = window.len();
            let cut = ref_out
                .first()
                .map_or(len / 2, |c| c.index)
                .clamp(5 * len / 8, 3 * len / 4);
            window.drain(..cut);
            vec_engine.reset();
            ref_engine.reset();
            rebases += 1;
        }
    }
    let total = t0.elapsed();

    let hist_snap = taopt_telemetry::global()
        .snapshot()
        .histogram_total("findspace_analysis_us");
    let (p50_us, p95_us) = hist_snap.map_or((0, 0), |h| (h.p50(), h.p95()));
    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("findspace".to_owned())),
        ("mode".to_owned(), Value::Str("scaled".to_owned())),
        ("n_events".to_owned(), Value::UInt(SCALED_EVENTS as u64)),
        ("seed".to_owned(), Value::UInt(seed)),
        ("analyses".to_owned(), Value::UInt(analyses)),
        (
            "analyze_every".to_owned(),
            Value::UInt(SCALED_ANALYZE_EVERY as u64),
        ),
        ("window_cap".to_owned(), Value::UInt(WINDOW_CAP as u64)),
        ("max_window".to_owned(), Value::UInt(max_window as u64)),
        ("rebases".to_owned(), Value::UInt(rebases)),
        (
            "checkpoints_with_split".to_owned(),
            Value::UInt(splits_found),
        ),
        ("cross_checks".to_owned(), Value::UInt(cross_checked)),
        (
            "cache_entries".to_owned(),
            Value::UInt(vec_cache.len() as u64),
        ),
        (
            "cache_computations".to_owned(),
            Value::UInt(vec_cache.computations()),
        ),
        ("total_us".to_owned(), Value::UInt(total.as_micros() as u64)),
        ("engine_p50_us".to_owned(), Value::UInt(p50_us)),
        ("engine_p95_us".to_owned(), Value::UInt(p95_us)),
        ("p95_gate_us".to_owned(), Value::UInt(MAX_P95_US)),
        ("bit_identical".to_owned(), Value::Bool(bit_identical)),
    ]);
    let mut report = BenchReport::new("findspace bench");
    let out = "BENCH_findspace.json";
    let bytes = report.write_json(out, &doc);
    println!(
        "findspace scaled: {analyses} analyses over {SCALED_EVENTS} events in {:.1}ms \
         ({rebases} rebases, max window {max_window}); engine p50 {p50_us}us p95 {p95_us}us; \
         bit-identical: {bit_identical}; {splits_found} checkpoints proposed a split; \
         {cross_checked} rescan cross-checks; wrote {out} ({bytes} bytes)",
        total.as_secs_f64() * 1e3,
    );

    report.gate(bit_identical, || {
        "vectorized arm diverged from the scalar reference".to_owned()
    });
    report.gate(p95_us <= MAX_P95_US, || {
        format!("engine p95 {p95_us}us above the {MAX_P95_US}us gate")
    });
    report.gate(splits_found > 0, || {
        "replay never proposed a split — trace shape is not protective".to_owned()
    });
    report.gate(cross_checked > 0, || {
        "no full-rescan cross-checks ran".to_owned()
    });
    report.finish()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("quick");
    let seed: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7a0f_7a0f);
    if mode == "scaled" {
        return scaled(seed);
    }
    let n_events = match mode {
        "paper" => 40_000,
        _ => 12_000,
    };
    let config = FindSpaceConfig {
        l_min: VirtualDuration::from_mins(1),
        ..FindSpaceConfig::default()
    };

    eprintln!(
        "findspace: {n_events} events, analysis every {SCALED_ANALYZE_EVERY}, seed {seed:#x}"
    );
    let events = synth_trace(n_events, seed);
    let checkpoints: Vec<usize> = (1..=n_events / ANALYZE_EVERY)
        .map(|i| i * ANALYZE_EVERY)
        .collect();

    // Warm both code paths (and the allocator) on a small prefix so the
    // measured arms start from comparable conditions.
    {
        let warm = &events[..1000.min(events.len())];
        let cache = SimilarityCache::new();
        let _ = find_space_candidates(warm, &config, &cache, K);
        let mut engine = FindSpaceEngine::new(config.clone());
        let cache = SimilarityCache::new();
        engine.extend_from(warm, &cache);
        let _ = engine.analyze(K);
    }

    // Arm 1: full rescan per checkpoint (the pre-engine analyzer path).
    let rescan_cache = SimilarityCache::new();
    let mut rescan_results = Vec::with_capacity(checkpoints.len());
    let t0 = Instant::now();
    for &end in &checkpoints {
        rescan_results.push(find_space_candidates(
            &events[..end],
            &config,
            &rescan_cache,
            K,
        ));
    }
    let rescan = t0.elapsed();

    // Arm 2: persistent engine fed only the appended events.
    let histogram = taopt_telemetry::global().histogram("findspace_analysis_us");
    let mut engine = FindSpaceEngine::new(config.clone());
    let engine_cache = SimilarityCache::new();
    let mut engine_results = Vec::with_capacity(checkpoints.len());
    let t1 = Instant::now();
    for &end in &checkpoints {
        let t = Instant::now();
        engine.extend_from(&events[..end], &engine_cache);
        engine_results.push(engine.analyze(K));
        histogram.record(t.elapsed().as_micros() as u64);
    }
    let engine_total = t1.elapsed();

    let all_identical = rescan_results
        .iter()
        .zip(&engine_results)
        .all(|(a, b)| identical(a, b));
    let splits_found = engine_results.iter().filter(|r| !r.is_empty()).count();
    let speedup = rescan.as_secs_f64() / engine_total.as_secs_f64().max(1e-9);
    let analyses = checkpoints.len() as u64;
    let hist_snap = taopt_telemetry::global()
        .snapshot()
        .histogram_total("findspace_analysis_us");
    let (p50_us, p95_us) = hist_snap.map_or((0, 0), |h| (h.p50(), h.p95()));

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("findspace".to_owned())),
        ("mode".to_owned(), Value::Str(mode.to_owned())),
        ("n_events".to_owned(), Value::UInt(n_events as u64)),
        ("seed".to_owned(), Value::UInt(seed)),
        ("analyses".to_owned(), Value::UInt(analyses)),
        (
            "analyze_every".to_owned(),
            Value::UInt(ANALYZE_EVERY as u64),
        ),
        (
            "distinct_screens".to_owned(),
            Value::UInt(engine.distinct_screens() as u64),
        ),
        (
            "checkpoints_with_split".to_owned(),
            Value::UInt(splits_found as u64),
        ),
        (
            "rescan_total_us".to_owned(),
            Value::UInt(rescan.as_micros() as u64),
        ),
        (
            "engine_total_us".to_owned(),
            Value::UInt(engine_total.as_micros() as u64),
        ),
        (
            "rescan_per_analysis_us".to_owned(),
            Value::UInt(rescan.as_micros() as u64 / analyses.max(1)),
        ),
        (
            "engine_per_analysis_us".to_owned(),
            Value::UInt(engine_total.as_micros() as u64 / analyses.max(1)),
        ),
        ("engine_p50_us".to_owned(), Value::UInt(p50_us)),
        ("engine_p95_us".to_owned(), Value::UInt(p95_us)),
        ("speedup".to_owned(), Value::Float(speedup)),
        ("bit_identical".to_owned(), Value::Bool(all_identical)),
    ]);
    let mut report = BenchReport::new("findspace bench");
    let out = "BENCH_findspace.json";
    let bytes = report.write_json(out, &doc);
    println!(
        "findspace bench: {analyses} analyses over {n_events} events -> rescan {:.1}ms, \
         engine {:.1}ms, speedup {speedup:.1}x; bit-identical: {all_identical}; \
         {splits_found} checkpoints proposed a split; wrote {out} ({bytes} bytes)",
        rescan.as_secs_f64() * 1e3,
        engine_total.as_secs_f64() * 1e3,
    );

    report.gate(all_identical, || {
        "engine diverged from full-rescan reference".to_owned()
    });
    report.gate(speedup >= MIN_SPEEDUP, || {
        format!("speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate")
    });
    report.gate(splits_found > 0, || {
        "replay never proposed a split — trace shape is not protective".to_owned()
    });
    report.finish()
}
