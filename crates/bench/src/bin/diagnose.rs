//! Deep diagnostic of one TaOPT session: instance churn, subspace quality
//! against ground truth, and per-instance exploration footprints.

use std::collections::BTreeMap;
use std::sync::Arc;

use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_bench::load_apps;
use taopt_tools::ToolKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_idx: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(0);
    let tool = match args.get(1).map(String::as_str) {
        Some("ape") => ToolKind::Ape,
        Some("wctester") => ToolKind::WcTester,
        _ => ToolKind::Monkey,
    };
    let mode = match args.get(2).map(String::as_str) {
        Some("resource") => RunMode::TaoptResource,
        Some("baseline") => RunMode::Baseline,
        _ => RunMode::TaoptDuration,
    };
    let apps = load_apps(18);
    let (name, app) = &apps[app_idx.min(17)];
    println!(
        "app {name}: {} screens, {} methods, {} functionalities",
        app.screen_count(),
        app.method_count(),
        app.functionalities().len()
    );

    let cfg = SessionConfig::new(tool, mode);
    let r = ParallelSession::run(Arc::clone(app), &cfg);
    println!(
        "mode {:?} union cov {} crashes {} machine {} wall {}",
        mode,
        r.union_coverage(),
        r.unique_crashes().len(),
        r.machine_time,
        r.wall_clock
    );
    println!("instances created: {}", r.instances.len());
    for i in &r.instances {
        let screens: std::collections::BTreeSet<_> =
            i.trace.events().iter().map(|e| e.screen).collect();
        println!(
            "  {}: alloc {} dealloc {} life {} trace {} screens {} cov {}",
            i.instance,
            i.allocated_at,
            i.deallocated_at,
            i.deallocated_at.since(i.allocated_at),
            i.trace.len(),
            screens.len(),
            i.covered.len()
        );
    }
    println!(
        "subspaces: {} ({} confirmed)",
        r.subspaces.len(),
        r.subspaces.iter().filter(|s| s.confirmed).count()
    );
    // Ground-truth purity: which functionality do subspace screens map to?
    let mut screen_func: BTreeMap<u64, u32> = BTreeMap::new();
    for spec in app.screens() {
        let abs =
            taopt_ui_model::abstraction::abstract_hierarchy(&app.render_screen(spec.id, 0)).id();
        screen_func.insert(abs.0, spec.functionality.0);
    }
    for s in r.subspaces.iter().filter(|s| s.confirmed).take(40) {
        let mut by_func: BTreeMap<u32, usize> = BTreeMap::new();
        for sc in &s.screens {
            if let Some(f) = screen_func.get(&sc.0) {
                *by_func.entry(*f).or_insert(0) += 1;
            }
        }
        let total: usize = by_func.values().sum();
        let (top_f, top_n) = by_func
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(f, n)| (*f, *n))
            .unwrap_or((u32::MAX, 0));
        println!(
            "  {} owner {:?} screens {} entrypoints {:?} purity {:.0}% (func {top_f}) reporters {}",
            s.id,
            s.owner,
            s.screens.len(),
            s.entrypoints
                .iter()
                .map(|e| e.widget_rid.clone())
                .collect::<Vec<_>>(),
            if total > 0 {
                100.0 * top_n as f64 / total as f64
            } else {
                0.0
            },
            s.reporters.len()
        );
    }
}
