//! Calibration probe: runs one app × one tool across all modes and prints
//! the headline quantities, for tuning the simulation against the paper's
//! shapes before running the full harness.

use std::sync::Arc;

use taopt::experiments::{run_and_summarize, ExperimentScale};
use taopt::session::RunMode;
use taopt_bench::load_apps;
use taopt_tools::ToolKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_apps: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2);
    let scale = if args.iter().any(|a| a == "quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2025);
    let apps = load_apps(n_apps);
    for (name, app) in &apps {
        println!(
            "== {name} (methods: {}, screens: {})",
            app.method_count(),
            app.screen_count()
        );
        for tool in ToolKind::ALL {
            for mode in [
                RunMode::Baseline,
                RunMode::TaoptDuration,
                RunMode::TaoptResource,
            ] {
                let s = run_and_summarize(name, Arc::clone(app), tool, mode, &scale, seed);
                println!(
                    "  {:<9} {:<17} cov {:>6} ({:>4.1}%)  crashes {:>2}  machine {:>8}  wall {:>7}  subspaces {:>2}  ui-occ {:>7.1}  ajs-end {:.2}",
                    tool.name(),
                    mode.label(),
                    s.union_coverage,
                    100.0 * s.union_coverage as f64 / app.method_count() as f64,
                    s.unique_crashes,
                    s.machine_time.to_string(),
                    s.wall_clock.to_string(),
                    s.confirmed_subspaces,
                    s.avg_ui_occurrences,
                    s.ajs_curve.last().map(|(_, v)| *v).unwrap_or(0.0),
                );
            }
        }
    }
}
