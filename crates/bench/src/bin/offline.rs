//! Offline workflow: record baseline traces to a JSON archive, reload
//! them, and run the §3 preliminary study plus an analyzer replay —
//! without re-executing any session.

use std::sync::Arc;

use taopt::analyzer::AnalyzerConfig;
use taopt::offline::{preliminary_study, replay_analysis, TraceArchive};
use taopt::partition::PartitionConfig;
use taopt::session::{ParallelSession, RunMode};
use taopt_bench::{load_apps, HarnessArgs};
use taopt_tools::ToolKind;

fn main() -> std::io::Result<()> {
    let args = HarnessArgs::parse();
    let apps = load_apps(args.n_apps.min(3));
    let path = std::env::temp_dir().join("taopt-traces.json");

    // 1. Record.
    let (name, app) = &apps[0];
    let cfg = args
        .scale
        .session_config(ToolKind::Monkey, RunMode::Baseline, args.seed);
    let result = ParallelSession::run(Arc::clone(app), &cfg);
    let archive = TraceArchive::from_session(format!("{name}/Monkey/baseline"), &result);
    archive.save(&path)?;
    println!(
        "recorded {} traces ({} events) to {}",
        archive.len(),
        archive.event_count(),
        path.display()
    );

    // 2. Reload + preliminary study.
    let restored = TraceArchive::load(&path)?;
    let report = preliminary_study(&restored, &PartitionConfig::default());
    println!(
        "\npreliminary study of `{}`:\n  {} subspaces over {} distinct screens, \
         avg UI occurrences {:.1}",
        report.label, report.subspace_count, report.distinct_screens, report.avg_ui_occurrences
    );
    for (k, v) in &report.overlap_histogram {
        println!("  explored by {k} instance(s): {v}");
    }
    println!(
        "  {:.0}% of subspaces explored by more than one instance (paper: 97%)",
        100.0 * report.multi_explored_fraction()
    );

    // 3. Analyzer replay.
    let mut acfg = AnalyzerConfig::duration_mode();
    acfg.find_space.l_min = args.scale.l_min_short;
    let subspaces = replay_analysis(&restored, acfg);
    println!(
        "\nanalyzer replay identified {} subspaces ({} confirmed) from the archive alone",
        subspaces.len(),
        subspaces.iter().filter(|s| s.confirmed).count()
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
