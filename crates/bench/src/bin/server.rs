//! Control-plane bench: two farm shards on loopback under mixed-priority
//! wire load, with the long flagship campaign migrated shard A → shard B
//! mid-flight. Writes `BENCH_server.json`.
//!
//! Flow: run every campaign directly ([`run_campaign`] via spec) for the
//! uninterrupted reference reports, then start two [`CampaignService`]s
//! behind [`serve`] on ephemeral loopback ports and submit all campaigns
//! to shard A over the wire at mixed priorities (A's farm only fits two
//! at a time, so queueing and admission run under load). Once the
//! flagship is provably mid-flight, export its checkpoint from A (which
//! preempts and detaches it) and import it into B, where it resumes by
//! digest-verified replay. Every result is then collected over the wire.
//!
//! Exit gates (CI smoke): every wire-produced coverage report must be
//! byte-identical to its direct reference, the migrated checkpoint must
//! have been mid-flight (round > 0), shard A must answer 404 for the
//! migrated campaign, and p95 status-route latency must stay under
//! [`MAX_STATUS_P95_US`] of host time.

use std::process::ExitCode;
use std::time::Instant;

use taopt::report::TextTable;
use taopt::run_campaign;
use taopt::session::RunMode;
use taopt_bench::{load_apps, BenchReport, HarnessArgs};
use taopt_server::{serve, Client, ServerConfig};
use taopt_service::checkpoint as ckpt_codec;
use taopt_service::{
    AppSource, AppSpec, CampaignService, CampaignSpec, CampaignStatus, ServiceConfig,
};
use taopt_tools::ToolKind;
use taopt_ui_model::Value;

/// Campaigns submitted to shard A.
const CAMPAIGNS: usize = 6;

/// Mixed submission priorities (higher runs first; campaign 0 is the
/// flagship the migration targets).
const PRIORITIES: [u8; CAMPAIGNS] = [9, 5, 3, 7, 2, 6];

/// Host-time p95 gate on the status route, in µs. Status reads are the
/// interactive path; they must stay fast while campaigns run and wait
/// requests block.
const MAX_STATUS_P95_US: u64 = 1_000_000;

/// Checkpoint cadence in rounds.
const CHECKPOINT_EVERY: u64 = 3;

/// Wire-wait deadline per campaign.
const WAIT: std::time::Duration = std::time::Duration::from_secs(600);

/// Builds the bench's campaign specs: two catalog apps each, mixed
/// tools, per-campaign seeds, demand capped so shard A fits exactly two
/// campaigns at a time. Campaign 0 is the long flagship.
fn build_specs(args: &HarnessArgs) -> Vec<CampaignSpec> {
    let names: Vec<String> = load_apps(args.n_apps).into_iter().map(|(n, _)| n).collect();
    (0..CAMPAIGNS)
        .map(|i| {
            let apps = (0..2)
                .map(|j| AppSpec {
                    source: AppSource::Catalog(names[(i + j) % names.len()].clone()),
                    tool: if (i + j) % 2 == 0 {
                        ToolKind::Monkey
                    } else {
                        ToolKind::Ape
                    },
                    mode: RunMode::TaoptDuration,
                    seed: args.seed + (i * 2 + j) as u64 * 31,
                })
                .collect();
            let mut spec = CampaignSpec::new(format!("bench-{i}"), apps, args.scale);
            spec.capacity = Some(2 * args.scale.instances);
            if i == 0 {
                // Long enough that the migration provably lands mid-run.
                spec.scale.duration = args.scale.duration * 4;
            }
            spec
        })
        .collect()
}

/// Starts one shard: a campaign service in `dir` behind a loopback
/// server on an ephemeral port.
fn shard(
    dir: &std::path::Path,
    demand: usize,
) -> Result<(taopt_server::ServerHandle, Client), String> {
    let mut config = ServiceConfig::new(dir);
    config.farm_capacity = 2 * demand;
    config.checkpoint_every = CHECKPOINT_EVERY;
    let service = CampaignService::start(config).map_err(|e| format!("start service: {e}"))?;
    let handle =
        serve(service, ServerConfig::new("127.0.0.1:0")).map_err(|e| format!("serve: {e}"))?;
    let client = Client::new(handle.addr());
    Ok((handle, client))
}

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let specs = build_specs(&args);
    let demand = specs[0].device_demand();
    eprintln!(
        "server: {CAMPAIGNS} campaigns x demand {demand} over the wire, two shards, {:?}",
        args.scale
    );

    // Uninterrupted references.
    let direct_start = Instant::now();
    let expected: Vec<String> = specs
        .iter()
        .map(|s| {
            let (apps, config) = s.build().expect("bench spec builds");
            run_campaign(apps, &config).coverage_report()
        })
        .collect();
    let direct_ms = direct_start.elapsed().as_millis() as u64;
    eprintln!("  direct reference runs: {direct_ms}ms");

    let base = std::env::temp_dir().join(format!("taopt-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (handle_a, a) = match shard(&base.join("shard-a"), demand) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server bench FAILED: shard A: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (handle_b, b) = match shard(&base.join("shard-b"), demand) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server bench FAILED: shard B: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("  shard A {}, shard B {}", handle_a.addr(), handle_b.addr());

    // Mixed-priority wire load onto shard A.
    let wire_start = Instant::now();
    let ids: Vec<_> = specs
        .iter()
        .zip(PRIORITIES)
        .map(|(s, pri)| a.submit(s, pri).expect("wire submission admitted"))
        .collect();

    // Poll over the wire until the flagship is provably mid-flight and
    // past its first checkpoints.
    let poll_start = Instant::now();
    loop {
        match a.status(ids[0]).expect("known campaign") {
            CampaignStatus::Running { round } if round >= 2 * CHECKPOINT_EVERY => break,
            CampaignStatus::Done | CampaignStatus::Failed(_) => break,
            _ if poll_start.elapsed().as_secs() > 60 => break,
            _ => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }

    // Migrate the flagship A → B: export preempts at the next round
    // boundary and detaches; the bytes travel verbatim; B verifies the
    // checksum at decode and the digest during replay.
    let migrate_start = Instant::now();
    let text = match a.export_checkpoint_text(ids[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("server bench FAILED: export from shard A: {e}");
            return ExitCode::FAILURE;
        }
    };
    let migrated_round = match ckpt_codec::decode(&text, "bench export") {
        Ok(c) => c.round,
        Err(e) => {
            eprintln!("server bench FAILED: exported checkpoint unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let migrated_id = match b.import_checkpoint_text(&text) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("server bench FAILED: import into shard B: {e}");
            return ExitCode::FAILURE;
        }
    };
    let migrate_ms = migrate_start.elapsed().as_millis() as u64;
    let gone_from_a = a.status(ids[0]).err().and_then(|e| e.status()) == Some(404);
    eprintln!(
        "  migrated flagship at round {migrated_round} in {migrate_ms}ms \
         (shard A 404s it: {gone_from_a})"
    );

    // Collect every result over the wire: the migrated flagship from B,
    // the rest from A.
    let mut table = TextTable::new(["Campaign", "Priority", "Shard", "Identical"]);
    let mut all_identical = true;
    for (i, id) in ids.iter().enumerate() {
        let (client, shard_name, id) = if i == 0 {
            (&b, "A->B", migrated_id)
        } else {
            (&a, "A", *id)
        };
        let status = client.wait(id, WAIT).expect("wire wait");
        let report = if status == CampaignStatus::Done {
            client.result(id).ok()
        } else {
            None
        };
        let identical = report.as_deref() == Some(expected[i].as_str());
        all_identical &= identical;
        table.row([
            specs[i].name.clone(),
            PRIORITIES[i].to_string(),
            shard_name.to_owned(),
            if identical { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    let wire_ms = wire_start.elapsed().as_millis() as u64;

    println!(
        "Control plane: {CAMPAIGNS} campaigns over the wire, two shards, \
         flagship migrated mid-flight"
    );
    print!("{}", table.render());

    // Request-latency accounting: the status route is the interactive
    // path; wait-route samples legitimately block and are reported
    // separately, not gated.
    let snapshot = taopt_telemetry::global().snapshot();
    let status_hist = snapshot
        .histograms
        .get("server_request_latency_us{kind=\"status\"}");
    let (status_p50_us, status_p95_us, status_requests) = status_hist.map_or((0, 0, 0), |h| {
        (
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.count,
        )
    });
    let requests_total = snapshot.counter_total("server_requests_total");
    let errors_total = snapshot.counter_total("server_errors_total");
    let backpressure_total = snapshot.counter_total("server_backpressure_total");
    let exports = snapshot.counter_total("service_exports_total");
    let imports = snapshot.counter_total("service_imports_total");
    println!(
        "{requests_total} requests ({errors_total} error responses, \
         {backpressure_total} shed), status p50 {:.1}ms / p95 {:.1}ms over \
         {status_requests} reads, {exports} exports / {imports} imports, \
         wire {wire_ms}ms (direct {direct_ms}ms)",
        status_p50_us as f64 / 1000.0,
        status_p95_us as f64 / 1000.0,
    );

    let doc = Value::Object(vec![
        ("bench".to_owned(), Value::Str("server".to_owned())),
        ("campaigns".to_owned(), Value::UInt(CAMPAIGNS as u64)),
        ("farm_capacity".to_owned(), Value::UInt(2 * demand as u64)),
        ("seed".to_owned(), Value::UInt(args.seed)),
        ("checkpoint_every".to_owned(), Value::UInt(CHECKPOINT_EVERY)),
        ("byte_identical".to_owned(), Value::Bool(all_identical)),
        ("migrated_round".to_owned(), Value::UInt(migrated_round)),
        ("gone_from_source".to_owned(), Value::Bool(gone_from_a)),
        ("migrate_ms".to_owned(), Value::UInt(migrate_ms)),
        ("requests_total".to_owned(), Value::UInt(requests_total)),
        ("errors_total".to_owned(), Value::UInt(errors_total)),
        (
            "backpressure_total".to_owned(),
            Value::UInt(backpressure_total),
        ),
        ("status_p50_us".to_owned(), Value::UInt(status_p50_us)),
        ("status_p95_us".to_owned(), Value::UInt(status_p95_us)),
        ("wire_ms".to_owned(), Value::UInt(wire_ms)),
        ("direct_ms".to_owned(), Value::UInt(direct_ms)),
    ]);
    let mut report = BenchReport::new("server bench");
    let out = "BENCH_server.json";
    let bytes = report.write_json(out, &doc);
    println!("server bench: wrote {out} ({bytes} bytes)");
    handle_a.stop().shutdown();
    handle_b.stop().shutdown();
    let _ = std::fs::remove_dir_all(&base);

    report.gate(all_identical, || {
        "a wire-produced report diverged from its direct run".to_owned()
    });
    report.gate(migrated_round > 0, || {
        "the migrated checkpoint was not mid-flight".to_owned()
    });
    report.gate(gone_from_a, || {
        "shard A still knows the migrated campaign".to_owned()
    });
    report.gate(status_p95_us <= MAX_STATUS_P95_US, || {
        format!("p95 status latency {status_p95_us}us exceeds {MAX_STATUS_P95_US}us")
    });
    report.finish()
}
