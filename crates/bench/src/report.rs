//! Shared `BENCH_*.json` writer and gate-exit plumbing for the bench
//! binaries.
//!
//! Every gated bench bin ends the same way: serialize a JSON document to
//! `BENCH_<name>.json`, evaluate a handful of pass/fail gates, print one
//! `<label> FAILED: <reason>` line per broken gate (or `<label>: OK`),
//! and exit non-zero when anything failed. [`BenchReport`] centralizes
//! that tail so the bins only state their gates.

use std::process::ExitCode;

use taopt_ui_model::Value;

/// Collects gate failures for one bench binary and turns them into the
/// process exit code.
#[derive(Debug)]
pub struct BenchReport {
    label: String,
    failures: Vec<String>,
}

impl BenchReport {
    /// A report for the bin labelled `label` (e.g. `"campaign bench"`);
    /// the label prefixes every failure line and the final OK line.
    pub fn new(label: impl Into<String>) -> Self {
        BenchReport {
            label: label.into(),
            failures: Vec::new(),
        }
    }

    /// Serializes `doc` to `path`, recording a failure if the write
    /// fails. Returns the bytes written (0 on failure) so callers can
    /// keep reporting the artifact size.
    pub fn write_json(&mut self, path: &str, doc: &Value) -> usize {
        let json = doc.to_json_string();
        match std::fs::write(path, &json) {
            Ok(()) => json.len(),
            Err(e) => {
                self.fail(format!("cannot write {path}: {e}"));
                0
            }
        }
    }

    /// Records a failure when `ok` is false; the message is built lazily.
    pub fn gate(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        if !ok {
            self.failures.push(msg());
        }
    }

    /// Records an unconditional failure.
    pub fn fail(&mut self, msg: impl Into<String>) {
        self.failures.push(msg.into());
    }

    /// Whether any gate has failed so far.
    pub fn is_failing(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Prints the verdict — `<label>: OK`, or one `<label> FAILED: ...`
    /// line per broken gate — and returns the matching exit code.
    pub fn finish(self) -> ExitCode {
        if self.failures.is_empty() {
            println!("{}: OK", self.label);
            ExitCode::SUCCESS
        } else {
            for f in &self.failures {
                eprintln!("{} FAILED: {f}", self.label);
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_succeeds() {
        let mut r = BenchReport::new("t");
        r.gate(true, || unreachable!("gate message built only on failure"));
        assert!(!r.is_failing());
        // ExitCode is opaque (no PartialEq); compare debug renderings.
        assert_eq!(
            format!("{:?}", r.finish()),
            format!("{:?}", ExitCode::SUCCESS)
        );
    }

    #[test]
    fn any_failed_gate_fails_the_exit() {
        let mut r = BenchReport::new("t");
        r.gate(false, || "broken".to_owned());
        r.fail("also broken");
        assert!(r.is_failing());
        assert_eq!(
            format!("{:?}", r.finish()),
            format!("{:?}", ExitCode::FAILURE)
        );
    }

    #[test]
    fn write_json_reports_bytes_and_records_io_failures() {
        let dir = std::env::temp_dir().join(format!("taopt-bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let mut r = BenchReport::new("t");
        let doc = Value::Object(vec![("x".to_owned(), Value::UInt(1))]);
        let n = r.write_json(path.to_str().unwrap(), &doc);
        assert_eq!(n, std::fs::read(&path).unwrap().len());
        assert!(!r.is_failing());
        // A directory path cannot be written as a file.
        assert_eq!(r.write_json(dir.to_str().unwrap(), &doc), 0);
        assert!(r.is_failing());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
