//! Microbenchmarks of TaOPT's core algorithms: FindSpace (Algorithm 1),
//! screen abstraction and tree similarity, conductance, offline
//! partitioning and the Theorem-1 sampler.

use std::collections::BTreeSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use taopt::conductance::conductance;
use taopt::findspace::{find_space_candidates, FindSpaceConfig, SimilarityCache};
use taopt::partition::{partition_graph, PartitionConfig};
use taopt::theorem::{separation_trial, CliquePairConfig};
use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::similarity::tree_similarity;
use taopt_ui_model::{Action, StochasticDigraph, Trace, VirtualDuration, VirtualTime};

/// Drives a Monkey-ish random walk to produce a realistic trace.
fn synthetic_trace(steps: usize, seed: u64) -> Trace {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let app = Arc::new(generate_app(&GeneratorConfig::small("bench", seed)).unwrap());
    let mut rt = AppRuntime::launch(app, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    let mut t = 0u64;
    for _ in 0..steps {
        let obs = rt.observe(VirtualTime::from_secs(t));
        let actions = obs.enabled_actions();
        let action = if rng.gen::<f64>() < 0.1 {
            Action::Back
        } else {
            actions
                .choose(&mut rng)
                .map(|(a, _)| Action::Widget(*a))
                .unwrap_or(Action::Back)
        };
        t += 2;
        let out = rt.execute(action, VirtualTime::from_secs(t)).unwrap();
        trace.push(taopt_ui_model::TraceEvent {
            time: out.observation.time,
            screen: out.observation.screen,
            activity: out.observation.activity,
            abstract_id: out.observation.abstract_id(),
            abstraction: out.observation.abstraction.clone(),
            action: Some(action),
            action_widget_rid: None,
        });
    }
    trace
}

fn bench_findspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("findspace");
    for steps in [200usize, 800, 2000] {
        let trace = synthetic_trace(steps, 7);
        let cfg = FindSpaceConfig {
            l_min: VirtualDuration::from_secs(60),
            ..FindSpaceConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("events", steps), &trace, |b, tr| {
            let cache = SimilarityCache::new();
            b.iter(|| find_space_candidates(tr.events(), &cfg, &cache, 1));
        });
    }
    group.finish();
}

fn bench_abstraction(c: &mut Criterion) {
    let app = Arc::new(generate_app(&GeneratorConfig::small("abs", 3)).unwrap());
    let hierarchy = app.render_screen(app.start_screen(), 1);
    c.bench_function("abstract_hierarchy", |b| {
        b.iter(|| abstract_hierarchy(&hierarchy))
    });
    let a = abstract_hierarchy(&hierarchy);
    let other = abstract_hierarchy(&app.render_screen(app.start_screen(), 2));
    c.bench_function("tree_similarity", |b| {
        b.iter(|| tree_similarity(&a, &other))
    });
}

fn bench_partitioning(c: &mut Criterion) {
    // 6 cliques of 20 nodes.
    let mut g = StochasticDigraph::new();
    for cl in 0..6u64 {
        let base = cl * 100;
        for i in 0..20u64 {
            for j in 0..20u64 {
                if i != j {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(base, (base + 100) % 600, 0.02).unwrap();
    }
    let g = g.normalized();
    let cfg = PartitionConfig {
        coupling_threshold: 0.01,
        min_cluster_size: 2,
    };
    c.bench_function("partition_graph_120_nodes", |b| {
        b.iter(|| partition_graph(&g, &cfg))
    });

    let a: BTreeSet<u64> = (0..20).collect();
    let bset: BTreeSet<u64> = (100..120).collect();
    c.bench_function("conductance", |b| b.iter(|| conductance(&g, &a, &bset)));
}

fn bench_theorem(c: &mut Criterion) {
    let cfg = CliquePairConfig { n: 8, alpha: 16.0 };
    c.bench_function("theorem1_trial_10k_samples", |b| {
        b.iter(|| separation_trial(&cfg, 10_000, 42))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_findspace, bench_abstraction, bench_partitioning, bench_theorem
}
criterion_main!(benches);
