//! One Criterion bench per paper artifact, each running the corresponding
//! experiment pipeline at a shrunk scale (the full-scale regenerations are
//! the `taopt-bench` binaries; see DESIGN.md for the index).
//!
//! * `bench_fig3`   — baseline sessions + AJS-over-time reduction
//! * `bench_table1` — offline partition + overlap histogram
//! * `bench_table2` — activity-partition vs baseline (WCTester)
//! * `bench_table4` — coverage matrix reduction (also Table 5's crashes)
//! * `bench_table5` — crash view of the matrix
//! * `bench_table6` — UI-occurrence overlap reduction
//! * `bench_fig5`   — duration-savings reduction
//! * `bench_fig6`   — machine-time-savings reduction
//! * `bench_sessions` — one quick session per run mode

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use taopt::experiments::{
    behavior_rows, evaluation_matrix, fig3_rows, run_and_summarize, savings_rows, table1_histogram,
    table2_rows, table4_rows, table5_rows, table6_rows, ExperimentScale, RunSummary,
};
use taopt::session::{ParallelSession, RunMode};
use taopt_app_sim::{catalog_entries, App};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        instances: 3,
        duration: VirtualDuration::from_mins(6),
        tick: VirtualDuration::from_secs(10),
        stall_timeout: VirtualDuration::from_secs(60),
        l_min_short: VirtualDuration::from_secs(40),
        l_min_long: VirtualDuration::from_secs(90),
        grid_points: 6,
    }
}

fn tiny_apps(n: usize) -> Vec<(String, Arc<App>)> {
    catalog_entries()
        .into_iter()
        .take(n)
        .map(|e| {
            let mut cfg = e.config();
            // Shrink the apps so a bench iteration stays subsecond.
            cfg.n_functionalities = 6;
            cfg.min_screens_per_functionality = 8;
            cfg.max_screens_per_functionality = 14;
            (
                e.name.to_owned(),
                Arc::new(taopt_app_sim::generate_app(&cfg).expect("valid config")),
            )
        })
        .collect()
}

/// The expensive shared step, built once outside the timing loops of the
/// reduction benches.
fn shared_matrix() -> (Vec<(String, Arc<App>)>, Vec<RunSummary>) {
    let apps = tiny_apps(2);
    let matrix = evaluation_matrix(&apps, &tiny_scale(), 11);
    (apps, matrix)
}

fn bench_pipelines(c: &mut Criterion) {
    let scale = tiny_scale();
    let (apps, matrix) = shared_matrix();

    c.bench_function("bench_fig3", |b| b.iter(|| fig3_rows(&matrix)));
    c.bench_function("bench_table1", |b| b.iter(|| table1_histogram(&matrix)));
    c.bench_function("bench_table4", |b| b.iter(|| table4_rows(&matrix)));
    c.bench_function("bench_table5", |b| b.iter(|| table5_rows(&matrix)));
    c.bench_function("bench_table6", |b| b.iter(|| table6_rows(&matrix)));
    c.bench_function("bench_fig5", |b| b.iter(|| savings_rows(&matrix, &scale)));
    c.bench_function("bench_fig6", |b| b.iter(|| savings_rows(&matrix, &scale)));
    c.bench_function("bench_behavior", |b| b.iter(|| behavior_rows(&matrix)));

    // Table 2 runs its own (small) sessions end to end.
    let one_app: Vec<_> = apps.iter().take(1).cloned().collect();
    c.bench_function("bench_table2", |b| {
        b.iter(|| table2_rows(&one_app, &scale, 5))
    });

    // End-to-end session + summarize per run mode (the matrix's unit of
    // work).
    let (name, app) = &apps[0];
    for mode in [
        RunMode::Baseline,
        RunMode::TaoptDuration,
        RunMode::TaoptResource,
    ] {
        c.bench_function(&format!("bench_session_{}", mode.label()), |b| {
            b.iter(|| run_and_summarize(name, Arc::clone(app), ToolKind::Monkey, mode, &scale, 3))
        });
    }

    // Raw session without summarization (scheduler + tools + enforcement).
    c.bench_function("bench_raw_session_quick", |b| {
        let cfg = scale.session_config(ToolKind::Ape, RunMode::TaoptDuration, 9);
        b.iter(|| ParallelSession::run(Arc::clone(app), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines
}
criterion_main!(benches);
