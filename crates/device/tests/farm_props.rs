//! Property tests: [`DeviceFarm`] invariants under arbitrary interleaved
//! allocate / deallocate / kill / time-advance sequences.
//!
//! These are the guarantees the chaos harness leans on — a fault schedule
//! may kill devices and refuse allocations in any order, and the farm's
//! accounting must never go wrong underneath it.

use proptest::prelude::*;

use taopt_device::{DeviceError, DeviceFarm, DeviceId};
use taopt_ui_model::{VirtualDuration, VirtualTime};

/// One scripted farm operation. Victim indexes select among currently
/// live (or previously killed) devices modulo the population size, so
/// every generated script is executable.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc,
    Dealloc(usize),
    Kill(usize),
    DeallocDead(usize),
    Advance(u64),
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        Just(Op::Alloc),
        (0usize..16).prop_map(Op::Dealloc),
        (0usize..16).prop_map(Op::Kill),
        (0usize..16).prop_map(Op::DeallocDead),
        (1u64..300).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn farm_invariants_hold_under_interleaving(
        capacity in 1usize..6,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut farm = DeviceFarm::new(capacity);
        let mut now = VirtualTime::ZERO;
        let mut live: Vec<DeviceId> = Vec::new();
        let mut dead: Vec<DeviceId> = Vec::new();
        let mut prev_consumed = VirtualDuration::ZERO;
        let mut prev_billed = 0.0f64;

        for op in ops {
            match op {
                Op::Alloc => match farm.allocate(now) {
                    Ok(id) => {
                        prop_assert!(!live.contains(&id), "fresh id");
                        prop_assert!(!dead.contains(&id), "ids never reused");
                        live.push(id);
                    }
                    Err(e) => {
                        prop_assert_eq!(e, DeviceError::NoCapacity { capacity });
                        prop_assert_eq!(live.len(), capacity, "refusal only at capacity");
                    }
                },
                Op::Dealloc(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    prop_assert_eq!(farm.deallocate(id, now), Ok(()));
                }
                Op::Kill(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    prop_assert!(farm.kill(id, now).is_ok());
                    dead.push(id);
                }
                Op::DeallocDead(i) if !dead.is_empty() => {
                    // Deallocating (or re-killing) an already-dead device
                    // is a clean, state-preserving error.
                    let id = dead[i % dead.len()];
                    let before = farm.consumed();
                    prop_assert_eq!(
                        farm.deallocate(id, now),
                        Err(DeviceError::DeviceLost(id))
                    );
                    prop_assert_eq!(farm.kill(id, now), Err(DeviceError::DeviceLost(id)));
                    prop_assert_eq!(farm.consumed(), before);
                }
                Op::Advance(secs) => {
                    now += VirtualDuration::from_secs(secs);
                }
                // Victim ops with nobody to victimize are no-ops.
                Op::Dealloc(_) | Op::Kill(_) | Op::DeallocDead(_) => {}
            }

            // Capacity is never exceeded, and the farm agrees with the
            // model about who is live.
            prop_assert!(farm.active_count() <= capacity);
            prop_assert_eq!(farm.active_count(), live.len());
            prop_assert_eq!(farm.lost_count(), dead.len());
            for id in &dead {
                prop_assert!(farm.is_lost(*id));
            }

            // Machine time and billing are monotone non-negative.
            let consumed = farm.consumed();
            let billed = farm.billed();
            prop_assert!(consumed >= prev_consumed, "consumed went backwards");
            prop_assert!(billed >= prev_billed, "billing went backwards");
            prop_assert!(billed >= 0.0);
            prev_consumed = consumed;
            prev_billed = billed;

            // Settled time never exceeds total time including live devices.
            prop_assert!(farm.consumed_as_of(now) >= consumed);
            prop_assert!(farm.billed_as_of(now) >= billed - 1e-9);
        }
    }
}
