//! Crash triage: aggregating crash occurrences across a fleet of devices
//! into ranked, deduplicated reports.
//!
//! The paper counts *unique* crashes (dedup by stack-trace code location);
//! a production testing cloud additionally needs the occurrence counts,
//! first-seen times and per-device distribution that testers triage by.
//! This module aggregates any number of per-device [`CrashCollector`]s
//! into a [`TriageReport`].

use std::collections::BTreeMap;

use taopt_ui_model::VirtualTime;

use taopt_app_sim::CrashSignature;

use crate::emulator::DeviceId;
use crate::logcat::CrashCollector;

/// Aggregated data about one unique crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashGroup {
    /// The dedup signature (stack-trace code location).
    pub signature: CrashSignature,
    /// Total occurrences across all devices.
    pub occurrences: usize,
    /// Earliest observation.
    pub first_seen: VirtualTime,
    /// Devices that reproduced the crash at least once.
    pub devices: Vec<DeviceId>,
}

impl CrashGroup {
    /// Whether more than one device independently reproduced the crash —
    /// a strong signal that it is not an environment flake.
    pub fn is_cross_device(&self) -> bool {
        self.devices.len() > 1
    }
}

/// A ranked triage report over one or many runs.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    groups: Vec<CrashGroup>,
}

impl TriageReport {
    /// Builds a report from per-device collectors.
    ///
    /// Groups are ranked by occurrence count (descending), ties broken by
    /// first-seen time (ascending) so reliably-reproducing early crashes
    /// float to the top.
    pub fn build<'a>(collectors: impl IntoIterator<Item = (DeviceId, &'a CrashCollector)>) -> Self {
        struct Agg {
            occurrences: usize,
            first_seen: VirtualTime,
            devices: Vec<DeviceId>,
        }
        let mut map: BTreeMap<CrashSignature, Agg> = BTreeMap::new();
        for (device, collector) in collectors {
            for (time, sig) in collector.occurrences() {
                let agg = map.entry(*sig).or_insert(Agg {
                    occurrences: 0,
                    first_seen: *time,
                    devices: Vec::new(),
                });
                agg.occurrences += 1;
                agg.first_seen = agg.first_seen.min(*time);
                if !agg.devices.contains(&device) {
                    agg.devices.push(device);
                }
            }
        }
        let mut groups: Vec<CrashGroup> = map
            .into_iter()
            .map(|(signature, a)| CrashGroup {
                signature,
                occurrences: a.occurrences,
                first_seen: a.first_seen,
                devices: a.devices,
            })
            .collect();
        groups.sort_by(|a, b| {
            b.occurrences
                .cmp(&a.occurrences)
                .then(a.first_seen.cmp(&b.first_seen))
                .then(a.signature.cmp(&b.signature))
        });
        TriageReport { groups }
    }

    /// The ranked groups.
    pub fn groups(&self) -> &[CrashGroup] {
        &self.groups
    }

    /// Number of unique crashes.
    pub fn unique_count(&self) -> usize {
        self.groups.len()
    }

    /// Total occurrences across all groups.
    pub fn occurrence_count(&self) -> usize {
        self.groups.iter().map(|g| g.occurrences).sum()
    }

    /// Renders a logcat-flavoured triage summary.
    pub fn render(&self, app_name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} unique crash(es), {} occurrence(s):",
            self.unique_count(),
            self.occurrence_count()
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "  {} x{} first at {} on {} device(s){}",
                g.signature,
                g.occurrences,
                g.first_seen,
                g.devices.len(),
                if g.is_cross_device() {
                    " [cross-device]"
                } else {
                    ""
                },
            );
            for line in g.signature.stack_trace(app_name).lines().take(2) {
                let _ = writeln!(out, "      {line}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector(entries: &[(u64, u64)]) -> CrashCollector {
        let mut c = CrashCollector::new();
        for (t, sig) in entries {
            c.record(VirtualTime::from_secs(*t), CrashSignature(*sig));
        }
        c
    }

    #[test]
    fn groups_rank_by_occurrences_then_recency() {
        let c0 = collector(&[(10, 1), (20, 1), (30, 2)]);
        let c1 = collector(&[(5, 2), (50, 1)]);
        let report = TriageReport::build([(DeviceId(0), &c0), (DeviceId(1), &c1)]);
        assert_eq!(report.unique_count(), 2);
        assert_eq!(report.occurrence_count(), 5);
        // Signature 1: 3 occurrences; signature 2: 2 — 1 ranks first.
        assert_eq!(report.groups()[0].signature, CrashSignature(1));
        assert_eq!(report.groups()[0].occurrences, 3);
        assert_eq!(report.groups()[1].first_seen, VirtualTime::from_secs(5));
    }

    #[test]
    fn cross_device_flag() {
        let c0 = collector(&[(1, 7)]);
        let c1 = collector(&[(2, 7)]);
        let report = TriageReport::build([(DeviceId(0), &c0), (DeviceId(1), &c1)]);
        assert!(report.groups()[0].is_cross_device());
        let solo = TriageReport::build([(DeviceId(0), &c0)]);
        assert!(!solo.groups()[0].is_cross_device());
    }

    #[test]
    fn render_mentions_every_group() {
        let c0 = collector(&[(1, 0xaa), (2, 0xbb)]);
        let report = TriageReport::build([(DeviceId(3), &c0)]);
        let text = report.render("Demo App");
        assert!(text.contains("2 unique crash(es)"));
        assert!(text.contains("crash#000000aa"));
        assert!(text.contains("crash#000000bb"));
        assert!(text.contains("FATAL EXCEPTION"));
    }

    #[test]
    fn empty_report() {
        let report = TriageReport::build(std::iter::empty());
        assert_eq!(report.unique_count(), 0);
        assert!(report.render("x").contains("0 unique"));
    }
}
