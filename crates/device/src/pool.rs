//! The device-pool seam: how session drivers obtain, lose and return
//! devices.
//!
//! Every driver in the reproduction — the plain serial session, the chaos
//! harness, the multi-app campaign scheduler — acquires capacity through
//! this trait instead of talking to [`DeviceFarm`] directly. A plain run
//! uses [`PlainPool`], a transparent passthrough; a chaos run wraps the
//! same farm in a fault-injecting pool (see `taopt-chaos`) that refuses
//! allocations, schedules device losses and keeps the fault log, **without
//! the driver loop changing shape**. That is the first of the three seam
//! layers (device / bus / enforcement) described in DESIGN.md §12.

use taopt_ui_model::{VirtualDuration, VirtualTime};

use crate::emulator::DeviceId;
use crate::farm::DeviceFarm;

/// Outcome of one allocation request against a pool.
///
/// Distinguishing *refusal* (a transient fault — retry later) from
/// *exhaustion* (the farm is genuinely full — stop asking this round) lets
/// drivers keep their grant loops tight without inspecting fault state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolDecision {
    /// A device was allocated.
    Granted(DeviceId),
    /// The pool transiently refused the request (injected fault); the
    /// caller may retry on a later round.
    Refused,
    /// No capacity remains; further requests this round are futile.
    Exhausted,
}

/// The device seam every session driver allocates through.
///
/// Implementations wrap a [`DeviceFarm`] and may interpose fault
/// decisions; the farm itself stays the single source of truth for
/// capacity, machine-time accounting and loss counts, exposed read-only
/// via [`DevicePool::farm`].
pub trait DevicePool: Send {
    /// Requests one device.
    fn allocate(&mut self, now: VirtualTime) -> PoolDecision;

    /// Returns a device after voluntary release (stall shrink, session
    /// finish). Lost devices must go through [`DevicePool::kill`] instead.
    fn release(&mut self, device: DeviceId, now: VirtualTime);

    /// Permanently removes a device (crash, revocation, injected loss).
    fn kill(&mut self, device: DeviceId, now: VirtualTime);

    /// Devices this pool decides to lose in the given round, in
    /// deterministic order. The caller is responsible for acting on the
    /// verdict ([`DevicePool::kill`] plus driver-side bookkeeping); this
    /// method only *decides*, so drivers keep kill handling uniform with
    /// externally-scheduled losses. A plain pool never loses anything.
    fn round_losses(&mut self, round: u64, now: VirtualTime) -> Vec<DeviceId>;

    /// Read-only view of the underlying farm for accounting.
    fn farm(&self) -> &DeviceFarm;

    /// Total slots.
    fn capacity(&self) -> usize {
        self.farm().capacity()
    }

    /// Currently allocated devices.
    fn active_count(&self) -> usize {
        self.farm().active_count()
    }

    /// High-water mark of concurrently allocated devices.
    fn peak_active(&self) -> usize {
        self.farm().peak_active()
    }

    /// Devices permanently lost so far.
    fn lost_count(&self) -> usize {
        self.farm().lost_count()
    }

    /// Machine time consumed by completed leases.
    fn consumed(&self) -> VirtualDuration {
        self.farm().consumed()
    }

    /// Machine time consumed including still-active leases, as of `now`.
    fn consumed_as_of(&self, now: VirtualTime) -> VirtualDuration {
        self.farm().consumed_as_of(now)
    }
}

/// The latency half of the device seam: per-round stall decisions for
/// the devices a session holds.
///
/// Latency spikes are a *device* fault, but they must be applied inside
/// the session round, where the emulator clocks live — so the decision
/// sits behind this trait (installed into the step's layer bundle) while
/// the allocation half of the seam ([`DevicePool`]) stays with the
/// driver. `lane` is a driver-scoped stream id (the instance id, offset
/// per app in a campaign) so decisions are deterministic and decorrelated
/// regardless of scheduling.
pub trait DeviceLatency: Send {
    /// Extra stall to apply to `lane`'s device in round `round`, if any.
    fn latency_spike(&self, lane: u32, round: u64, now: VirtualTime) -> Option<VirtualDuration>;
}

/// The plain wiring: devices never stall.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoLatency;

impl DeviceLatency for NoLatency {
    fn latency_spike(&self, _lane: u32, _round: u64, _now: VirtualTime) -> Option<VirtualDuration> {
        None
    }
}

/// The inert pool: a [`DeviceFarm`] with no fault behaviour. Allocation
/// failures map to [`PoolDecision::Exhausted`]; nothing is ever refused
/// and no losses are scheduled.
#[derive(Debug)]
pub struct PlainPool {
    farm: DeviceFarm,
}

impl PlainPool {
    /// A plain pool over a fresh farm of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        PlainPool {
            farm: DeviceFarm::new(capacity),
        }
    }

    /// Wraps an existing farm.
    pub fn with_farm(farm: DeviceFarm) -> Self {
        PlainPool { farm }
    }

    /// Consumes the pool, returning the farm for final accounting.
    pub fn into_farm(self) -> DeviceFarm {
        self.farm
    }
}

impl DevicePool for PlainPool {
    fn allocate(&mut self, now: VirtualTime) -> PoolDecision {
        match self.farm.allocate(now) {
            Ok(d) => PoolDecision::Granted(d),
            Err(_) => PoolDecision::Exhausted,
        }
    }

    fn release(&mut self, device: DeviceId, now: VirtualTime) {
        let _ = self.farm.deallocate(device, now);
    }

    fn kill(&mut self, device: DeviceId, now: VirtualTime) {
        let _ = self.farm.kill(device, now);
    }

    fn round_losses(&mut self, _round: u64, _now: VirtualTime) -> Vec<DeviceId> {
        Vec::new()
    }

    fn farm(&self) -> &DeviceFarm {
        &self.farm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_pool_grants_until_exhausted_and_never_refuses() {
        let mut pool = PlainPool::new(2);
        let now = VirtualTime::ZERO;
        let a = match pool.allocate(now) {
            PoolDecision::Granted(d) => d,
            other => panic!("expected grant, got {other:?}"),
        };
        assert!(matches!(pool.allocate(now), PoolDecision::Granted(_)));
        assert_eq!(pool.allocate(now), PoolDecision::Exhausted);
        assert_eq!(pool.active_count(), 2);
        pool.release(a, now + VirtualDuration::from_secs(10));
        assert!(matches!(
            pool.allocate(now + VirtualDuration::from_secs(10)),
            PoolDecision::Granted(_)
        ));
        assert!(pool.round_losses(1, now).is_empty());
        assert_eq!(pool.lost_count(), 0);
    }

    #[test]
    fn plain_pool_kill_reaches_the_farm() {
        let mut pool = PlainPool::new(1);
        let now = VirtualTime::ZERO;
        let d = match pool.allocate(now) {
            PoolDecision::Granted(d) => d,
            other => panic!("expected grant, got {other:?}"),
        };
        pool.kill(d, now + VirtualDuration::from_secs(5));
        assert_eq!(pool.lost_count(), 1);
        assert_eq!(pool.active_count(), 0);
        // The slot frees up again (the cloud replaces dead emulators) and
        // the replacement gets a fresh id.
        match pool.allocate(now + VirtualDuration::from_secs(5)) {
            PoolDecision::Granted(r) => assert_ne!(r, d),
            other => panic!("expected grant, got {other:?}"),
        }
    }
}
