//! One simulated emulator.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taopt_telemetry::{Counter, Histogram, Labels};
use taopt_ui_model::{Action, ScreenObservation, VirtualDuration, VirtualTime};

use taopt_app_sim::{App, AppRuntime, AppSimError, StepOutcome};

use crate::clock::VirtualClock;
use crate::coverage::CoverageTracer;
use crate::logcat::{CrashCollector, Logcat};

/// Identifier of one device in the farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Emulator timing/behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulatorConfig {
    /// Virtual time consumed by executing one tool action (event
    /// injection + app response + UI settle; roughly 1–2 s on real
    /// emulators).
    pub action_latency: VirtualDuration,
    /// Extra virtual time consumed when a crash restarts the app.
    pub crash_restart_latency: VirtualDuration,
    /// Probability that an injected event is *lost* (the tap lands but the
    /// app misses it — loaded devices and animation races do this on real
    /// hardware). A lost event consumes time and does nothing else.
    pub event_loss: f64,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            action_latency: VirtualDuration::from_millis(1500),
            crash_restart_latency: VirtualDuration::from_secs(8),
            event_loss: 0.0,
        }
    }
}

/// One simulated testing device: app runtime + clock + tracer + logcat.
#[derive(Debug, Clone)]
pub struct Emulator {
    id: DeviceId,
    config: EmulatorConfig,
    runtime: AppRuntime,
    clock: VirtualClock,
    coverage: CoverageTracer,
    logcat: Logcat,
    crashes: CrashCollector,
    flake_rng: StdRng,
    metrics: EmulatorMetrics,
}

/// Cached handles into the global metrics registry; fetched once at
/// boot so the per-action hot path is a few relaxed atomic ops.
#[derive(Debug, Clone)]
struct EmulatorMetrics {
    step_ns: Histogram,
    actions: Counter,
    crashes: Counter,
}

impl EmulatorMetrics {
    fn new() -> Self {
        let t = taopt_telemetry::global();
        EmulatorMetrics {
            step_ns: t.histogram_labeled("emulator_step_ns", Labels::seam("device")),
            actions: t.counter_labeled("emulator_actions_total", Labels::seam("device")),
            crashes: t.counter_labeled("emulator_crashes_total", Labels::seam("device")),
        }
    }
}

impl Emulator {
    /// Boots a device, installs the app, runs the auto-login script if the
    /// app is gated (paper §6.1), and records startup coverage.
    pub fn boot(id: DeviceId, app: Arc<App>, seed: u64, start: VirtualTime) -> Self {
        Emulator::boot_with(id, app, seed, start, EmulatorConfig::default())
    }

    /// [`Emulator::boot`] with explicit timing configuration.
    pub fn boot_with(
        id: DeviceId,
        app: Arc<App>,
        seed: u64,
        start: VirtualTime,
        config: EmulatorConfig,
    ) -> Self {
        let mut runtime = AppRuntime::launch(app.clone(), seed);
        let mut clock = VirtualClock::starting_at(start);
        let mut coverage = CoverageTracer::new();
        let mut logcat = Logcat::new();
        let startup: Vec<_> = app.startup_methods().to_vec();
        coverage.record(clock.now(), &startup);
        logcat.log(
            clock.now(),
            "ActivityManager",
            format!("Start proc {}", app.name()),
        );
        // Screen methods of the start screen were covered at launch.
        if let Some(s) = app.screen(runtime.current_screen()) {
            coverage.record(clock.now(), &s.methods);
        }
        if let Some(out) = runtime.auto_login(clock.now()) {
            clock.advance(config.action_latency);
            coverage.record(clock.now(), &out.newly_covered);
            logcat.log(clock.now(), "AutoLogin", "executed login script");
        }
        Emulator {
            id,
            config,
            runtime,
            clock,
            coverage,
            logcat,
            crashes: CrashCollector::new(),
            flake_rng: StdRng::seed_from_u64(seed ^ 0x00f1_a5e5),
            metrics: EmulatorMetrics::new(),
        }
    }

    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Current virtual time on this device.
    pub fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    /// The running app.
    pub fn app(&self) -> &Arc<App> {
        self.runtime.app()
    }

    /// Observes the current screen (free; does not advance time).
    pub fn observe(&mut self) -> ScreenObservation {
        self.runtime.observe(self.clock.now())
    }

    /// Executes a tool action: advances the clock, updates coverage and
    /// logcat, and returns the step outcome.
    ///
    /// # Errors
    ///
    /// Propagates [`AppSimError::ActionNotAvailable`] for widget actions
    /// the current screen does not define.
    pub fn execute(&mut self, action: Action) -> Result<StepOutcome, AppSimError> {
        let timer = self.metrics.step_ns.timer();
        self.metrics.actions.inc();
        self.clock.advance(self.config.action_latency);
        // Flaky event delivery: the event may be lost in flight.
        let action = if self.config.event_loss > 0.0
            && action.is_effective()
            && self.flake_rng.gen::<f64>() < self.config.event_loss
        {
            Action::Noop
        } else {
            action
        };
        let out = self.runtime.execute(action, self.clock.now())?;
        self.coverage.record(self.clock.now(), &out.newly_covered);
        if let Some(sig) = out.crash {
            self.clock.advance(self.config.crash_restart_latency);
            self.crashes.record(self.clock.now(), sig);
            self.metrics.crashes.inc();
            self.logcat.log(
                self.clock.now(),
                "AndroidRuntime",
                sig.stack_trace(self.runtime.app().name()),
            );
        }
        self.metrics.step_ns.stop(timer);
        Ok(out)
    }

    /// Coverage tracer.
    pub fn coverage(&self) -> &CoverageTracer {
        &self.coverage
    }

    /// Crash collector.
    pub fn crashes(&self) -> &CrashCollector {
        &self.crashes
    }

    /// Logcat buffer.
    pub fn logcat(&self) -> &Logcat {
        &self.logcat
    }

    /// Number of distinct screens visited.
    pub fn distinct_screens(&self) -> usize {
        self.runtime.visited_screens().len()
    }

    /// Advances the clock without an action (idle wait).
    pub fn idle(&mut self, d: VirtualDuration) {
        self.clock.advance(d);
    }

    /// Launches a specific screen directly, as `am start` launches an
    /// activity by Intent (used by ParaAim-style activity partitioning).
    /// Costs app-restart latency; records arrival coverage.
    pub fn jump_to(&mut self, screen: taopt_ui_model::ScreenId) -> ScreenObservation {
        self.clock.advance(self.config.crash_restart_latency);
        let newly = self.runtime.jump_to(screen);
        self.coverage.record(self.clock.now(), &newly);
        self.logcat.log(
            self.clock.now(),
            "ActivityManager",
            format!("START u0 {screen} (intent)"),
        );
        self.runtime.observe(self.clock.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    fn boot_small(login: bool) -> Emulator {
        let mut cfg = GeneratorConfig::small("emu", 42);
        cfg.login = login;
        let app = Arc::new(generate_app(&cfg).unwrap());
        Emulator::boot(DeviceId(0), app, 7, VirtualTime::ZERO)
    }

    #[test]
    fn boot_covers_startup_methods() {
        let e = boot_small(false);
        assert!(e.coverage().count() >= 60, "startup pool covered");
        assert_eq!(e.crashes().unique_crashes().len(), 0);
    }

    #[test]
    fn boot_auto_logs_in_gated_apps() {
        let mut e = boot_small(true);
        let obs = e.observe();
        // After auto-login the device is on the hub, which has tab actions.
        assert!(obs.enabled_actions().len() > 2);
        assert!(e.logcat().with_tag("AutoLogin").count() == 1);
    }

    #[test]
    fn execute_advances_clock_and_coverage() {
        let mut e = boot_small(false);
        let before_cov = e.coverage().count();
        let before_t = e.now();
        let (aid, _) = e.observe().enabled_actions()[0];
        let out = e.execute(Action::Widget(aid)).unwrap();
        assert!(e.now() > before_t);
        if out.transitioned {
            assert!(e.coverage().count() >= before_cov);
        }
    }

    #[test]
    fn event_loss_slows_but_does_not_break_testing() {
        let cfg = GeneratorConfig::small("flaky", 1);
        let app = Arc::new(generate_app(&cfg).unwrap());
        let run = |loss: f64, seed: u64| {
            let mut e = Emulator::boot_with(
                DeviceId(0),
                Arc::clone(&app),
                9,
                VirtualTime::ZERO,
                EmulatorConfig {
                    event_loss: loss,
                    ..EmulatorConfig::default()
                },
            );
            use rand::seq::SliceRandom;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..400 {
                let actions = e.observe().enabled_actions();
                let a = actions
                    .choose(&mut rng)
                    .map(|(id, _)| Action::Widget(*id))
                    .unwrap_or(Action::Back);
                e.execute(a).unwrap();
            }
            e.coverage().count()
        };
        // A single walk is noisy (losing events perturbs the whole
        // trajectory), so compare aggregates across seeds.
        let clean: usize = (0..6).map(|s| run(0.0, s)).sum();
        let flaky: usize = (0..6).map(|s| run(0.5, s)).sum();
        assert!(flaky > 0, "flaky device still makes progress");
        assert!(
            flaky < clean,
            "losing half the events cannot help on aggregate"
        );
    }

    #[test]
    fn idle_only_moves_time() {
        let mut e = boot_small(false);
        let cov = e.coverage().count();
        e.idle(VirtualDuration::from_secs(30));
        assert_eq!(e.coverage().count(), cov);
        assert_eq!(e.now(), VirtualTime::from_secs(30));
    }
}
