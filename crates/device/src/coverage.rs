//! Method-coverage tracing — the MiniTrace stand-in.
//!
//! The paper collects method coverage with MiniTrace, a DalvikVM/ART-level
//! tracer needing no app instrumentation (§6.1). Here the app runtime
//! reports covered methods directly; the tracer accumulates the per-device
//! covered set and a time-stamped growth curve, from which all coverage-
//! over-time analyses (RQ3/RQ4 savings, Fig. 3) are computed.

use std::collections::BTreeSet;

use taopt_ui_model::VirtualTime;

use taopt_app_sim::MethodId;

/// Accumulates covered methods and the coverage-growth timeline for one
/// testing instance.
#[derive(Debug, Clone, Default)]
pub struct CoverageTracer {
    covered: BTreeSet<MethodId>,
    timeline: Vec<(VirtualTime, usize)>,
}

impl CoverageTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records methods covered at `time`. Appends a timeline point only
    /// when the covered set grows.
    pub fn record(&mut self, time: VirtualTime, methods: &[MethodId]) {
        let before = self.covered.len();
        self.covered.extend(methods.iter().copied());
        if self.covered.len() != before {
            self.timeline.push((time, self.covered.len()));
        }
    }

    /// The covered method set.
    pub fn covered(&self) -> &BTreeSet<MethodId> {
        &self.covered
    }

    /// Number of covered methods.
    pub fn count(&self) -> usize {
        self.covered.len()
    }

    /// The (time, cumulative count) growth curve.
    pub fn timeline(&self) -> &[(VirtualTime, usize)] {
        &self.timeline
    }

    /// Covered-method count at (or before) a given time.
    pub fn count_at(&self, time: VirtualTime) -> usize {
        match self.timeline.binary_search_by(|(t, _)| t.cmp(&time)) {
            Ok(i) => self.timeline[i].1,
            Err(0) => 0,
            Err(i) => self.timeline[i - 1].1,
        }
    }

    /// Methods covered up to (and including) a given time.
    pub fn covered_at(&self, time: VirtualTime) -> BTreeSet<MethodId> {
        // The tracer does not keep per-method timestamps; callers needing
        // the exact set at a past instant should snapshot during the run.
        // This fallback returns the full set when `time` is at or past the
        // end of the timeline, or an empty set before the first point.
        if self
            .timeline
            .first()
            .map(|(t, _)| time < *t)
            .unwrap_or(true)
        {
            BTreeSet::new()
        } else {
            self.covered.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u32]) -> Vec<MethodId> {
        ids.iter().map(|i| MethodId(*i)).collect()
    }

    #[test]
    fn record_accumulates_and_dedupes() {
        let mut t = CoverageTracer::new();
        t.record(VirtualTime::from_secs(1), &m(&[1, 2]));
        t.record(VirtualTime::from_secs(2), &m(&[2, 3]));
        t.record(VirtualTime::from_secs(3), &m(&[3]));
        assert_eq!(t.count(), 3);
        assert_eq!(t.timeline().len(), 2, "no-growth steps add no points");
    }

    #[test]
    fn count_at_interpolates_stepwise() {
        let mut t = CoverageTracer::new();
        t.record(VirtualTime::from_secs(10), &m(&[1]));
        t.record(VirtualTime::from_secs(20), &m(&[2, 3]));
        assert_eq!(t.count_at(VirtualTime::from_secs(5)), 0);
        assert_eq!(t.count_at(VirtualTime::from_secs(10)), 1);
        assert_eq!(t.count_at(VirtualTime::from_secs(15)), 1);
        assert_eq!(t.count_at(VirtualTime::from_secs(25)), 3);
    }

    #[test]
    fn monotone_timeline() {
        let mut t = CoverageTracer::new();
        for i in 0..50 {
            t.record(VirtualTime::from_secs(i), &m(&[(i % 17) as u32]));
        }
        assert!(t
            .timeline()
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }
}
