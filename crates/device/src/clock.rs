//! Per-device virtual clock.

use taopt_ui_model::{VirtualDuration, VirtualTime};

/// A monotone virtual clock.
///
/// Each emulator owns one; the session coordinator advances devices in
/// lock-step rounds so that cross-device scheduling (entrypoint broadcast,
/// stall detection) observes a consistent global time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualClock {
    now: VirtualTime,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at the given time (e.g. a device allocated
    /// mid-session).
    pub fn starting_at(now: VirtualTime) -> Self {
        VirtualClock { now }
    }

    /// Current time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advances by `d` and returns the new time.
    pub fn advance(&mut self, d: VirtualDuration) -> VirtualTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to `t` (no-op if `t` is in the past).
    pub fn catch_up_to(&mut self, t: VirtualTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_is_cumulative() {
        let mut c = VirtualClock::new();
        c.advance(VirtualDuration::from_secs(2));
        let t = c.advance(VirtualDuration::from_secs(3));
        assert_eq!(t, VirtualTime::from_secs(5));
        assert_eq!(c.now(), t);
    }

    #[test]
    fn catch_up_never_rewinds() {
        let mut c = VirtualClock::starting_at(VirtualTime::from_secs(10));
        c.catch_up_to(VirtualTime::from_secs(5));
        assert_eq!(c.now(), VirtualTime::from_secs(10));
        c.catch_up_to(VirtualTime::from_secs(20));
        assert_eq!(c.now(), VirtualTime::from_secs(20));
    }
}
