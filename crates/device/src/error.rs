//! Error types for the simulated testing cloud.

use std::error::Error;
use std::fmt;

use crate::emulator::DeviceId;

/// Errors produced by device-farm and emulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The farm has no free device slots.
    NoCapacity {
        /// The configured capacity.
        capacity: usize,
    },
    /// A device id was referenced that is not currently allocated.
    UnknownDevice(DeviceId),
    /// The device was lost (killed by a fault) before this operation.
    DeviceLost(DeviceId),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoCapacity { capacity } => {
                write!(f, "device farm is at capacity ({capacity} devices)")
            }
            DeviceError::UnknownDevice(d) => write!(f, "device {d} is not allocated"),
            DeviceError::DeviceLost(d) => write!(f, "device {d} was lost mid-run"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DeviceError::NoCapacity { capacity: 5 }
            .to_string()
            .contains('5'));
        assert!(DeviceError::UnknownDevice(DeviceId(3))
            .to_string()
            .contains("dev3"));
    }
}
