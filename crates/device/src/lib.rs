//! Simulated testing cloud for the TaOPT reproduction.
//!
//! The paper runs Android x64 emulators on a many-core server and rents
//! capacity from "testing clouds" (AWS Device Farm etc.). This crate is the
//! synthetic counterpart:
//!
//! * [`Emulator`] — one device running one [`taopt_app_sim::AppRuntime`],
//!   with a per-device virtual clock, per-action latency, a
//!   [`CoverageTracer`] (the MiniTrace stand-in) and a [`Logcat`] buffer
//!   collecting crash stack traces;
//! * [`DeviceFarm`] — a bounded pool of devices with allocate/deallocate
//!   and machine-time accounting (the "testing resources" of RQ4);
//! * [`DevicePool`] — the device seam: the trait session drivers allocate
//!   through, so a fault-injecting pool can replace the plain one without
//!   the driver changing shape;
//! * [`CrashCollector`] — logcat-style unique-crash deduplication by stack
//!   signature.
//!
//! Virtual time makes hour-long parallel runs execute in milliseconds while
//! preserving every scheduling decision the paper's coordinator makes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod coverage;
pub mod emulator;
pub mod error;
pub mod farm;
pub mod logcat;
pub mod pool;
pub mod triage;

pub use clock::VirtualClock;
pub use coverage::CoverageTracer;
pub use emulator::{DeviceId, Emulator, EmulatorConfig};
pub use error::DeviceError;
pub use farm::{fair_targets, fair_targets_from, DeviceClass, DeviceFarm};
pub use logcat::{CrashCollector, LogEntry, Logcat};
pub use pool::{DeviceLatency, DevicePool, NoLatency, PlainPool, PoolDecision};
pub use triage::{CrashGroup, TriageReport};
