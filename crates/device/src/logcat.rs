//! Logcat-style logging and unique-crash collection.
//!
//! The paper obtains stack traces "by monitoring Android Logcat messages"
//! and identifies unique crashes by the code locations in the traces
//! (§6.1). The simulated equivalent records [`LogEntry`] lines per device
//! and deduplicates crashes by [`CrashSignature`].

use std::collections::BTreeSet;

use taopt_ui_model::VirtualTime;

use taopt_app_sim::CrashSignature;

/// One logcat line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Virtual timestamp.
    pub time: VirtualTime,
    /// Log tag (e.g. `AndroidRuntime`).
    pub tag: String,
    /// Message body.
    pub message: String,
}

/// An append-only logcat buffer for one device.
#[derive(Debug, Clone, Default)]
pub struct Logcat {
    entries: Vec<LogEntry>,
}

impl Logcat {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a line.
    pub fn log(&mut self, time: VirtualTime, tag: &str, message: impl Into<String>) {
        self.entries.push(LogEntry {
            time,
            tag: tag.to_owned(),
            message: message.into(),
        });
    }

    /// All lines in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Lines with the given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a LogEntry> {
        self.entries.iter().filter(move |e| e.tag == tag)
    }
}

/// Deduplicating crash collector.
#[derive(Debug, Clone, Default)]
pub struct CrashCollector {
    seen: BTreeSet<CrashSignature>,
    occurrences: Vec<(VirtualTime, CrashSignature)>,
}

impl CrashCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a crash; returns `true` if the signature is new.
    pub fn record(&mut self, time: VirtualTime, sig: CrashSignature) -> bool {
        self.occurrences.push((time, sig));
        self.seen.insert(sig)
    }

    /// Distinct crash signatures.
    pub fn unique_crashes(&self) -> &BTreeSet<CrashSignature> {
        &self.seen
    }

    /// Total crash occurrences (including duplicates).
    pub fn occurrence_count(&self) -> usize {
        self.occurrences.len()
    }

    /// All occurrences in order.
    pub fn occurrences(&self) -> &[(VirtualTime, CrashSignature)] {
        &self.occurrences
    }

    /// Merges another collector's unique crashes into this one (for
    /// computing per-run unions across instances).
    pub fn merge(&mut self, other: &CrashCollector) {
        self.seen.extend(other.seen.iter().copied());
        self.occurrences.extend(other.occurrences.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logcat_filters_by_tag() {
        let mut l = Logcat::new();
        l.log(VirtualTime::ZERO, "AndroidRuntime", "FATAL EXCEPTION");
        l.log(
            VirtualTime::from_secs(1),
            "ActivityManager",
            "Displayed ...",
        );
        assert_eq!(l.entries().len(), 2);
        assert_eq!(l.with_tag("AndroidRuntime").count(), 1);
    }

    #[test]
    fn collector_dedupes() {
        let mut c = CrashCollector::new();
        assert!(c.record(VirtualTime::ZERO, CrashSignature(1)));
        assert!(!c.record(VirtualTime::from_secs(1), CrashSignature(1)));
        assert!(c.record(VirtualTime::from_secs(2), CrashSignature(2)));
        assert_eq!(c.unique_crashes().len(), 2);
        assert_eq!(c.occurrence_count(), 3);
    }

    #[test]
    fn merge_unions() {
        let mut a = CrashCollector::new();
        a.record(VirtualTime::ZERO, CrashSignature(1));
        let mut b = CrashCollector::new();
        b.record(VirtualTime::ZERO, CrashSignature(1));
        b.record(VirtualTime::ZERO, CrashSignature(2));
        a.merge(&b);
        assert_eq!(a.unique_crashes().len(), 2);
        assert_eq!(a.occurrence_count(), 3);
    }
}
