//! The device farm — bounded capacity and machine-time accounting.

use std::collections::BTreeMap;

use taopt_telemetry::{Counter, Gauge, Labels};
use taopt_ui_model::{VirtualDuration, VirtualTime};

use crate::emulator::DeviceId;
use crate::error::DeviceError;

/// Cached handles into the global metrics registry (fetched once per
/// farm so the allocate/kill paths never take the registry lock).
#[derive(Debug, Clone)]
struct FarmMetrics {
    allocations: Counter,
    refusals: Counter,
    deallocations: Counter,
    kills: Counter,
    active: Gauge,
}

impl FarmMetrics {
    fn new() -> Self {
        let t = taopt_telemetry::global();
        FarmMetrics {
            allocations: t.counter_labeled("farm_allocations_total", Labels::seam("farm")),
            refusals: t.counter_labeled("farm_allocation_refusals_total", Labels::seam("farm")),
            deallocations: t.counter_labeled("farm_deallocations_total", Labels::seam("farm")),
            kills: t.counter_labeled("farm_kills_total", Labels::seam("farm")),
            active: t.gauge("farm_active_devices"),
        }
    }
}

/// The kind of device slot a testing cloud rents out.
///
/// Real devices cost several times an emulator's rate (the paper quotes
/// AWS Device Farm at $0.17 per device-*minute* for real hardware) and
/// respond slightly slower; emulators are the default for scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DeviceClass {
    /// An x86 emulator slot (the paper's test platform).
    #[default]
    Emulator,
    /// A physical device slot.
    RealDevice,
}

impl DeviceClass {
    /// Billing rate in dollars per device-minute.
    pub fn dollars_per_minute(&self) -> f64 {
        match self {
            DeviceClass::Emulator => 0.05,
            DeviceClass::RealDevice => 0.17,
        }
    }
}

/// A pool of device slots with allocate/deallocate and machine-time
/// accounting.
///
/// Machine time — the sum over devices of (deallocation − allocation) —
/// is the paper's "testing resources" metric (RQ4). The farm itself holds
/// no emulators; the session layer pairs allocated [`DeviceId`]s with
/// [`crate::Emulator`] values.
#[derive(Debug, Clone)]
pub struct DeviceFarm {
    capacity: usize,
    next_id: u32,
    active: BTreeMap<DeviceId, (VirtualTime, DeviceClass)>,
    lost: std::collections::BTreeSet<DeviceId>,
    consumed: VirtualDuration,
    billed: f64,
    peak_active: usize,
    metrics: FarmMetrics,
}

impl DeviceFarm {
    /// Creates a farm with the given number of device slots.
    pub fn new(capacity: usize) -> Self {
        DeviceFarm {
            capacity,
            next_id: 0,
            active: BTreeMap::new(),
            lost: std::collections::BTreeSet::new(),
            consumed: VirtualDuration::ZERO,
            billed: 0.0,
            peak_active: 0,
            metrics: FarmMetrics::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently allocated devices.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// High-water mark of simultaneously allocated devices. A shared-farm
    /// campaign asserts this never exceeds [`DeviceFarm::capacity`].
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Currently allocated device ids.
    pub fn active_devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.active.keys().copied()
    }

    /// Allocates an emulator slot at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoCapacity`] when all slots are taken.
    pub fn allocate(&mut self, now: VirtualTime) -> Result<DeviceId, DeviceError> {
        self.allocate_class(DeviceClass::Emulator, now)
    }

    /// Allocates a slot of the given class at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoCapacity`] when all slots are taken.
    pub fn allocate_class(
        &mut self,
        class: DeviceClass,
        now: VirtualTime,
    ) -> Result<DeviceId, DeviceError> {
        if self.active.len() >= self.capacity {
            self.metrics.refusals.inc();
            return Err(DeviceError::NoCapacity {
                capacity: self.capacity,
            });
        }
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.active.insert(id, (now, class));
        self.peak_active = self.peak_active.max(self.active.len());
        self.metrics.allocations.inc();
        self.metrics.active.set(self.active.len() as i64);
        Ok(id)
    }

    /// The class of an active device.
    pub fn class_of(&self, id: DeviceId) -> Option<DeviceClass> {
        self.active.get(&id).map(|(_, c)| *c)
    }

    /// Deallocates a device at `now`, charging its machine time.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DeviceLost`] if the device was killed by a
    /// fault (the slot was already settled), [`DeviceError::UnknownDevice`]
    /// if the id was never allocated.
    pub fn deallocate(&mut self, id: DeviceId, now: VirtualTime) -> Result<(), DeviceError> {
        let Some((allocated_at, class)) = self.active.remove(&id) else {
            return Err(if self.lost.contains(&id) {
                DeviceError::DeviceLost(id)
            } else {
                DeviceError::UnknownDevice(id)
            });
        };
        let used = now.since(allocated_at);
        self.consumed += used;
        self.billed += used.as_secs() as f64 / 60.0 * class.dollars_per_minute();
        self.metrics.deallocations.inc();
        self.metrics.active.set(self.active.len() as i64);
        Ok(())
    }

    /// Kills an active device at `now` (fault injection: the emulator died
    /// or the farm revoked the slot). The slot frees up and the machine
    /// time used until the loss is still charged — clouds bill for the
    /// session, not for a happy ending. Returns the time the device ran.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DeviceLost`] if the device is already dead,
    /// [`DeviceError::UnknownDevice`] if the id was never allocated.
    pub fn kill(&mut self, id: DeviceId, now: VirtualTime) -> Result<VirtualDuration, DeviceError> {
        let Some((allocated_at, class)) = self.active.remove(&id) else {
            return Err(if self.lost.contains(&id) {
                DeviceError::DeviceLost(id)
            } else {
                DeviceError::UnknownDevice(id)
            });
        };
        let used = now.since(allocated_at);
        self.consumed += used;
        self.billed += used.as_secs() as f64 / 60.0 * class.dollars_per_minute();
        self.lost.insert(id);
        self.metrics.kills.inc();
        self.metrics.active.set(self.active.len() as i64);
        Ok(used)
    }

    /// Devices lost to faults so far.
    pub fn lost_count(&self) -> usize {
        self.lost.len()
    }

    /// Whether a device was lost to a fault.
    pub fn is_lost(&self, id: DeviceId) -> bool {
        self.lost.contains(&id)
    }

    /// Machine time consumed by *deallocated* devices so far.
    pub fn consumed(&self) -> VirtualDuration {
        self.consumed
    }

    /// Machine time consumed including still-running devices, as of `now`.
    pub fn consumed_as_of(&self, now: VirtualTime) -> VirtualDuration {
        let running: u64 = self
            .active
            .values()
            .map(|(t, _)| now.since(*t).as_millis())
            .sum();
        self.consumed + VirtualDuration::from_millis(running)
    }

    /// Dollars billed for *deallocated* devices so far.
    pub fn billed(&self) -> f64 {
        self.billed
    }

    /// Dollars billed including still-running devices, as of `now`.
    pub fn billed_as_of(&self, now: VirtualTime) -> f64 {
        let running: f64 = self
            .active
            .values()
            .map(|(t, c)| now.since(*t).as_secs() as f64 / 60.0 * c.dollars_per_minute())
            .sum();
        self.billed + running
    }
}

/// Max-min fair device targets: water-fill `capacity` slots across
/// `wants`, one slot per pass, skipping tenants already at their want.
///
/// Equivalent to [`fair_targets_from`] starting at index 0.
pub fn fair_targets(capacity: usize, wants: &[usize]) -> Vec<usize> {
    fair_targets_from(capacity, wants, 0)
}

/// Max-min fair device targets with a rotating start index.
///
/// Water-fills `capacity` slots across `wants` round-robin beginning at
/// `start % wants.len()`. With fewer slots than tenants, a fixed start
/// would hand the remainder to the same low indices every round and
/// permanently starve the tail; callers rotate `start` (e.g. by round
/// number) so the remainder cycles across all tenants.
pub fn fair_targets_from(capacity: usize, wants: &[usize], start: usize) -> Vec<usize> {
    let n = wants.len();
    let mut targets = vec![0usize; n];
    if n == 0 {
        return targets;
    }
    let mut left = capacity.min(wants.iter().sum());
    while left > 0 {
        let mut gave = false;
        for k in 0..n {
            if left == 0 {
                break;
            }
            let i = (start + k) % n;
            if targets[i] < wants[i] {
                targets[i] += 1;
                left -= 1;
                gave = true;
            }
        }
        if !gave {
            break;
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_active_tracks_high_water_mark() {
        let mut farm = DeviceFarm::new(3);
        let a = farm.allocate(VirtualTime::ZERO).unwrap();
        let b = farm.allocate(VirtualTime::ZERO).unwrap();
        farm.deallocate(a, VirtualTime::from_secs(1)).unwrap();
        farm.kill(b, VirtualTime::from_secs(1)).unwrap();
        farm.allocate(VirtualTime::from_secs(2)).unwrap();
        assert_eq!(farm.peak_active(), 2, "peak was two concurrent devices");
    }

    #[test]
    fn fair_targets_water_fills() {
        // Plenty of capacity: everyone gets their want.
        assert_eq!(fair_targets(10, &[2, 3, 1]), vec![2, 3, 1]);
        // Contended: equal shares first, remainder from the start index.
        assert_eq!(fair_targets(4, &[3, 3, 3]), vec![2, 1, 1]);
        assert_eq!(fair_targets_from(4, &[3, 3, 3], 1), vec![1, 2, 1]);
        assert_eq!(fair_targets_from(4, &[3, 3, 3], 2), vec![1, 1, 2]);
        // Zero wants never receive a target.
        assert_eq!(fair_targets(5, &[0, 4, 0]), vec![0, 4, 0]);
        // Fewer slots than tenants: the remainder rotates with start.
        assert_eq!(fair_targets_from(1, &[1, 1, 1], 0), vec![1, 0, 0]);
        assert_eq!(fair_targets_from(1, &[1, 1, 1], 1), vec![0, 1, 0]);
        assert_eq!(fair_targets_from(1, &[1, 1, 1], 2), vec![0, 0, 1]);
        assert_eq!(fair_targets(0, &[5, 5]), vec![0, 0]);
        assert!(fair_targets(3, &[]).is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut farm = DeviceFarm::new(2);
        farm.allocate(VirtualTime::ZERO).unwrap();
        farm.allocate(VirtualTime::ZERO).unwrap();
        assert_eq!(
            farm.allocate(VirtualTime::ZERO),
            Err(DeviceError::NoCapacity { capacity: 2 })
        );
        assert_eq!(farm.active_count(), 2);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut farm = DeviceFarm::new(1);
        let a = farm.allocate(VirtualTime::ZERO).unwrap();
        farm.deallocate(a, VirtualTime::from_secs(1)).unwrap();
        let b = farm.allocate(VirtualTime::from_secs(1)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn machine_time_accounting() {
        let mut farm = DeviceFarm::new(3);
        let a = farm.allocate(VirtualTime::ZERO).unwrap();
        let b = farm.allocate(VirtualTime::from_secs(10)).unwrap();
        farm.deallocate(a, VirtualTime::from_secs(60)).unwrap();
        assert_eq!(farm.consumed(), VirtualDuration::from_secs(60));
        // b still running: 50s as of t=60.
        assert_eq!(
            farm.consumed_as_of(VirtualTime::from_secs(60)),
            VirtualDuration::from_secs(110)
        );
        farm.deallocate(b, VirtualTime::from_secs(70)).unwrap();
        assert_eq!(farm.consumed(), VirtualDuration::from_secs(120));
    }

    #[test]
    fn billing_tracks_device_classes() {
        let mut farm = DeviceFarm::new(2);
        let emu = farm
            .allocate_class(DeviceClass::Emulator, VirtualTime::ZERO)
            .unwrap();
        let real = farm
            .allocate_class(DeviceClass::RealDevice, VirtualTime::ZERO)
            .unwrap();
        assert_eq!(farm.class_of(emu), Some(DeviceClass::Emulator));
        assert_eq!(farm.class_of(real), Some(DeviceClass::RealDevice));
        let t = VirtualTime::from_secs(600); // 10 minutes each
        assert!((farm.billed_as_of(t) - (10.0 * 0.05 + 10.0 * 0.17)).abs() < 1e-9);
        farm.deallocate(emu, t).unwrap();
        farm.deallocate(real, t).unwrap();
        assert!((farm.billed() - 2.2).abs() < 1e-9);
        assert_eq!(farm.class_of(emu), None);
    }

    #[test]
    fn real_devices_cost_more() {
        assert!(
            DeviceClass::RealDevice.dollars_per_minute()
                > 3.0 * DeviceClass::Emulator.dollars_per_minute()
        );
    }

    #[test]
    fn deallocate_unknown_errors() {
        let mut farm = DeviceFarm::new(1);
        assert_eq!(
            farm.deallocate(DeviceId(9), VirtualTime::ZERO),
            Err(DeviceError::UnknownDevice(DeviceId(9)))
        );
    }

    #[test]
    fn killed_devices_free_the_slot_but_stay_billed() {
        let mut farm = DeviceFarm::new(1);
        let a = farm.allocate(VirtualTime::ZERO).unwrap();
        let used = farm.kill(a, VirtualTime::from_secs(120)).unwrap();
        assert_eq!(used, VirtualDuration::from_secs(120));
        assert_eq!(farm.consumed(), VirtualDuration::from_secs(120));
        assert!(farm.billed() > 0.0, "lost machine time is still billed");
        assert_eq!(farm.lost_count(), 1);
        assert!(farm.is_lost(a));
        // The slot is free again.
        let b = farm.allocate(VirtualTime::from_secs(120)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dead_devices_reject_further_operations_cleanly() {
        let mut farm = DeviceFarm::new(2);
        let a = farm.allocate(VirtualTime::ZERO).unwrap();
        farm.kill(a, VirtualTime::from_secs(5)).unwrap();
        assert_eq!(
            farm.deallocate(a, VirtualTime::from_secs(6)),
            Err(DeviceError::DeviceLost(a))
        );
        assert_eq!(
            farm.kill(a, VirtualTime::from_secs(6)),
            Err(DeviceError::DeviceLost(a))
        );
        // Never-allocated ids are still UnknownDevice, not DeviceLost.
        assert_eq!(
            farm.kill(DeviceId(77), VirtualTime::ZERO),
            Err(DeviceError::UnknownDevice(DeviceId(77)))
        );
        // Consumed time unchanged by the failed operations.
        assert_eq!(farm.consumed(), VirtualDuration::from_secs(5));
    }
}
