//! Badge — multi-armed-bandit event prioritization (extension tool).
//!
//! The paper evaluates three tools but cites Badge (Ran et al., ICSE'23),
//! which "prioritizes UI events with hierarchical multi-armed bandits…
//! balancing between exploiting known promising paths and exploring new UI
//! states" (§9). This reimplementation treats each (abstract screen,
//! action) pair as a bandit arm whose reward is *novelty* — whether firing
//! it produced a screen not seen before — and selects arms by UCB1.
//!
//! Badge is **not** part of the paper's evaluation matrix; it exists to
//! demonstrate TaOPT's tool-agnosticism on a fourth, unseen exploration
//! policy (see the `extended_tools` harness binary).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{AbstractScreenId, Action, ActionId, ScreenObservation};

use crate::tool::TestingTool;

/// UCB exploration constant.
const UCB_C: f64 = 1.2;
/// Probability of pressing Back to diversify walks.
const BACK_PROB: f64 = 0.05;

#[derive(Debug, Default, Clone, Copy)]
struct Arm {
    pulls: u32,
    reward: f64,
}

impl Arm {
    fn ucb(&self, total_pulls: u32) -> f64 {
        if self.pulls == 0 {
            return f64::MAX;
        }
        let mean = self.reward / self.pulls as f64;
        mean + UCB_C * ((total_pulls.max(2) as f64).ln() / self.pulls as f64).sqrt()
    }
}

/// A Badge-style bandit explorer.
#[derive(Debug)]
pub struct Badge {
    rng: StdRng,
    arms: HashMap<(AbstractScreenId, ActionId), Arm>,
    state_pulls: HashMap<AbstractScreenId, u32>,
    seen_states: HashSet<AbstractScreenId>,
    last_arm: Option<(AbstractScreenId, ActionId)>,
}

impl Badge {
    /// Creates a Badge instance with the given random seed.
    pub fn new(seed: u64) -> Self {
        Badge {
            rng: StdRng::seed_from_u64(seed),
            arms: HashMap::new(),
            state_pulls: HashMap::new(),
            seen_states: HashSet::new(),
            last_arm: None,
        }
    }

    /// Number of distinct abstract states observed.
    pub fn states_seen(&self) -> usize {
        self.seen_states.len()
    }
}

impl TestingTool for Badge {
    fn name(&self) -> &'static str {
        "Badge"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        let state = obs.abstract_id();
        self.seen_states.insert(state);
        if self.rng.gen::<f64>() < BACK_PROB {
            self.last_arm = None;
            return Action::Back;
        }
        let enabled = obs.enabled_actions();
        if enabled.is_empty() {
            self.last_arm = None;
            return Action::Back;
        }
        let total = self.state_pulls.get(&state).copied().unwrap_or(0);
        // Select the highest-UCB arm; break ties uniformly among the
        // untried arms so seeds diversify the first sweep.
        let untried: Vec<ActionId> = enabled
            .iter()
            .map(|(a, _)| *a)
            .filter(|a| !self.arms.contains_key(&(state, *a)))
            .collect();
        let pick = if let Some(a) = untried.choose(&mut self.rng) {
            *a
        } else {
            let mut best = enabled[0].0;
            let mut best_ucb = f64::MIN;
            for (a, _) in &enabled {
                let ucb = self
                    .arms
                    .get(&(state, *a))
                    .copied()
                    .unwrap_or_default()
                    .ucb(total);
                if ucb > best_ucb {
                    best_ucb = ucb;
                    best = *a;
                }
            }
            best
        };
        self.last_arm = Some((state, pick));
        Action::Widget(pick)
    }

    fn on_transition(&mut self, from: AbstractScreenId, action: Action, to: &ScreenObservation) {
        let novel = self.seen_states.insert(to.abstract_id());
        if let (Some((state, arm_action)), Action::Widget(fired)) = (self.last_arm, action) {
            if state == from && arm_action == fired {
                let arm = self.arms.entry((state, arm_action)).or_default();
                arm.pulls += 1;
                if novel {
                    arm.reward += 1.0;
                }
                *self.state_pulls.entry(state).or_insert(0) += 1;
            }
        }
        self.last_arm = None;
    }

    fn on_crash(&mut self) {
        self.last_arm = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
    use taopt_ui_model::VirtualTime;

    fn drive(seed: u64, steps: usize) -> (Badge, AppRuntime) {
        let app = Arc::new(generate_app(&GeneratorConfig::small("badge", 4)).unwrap());
        let mut rt = AppRuntime::launch(app, seed);
        let mut tool = Badge::new(seed);
        let mut t = 0u64;
        for _ in 0..steps {
            let obs = rt.observe(VirtualTime::from_secs(t));
            let from = obs.abstract_id();
            let a = tool.next_action(&obs);
            t += 1;
            if let Ok(out) = rt.execute(a, VirtualTime::from_secs(t)) {
                tool.on_transition(from, a, &out.observation);
                if out.crash.is_some() {
                    tool.on_crash();
                }
            }
        }
        (tool, rt)
    }

    #[test]
    fn untried_arms_have_infinite_ucb() {
        let arm = Arm::default();
        assert_eq!(arm.ucb(100), f64::MAX);
        let pulled = Arm {
            pulls: 10,
            reward: 5.0,
        };
        assert!(pulled.ucb(100) > 0.5);
        assert!(pulled.ucb(100) < f64::MAX);
    }

    #[test]
    fn explores_a_decent_share_of_the_app() {
        let (tool, rt) = drive(1, 500);
        let total = rt.app().screen_count();
        let visited = rt.visited_screens().len();
        assert!(
            visited * 2 >= total,
            "Badge visited {visited}/{total} in 500 steps"
        );
        assert!(tool.states_seen() >= visited / 2);
    }

    #[test]
    fn rewards_accumulate_on_novelty() {
        let (tool, _) = drive(2, 300);
        let rewarded = tool.arms.values().filter(|a| a.reward > 0.0).count();
        assert!(rewarded > 5, "only {rewarded} rewarded arms");
        // Rewards never exceed pulls.
        for arm in tool.arms.values() {
            assert!(arm.reward <= arm.pulls as f64);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, ra) = drive(9, 200);
        let (b, rb) = drive(9, 200);
        assert_eq!(a.states_seen(), b.states_seen());
        assert_eq!(ra.visited_screens(), rb.visited_screens());
    }
}
