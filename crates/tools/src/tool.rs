//! The tool abstraction.

use std::fmt;

use taopt_ui_model::{AbstractScreenId, Action, ScreenObservation};

use crate::ape::Ape;
use crate::badge::Badge;
use crate::monkey::Monkey;
use crate::wctester::WcTester;

/// An automated UI test-generation tool, as a black box.
///
/// The contract mirrors how real tools interact with a device: observe the
/// current (possibly enforcement-filtered) screen, emit one input event,
/// optionally learn from the resulting transition. TaOPT never calls into
/// this trait — it only watches the transitions the tool causes.
pub trait TestingTool: fmt::Debug + Send {
    /// Tool name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the next input given the current screen.
    fn next_action(&mut self, obs: &ScreenObservation) -> Action;

    /// Feedback after executing an action: the abstract state it was fired
    /// in and the observation that resulted. Model-based tools learn from
    /// this; random tools ignore it.
    fn on_transition(&mut self, from: AbstractScreenId, action: Action, to: &ScreenObservation) {
        let _ = (from, action, to);
    }

    /// Notification that the app crashed and was restarted.
    fn on_crash(&mut self) {}
}

/// The tools available to the harness. The paper evaluates the first
/// three; [`ToolKind::Badge`] is an extension demonstrating generality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolKind {
    /// Android Monkey (random).
    Monkey,
    /// Ape (model-based).
    Ape,
    /// WCTester (activity-transition prioritizing).
    WcTester,
    /// Badge (bandit-prioritized; extension, not in the paper's matrix).
    Badge,
}

impl ToolKind {
    /// The paper's three tools, in its reporting order.
    pub const ALL: [ToolKind; 3] = [ToolKind::Monkey, ToolKind::Ape, ToolKind::WcTester];

    /// All tools including extensions.
    pub const EXTENDED: [ToolKind; 4] = [
        ToolKind::Monkey,
        ToolKind::Ape,
        ToolKind::WcTester,
        ToolKind::Badge,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ToolKind::Monkey => "Monkey",
            ToolKind::Ape => "Ape",
            ToolKind::WcTester => "WCTester",
            ToolKind::Badge => "Badge",
        }
    }

    /// Instantiates the tool with a per-instance random seed.
    pub fn build(&self, seed: u64) -> Box<dyn TestingTool> {
        match self {
            ToolKind::Monkey => Box::new(Monkey::new(seed)),
            ToolKind::Ape => Box::new(Ape::new(seed)),
            ToolKind::WcTester => Box::new(WcTester::new(seed)),
            ToolKind::Badge => Box::new(Badge::new(seed)),
        }
    }
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_the_named_tool() {
        for kind in ToolKind::EXTENDED {
            let tool = kind.build(1);
            assert_eq!(tool.name(), kind.name());
        }
    }

    #[test]
    fn trait_is_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let tool: Box<dyn TestingTool> = ToolKind::Monkey.build(0);
        assert_send(&tool);
    }
}
