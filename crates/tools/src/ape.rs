//! Ape — model-based exploration with abstraction and refinement.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{AbstractScreenId, Action, ActionId, ScreenObservation};

use crate::tool::TestingTool;

/// Exploration noise: probability of a uniformly random choice instead of
/// the model-guided action.
const EPSILON: f64 = 0.05;
/// Exploitation mix: probability of re-exercising an already-tried action
/// instead of chasing the frontier (the real Ape balances refinement of
/// its model against expansion, and its state abstraction is imperfect,
/// so it re-executes known actions regularly).
const EXPLOIT_PROB: f64 = 0.25;
/// Maximum planned path length towards a frontier state.
const MAX_PLAN: usize = 5;

#[derive(Debug, Default, Clone)]
struct ActionStats {
    tries: u32,
    /// Observed successor states and counts.
    outcomes: HashMap<AbstractScreenId, u32>,
}

impl ActionStats {
    /// The most frequently observed successor (ties broken by id for
    /// determinism).
    fn likely_successor(&self) -> Option<AbstractScreenId> {
        self.outcomes
            .iter()
            .max_by_key(|(s, c)| (**c, *s))
            .map(|(s, _)| *s)
    }
}

#[derive(Debug, Default, Clone)]
struct StateModel {
    visits: u32,
    /// Actions seen enabled on this state (last observation wins).
    known_actions: Vec<ActionId>,
    actions: HashMap<ActionId, ActionStats>,
}

impl StateModel {
    fn has_frontier(&self) -> bool {
        self.known_actions
            .iter()
            .any(|a| self.actions.get(a).map(|s| s.tries == 0).unwrap_or(true))
    }
}

/// A reimplementation of Ape's model-based strategy (Gu et al., ICSE'19).
///
/// Ape dynamically builds a finite-state model over *abstract* UI states
/// and steers exploration towards the **frontier**: unexecuted actions
/// first, and when the current state is exhausted, a model-guided walk
/// (shortest path over learned transitions) towards the nearest state that
/// still has unexecuted actions.
///
/// The policy is nearly deterministic given the same app: two Ape
/// instances with different seeds chase the same frontier in nearly the
/// same order — which is exactly why the paper finds Ape suffers the
/// *most* from overlapping explorations in uncoordinated parallel runs
/// (§3.2, Fig. 3) and benefits the most from TaOPT (Table 6).
#[derive(Debug)]
pub struct Ape {
    rng: StdRng,
    model: HashMap<AbstractScreenId, StateModel>,
    /// Planned action path towards a frontier state.
    plan: VecDeque<Action>,
    planned_for: Option<AbstractScreenId>,
}

impl Ape {
    /// Creates an Ape instance with the given random seed.
    pub fn new(seed: u64) -> Self {
        Ape {
            rng: StdRng::seed_from_u64(seed),
            model: HashMap::new(),
            plan: VecDeque::new(),
            planned_for: None,
        }
    }

    /// Number of abstract states in the learned model.
    pub fn model_size(&self) -> usize {
        self.model.len()
    }

    /// BFS over the learned model from `start` to any state with frontier
    /// actions; returns the first action of the path.
    fn plan_to_frontier(&self, start: AbstractScreenId) -> Option<Vec<Action>> {
        let mut queue = VecDeque::new();
        let mut seen = HashSet::new();
        queue.push_back((start, Vec::new()));
        seen.insert(start);
        while let Some((state, path)) = queue.pop_front() {
            if state != start {
                if let Some(m) = self.model.get(&state) {
                    if m.has_frontier() {
                        return Some(path);
                    }
                }
            }
            if path.len() >= MAX_PLAN {
                continue;
            }
            if let Some(m) = self.model.get(&state) {
                // Deterministic expansion order (HashMap iteration order
                // would otherwise leak OS entropy into the tool's policy).
                let mut actions: Vec<(&ActionId, &ActionStats)> = m.actions.iter().collect();
                actions.sort_by_key(|(aid, _)| **aid);
                for (aid, stats) in actions {
                    if let Some(succ) = stats.likely_successor() {
                        if seen.insert(succ) {
                            let mut p = path.clone();
                            p.push(Action::Widget(*aid));
                            queue.push_back((succ, p));
                        }
                    }
                }
            }
        }
        None
    }
}

impl TestingTool for Ape {
    fn name(&self) -> &'static str {
        "Ape"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        let state_id = obs.abstract_id();
        let enabled = obs.enabled_actions();
        if enabled.is_empty() {
            self.plan.clear();
            return Action::Back;
        }
        // Register/update the state.
        {
            let state = self.model.entry(state_id).or_default();
            state.visits += 1;
            state.known_actions = enabled.iter().map(|(a, _)| *a).collect();
        }
        // ε-greedy noise.
        if self.rng.gen::<f64>() < EPSILON {
            self.plan.clear();
            let (id, _) = enabled.choose(&mut self.rng).expect("nonempty");
            return Action::Widget(*id);
        }
        // Exploitation/refinement mix.
        if self.rng.gen::<f64>() < EXPLOIT_PROB {
            self.plan.clear();
            let tried: Vec<ActionId> = {
                let st = self.model.get(&state_id);
                enabled
                    .iter()
                    .map(|(a, _)| *a)
                    .filter(|a| {
                        st.and_then(|m| m.actions.get(a))
                            .map(|s| s.tries > 0)
                            .unwrap_or(false)
                    })
                    .collect()
            };
            if let Some(id) = tried.choose(&mut self.rng) {
                return Action::Widget(*id);
            }
        }
        // 1. Unexecuted action on the current state, in document order
        //    (deterministic frontier chasing — the source of cross-seed
        //    convergence the paper observes).
        let state = &self.model[&state_id];
        for (id, _) in &enabled {
            let tried = state.actions.get(id).map(|s| s.tries).unwrap_or(0);
            if tried == 0 {
                self.plan.clear();
                return Action::Widget(*id);
            }
        }
        // 2. Follow or compute a plan towards the nearest frontier state.
        if self.planned_for != Some(state_id) || self.plan.is_empty() {
            self.plan.clear();
            if let Some(path) = self.plan_to_frontier(state_id) {
                self.plan.extend(path);
            }
        }
        if let Some(next) = self.plan.pop_front() {
            // Re-plan from the next state on the following call.
            self.planned_for = None;
            if let Action::Widget(id) = next {
                if enabled.iter().any(|(a, _)| *a == id) {
                    return next;
                }
                self.plan.clear();
            } else {
                return next;
            }
        }
        // 3. No reachable frontier: fall back to a random excursion (the
        //    real Ape degrades to fuzzing when its model offers nothing),
        //    with an occasional Back to unwind.
        if self.rng.gen::<f64>() < 0.2 {
            return Action::Back;
        }
        enabled
            .choose(&mut self.rng)
            .map(|(id, _)| Action::Widget(*id))
            .unwrap_or(Action::Back)
    }

    fn on_transition(&mut self, from: AbstractScreenId, action: Action, to: &ScreenObservation) {
        if let Action::Widget(id) = action {
            let st = self.model.entry(from).or_default();
            let stats = st.actions.entry(id).or_default();
            stats.tries += 1;
            *stats.outcomes.entry(to.abstract_id()).or_insert(0) += 1;
        }
        self.model.entry(to.abstract_id()).or_default();
    }

    fn on_crash(&mut self) {
        self.plan.clear();
        self.planned_for = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
    use taopt_ui_model::VirtualTime;

    fn runtime(seed: u64) -> AppRuntime {
        let app = Arc::new(generate_app(&GeneratorConfig::small("ape", 2)).unwrap());
        AppRuntime::launch(app, seed)
    }

    fn drive(tool: &mut Ape, rt: &mut AppRuntime, steps: usize) -> usize {
        let mut t = 0u64;
        for _ in 0..steps {
            let obs = rt.observe(VirtualTime::from_secs(t));
            let from = obs.abstract_id();
            let action = tool.next_action(&obs);
            t += 1;
            if let Ok(out) = rt.execute(action, VirtualTime::from_secs(t)) {
                tool.on_transition(from, action, &out.observation);
                if out.crash.is_some() {
                    tool.on_crash();
                }
            }
        }
        rt.visited_screens().len()
    }

    #[test]
    fn prefers_unexecuted_actions_first() {
        let mut ape = Ape::new(1);
        let mut rt = runtime(1);
        let obs = rt.observe(VirtualTime::ZERO);
        let first = ape.next_action(&obs);
        assert!(matches!(first, Action::Widget(_)));
    }

    #[test]
    fn builds_a_model_while_exploring() {
        let mut ape = Ape::new(3);
        let mut rt = runtime(3);
        drive(&mut ape, &mut rt, 300);
        assert!(
            ape.model_size() >= 8,
            "model has {} states",
            ape.model_size()
        );
    }

    #[test]
    fn explores_most_of_the_app() {
        let mut ape = Ape::new(4);
        let mut rt = runtime(4);
        let visited = drive(&mut ape, &mut rt, 600);
        let total = rt.app().screen_count();
        assert!(
            visited * 2 >= total,
            "Ape visited {visited}/{total} screens in 600 steps"
        );
    }

    #[test]
    fn two_seeds_converge_on_similar_coverage() {
        // The paper's key observation: Ape instances overlap heavily.
        let mut a = Ape::new(100);
        let mut ra = runtime(100);
        drive(&mut a, &mut ra, 500);
        let mut b = Ape::new(200);
        let mut rb = runtime(200);
        drive(&mut b, &mut rb, 500);
        let sa = ra.visited_screens();
        let sb = rb.visited_screens();
        let inter = sa.intersection(sb).count() as f64;
        let union = sa.union(sb).count() as f64;
        assert!(
            inter / union > 0.5,
            "Ape instances should overlap heavily: {}",
            inter / union
        );
    }

    #[test]
    fn plan_is_dropped_on_crash() {
        let mut ape = Ape::new(5);
        ape.plan.push_back(Action::Back);
        ape.planned_for = Some(AbstractScreenId(1));
        ape.on_crash();
        assert!(ape.plan.is_empty());
        assert_eq!(ape.planned_for, None);
    }
}
