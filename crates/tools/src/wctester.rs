//! WCTester — activity-transition prioritizing weighted random testing.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{AbstractScreenId, Action, ActionId, ActivityId, ScreenObservation};

use crate::tool::TestingTool;

/// Weight of an action never tried before.
const W_UNKNOWN: f64 = 6.0;
/// Weight floor for actions that never changed the activity.
const W_LOCAL: f64 = 1.0;
/// Extra weight per observed activity transition (saturating).
const W_ACTIVITY_BONUS: f64 = 4.0;
/// Probability of pressing Back to escape a screen.
const BACK_PROB: f64 = 0.05;
/// Uniform exploration noise, keeping the tool out of tarpits.
const EPSILON: f64 = 0.10;

#[derive(Debug, Default, Clone, Copy)]
struct ActionRecord {
    tries: u32,
    activity_changes: u32,
}

/// A reimplementation of WCTester's strategy (Zheng et al., ICSE-SEIP'17).
///
/// WCTester performs weighted random selection and "prioritizes the UI
/// actions that trigger Activity transitions" (§3.3) — actions observed to
/// change the foreground activity earn a large weight bonus, untried
/// actions get an optimistic prior, and actions that keep the activity
/// unchanged decay towards a floor weight.
#[derive(Debug)]
pub struct WcTester {
    rng: StdRng,
    records: HashMap<ActionId, ActionRecord>,
    last_activity: Option<ActivityId>,
}

impl WcTester {
    /// Creates a WCTester instance with the given random seed.
    pub fn new(seed: u64) -> Self {
        WcTester {
            rng: StdRng::seed_from_u64(seed),
            records: HashMap::new(),
            last_activity: None,
        }
    }

    fn weight(&self, id: ActionId) -> f64 {
        match self.records.get(&id) {
            None => W_UNKNOWN,
            Some(r) if r.tries == 0 => W_UNKNOWN,
            Some(r) => {
                let rate = r.activity_changes as f64 / r.tries as f64;
                W_LOCAL + W_ACTIVITY_BONUS * rate
            }
        }
    }
}

impl TestingTool for WcTester {
    fn name(&self) -> &'static str {
        "WCTester"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        if self.rng.gen::<f64>() < BACK_PROB {
            return Action::Back;
        }
        let enabled = obs.enabled_actions();
        if enabled.is_empty() {
            return Action::Back;
        }
        if self.rng.gen::<f64>() < EPSILON {
            let i = self.rng.gen_range(0..enabled.len());
            let (id, _) = enabled[i];
            self.last_activity = Some(obs.activity);
            return Action::Widget(id);
        }
        let weights: Vec<f64> = enabled.iter().map(|(id, _)| self.weight(*id)).collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for ((id, _), w) in enabled.iter().zip(&weights) {
            if pick < *w {
                self.last_activity = Some(obs.activity);
                return Action::Widget(*id);
            }
            pick -= w;
        }
        let (id, _) = enabled[enabled.len() - 1];
        self.last_activity = Some(obs.activity);
        Action::Widget(id)
    }

    fn on_transition(&mut self, _from: AbstractScreenId, action: Action, to: &ScreenObservation) {
        if let Action::Widget(id) = action {
            let rec = self.records.entry(id).or_default();
            rec.tries += 1;
            if let Some(last) = self.last_activity {
                if last != to.activity {
                    rec.activity_changes += 1;
                }
            }
        }
        self.last_activity = Some(to.activity);
    }

    fn on_crash(&mut self) {
        self.last_activity = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{generate_app, AppRuntime, GeneratorConfig};
    use taopt_ui_model::VirtualTime;

    #[test]
    fn untried_actions_have_optimistic_weight() {
        let w = WcTester::new(1);
        assert_eq!(w.weight(ActionId(5)), W_UNKNOWN);
    }

    #[test]
    fn activity_changing_actions_gain_weight() {
        let mut w = WcTester::new(1);
        w.records.insert(
            ActionId(1),
            ActionRecord {
                tries: 10,
                activity_changes: 9,
            },
        );
        w.records.insert(
            ActionId(2),
            ActionRecord {
                tries: 10,
                activity_changes: 0,
            },
        );
        assert!(w.weight(ActionId(1)) > 4.0 * w.weight(ActionId(2)));
    }

    #[test]
    fn learns_from_transitions() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("wc", 6)).unwrap());
        let mut rt = AppRuntime::launch(app, 6);
        let mut tool = WcTester::new(6);
        let mut t = 0u64;
        for _ in 0..300 {
            let obs = rt.observe(VirtualTime::from_secs(t));
            let from = obs.abstract_id();
            let a = tool.next_action(&obs);
            t += 1;
            if let Ok(out) = rt.execute(a, VirtualTime::from_secs(t)) {
                tool.on_transition(from, a, &out.observation);
            }
        }
        // Some action must have been observed to change activities.
        let learned = tool.records.values().any(|r| r.activity_changes > 0);
        assert!(learned, "WCTester should discover activity transitions");
    }

    #[test]
    fn deterministic_under_seed() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("wc", 6)).unwrap());
        let obs = AppRuntime::launch(app, 1).observe(VirtualTime::ZERO);
        let mut a = WcTester::new(42);
        let mut b = WcTester::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_action(&obs), b.next_action(&obs));
        }
    }
}
