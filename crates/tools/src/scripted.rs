//! Scripted test execution — recorded flows replayed by widget identity.
//!
//! Industrial pipelines mix generated tests with *scripted* flows: login
//! scripts (the paper runs one per gated app, §6.1), smoke tests and
//! regression journeys. [`Scripted`] replays a sequence of steps addressed
//! by widget resource id — the same tool-agnostic handle TaOPT's
//! enforcement uses — and degrades to random exploration whenever the
//! scripted widget is not on screen (or the script is exhausted), so it
//! composes with TaOPT like any other black-box tool.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{Action, ScreenObservation};

use crate::tool::TestingTool;

/// One step of a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptStep {
    /// Fire the affordance on the widget with this resource id.
    Tap(String),
    /// Press the system Back key.
    Back,
}

impl ScriptStep {
    /// Convenience constructor for a tap step.
    pub fn tap(rid: impl Into<String>) -> Self {
        ScriptStep::Tap(rid.into())
    }
}

/// A script-replaying tool with random fallback.
#[derive(Debug)]
pub struct Scripted {
    steps: Vec<ScriptStep>,
    cursor: usize,
    /// Consecutive screens on which the pending step was unavailable.
    misses: u32,
    rng: StdRng,
}

/// Give up waiting for a scripted widget after this many misses and skip
/// the step (real script runners time out similarly).
const MAX_MISSES: u32 = 8;

impl Scripted {
    /// Creates a scripted tool.
    pub fn new(steps: Vec<ScriptStep>, seed: u64) -> Self {
        Scripted {
            steps,
            cursor: 0,
            misses: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Steps already executed (or skipped).
    pub fn progress(&self) -> usize {
        self.cursor
    }

    /// Whether every step has been consumed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.steps.len()
    }

    fn random_fallback(&mut self, obs: &ScreenObservation) -> Action {
        if self.rng.gen::<f64>() < 0.1 {
            return Action::Back;
        }
        obs.enabled_actions()
            .choose(&mut self.rng)
            .map(|(id, _)| Action::Widget(*id))
            .unwrap_or(Action::Back)
    }
}

impl TestingTool for Scripted {
    fn name(&self) -> &'static str {
        "Scripted"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        loop {
            match self.steps.get(self.cursor) {
                None => return self.random_fallback(obs),
                Some(ScriptStep::Back) => {
                    self.cursor += 1;
                    self.misses = 0;
                    return Action::Back;
                }
                Some(ScriptStep::Tap(rid)) => {
                    // Find an enabled widget with the scripted resource id.
                    let mut found = None;
                    obs.hierarchy.root().visit(&mut |w| {
                        if found.is_none()
                            && w.enabled
                            && w.resource_id.as_deref() == Some(rid.as_str())
                        {
                            if let Some((id, _)) = w.affordance {
                                found = Some(id);
                            }
                        }
                    });
                    match found {
                        Some(id) => {
                            self.cursor += 1;
                            self.misses = 0;
                            return Action::Widget(id);
                        }
                        None => {
                            self.misses += 1;
                            if self.misses >= MAX_MISSES {
                                // Skip the unreachable step and retry with
                                // the next one immediately.
                                self.cursor += 1;
                                self.misses = 0;
                                continue;
                            }
                            return self.random_fallback(obs);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{AppBuilder, AppRuntime};
    use taopt_ui_model::VirtualTime;

    /// Home → List → Detail → Bag, scripted by widget ids.
    fn app_and_script() -> (Arc<taopt_app_sim::App>, Vec<ScriptStep>) {
        let mut b = AppBuilder::new("script");
        let f = b.add_functionality("F");
        let act = b.add_activity();
        let home = b.add_screen(act, f, "Home");
        let list = b.add_screen(act, f, "List");
        let detail = b.add_screen(act, f, "Detail");
        let bag = b.add_screen(act, f, "Bag");
        b.add_click(home, list, "open_list", "Open");
        b.add_click(list, detail, "row_item", "Item");
        b.add_click(detail, bag, "add_bag", "Add");
        b.add_click(bag, home, "done", "Done");
        b.set_start(home);
        (
            Arc::new(b.build().unwrap()),
            vec![
                ScriptStep::tap("open_list"),
                ScriptStep::tap("row_item"),
                ScriptStep::tap("add_bag"),
                ScriptStep::Back,
            ],
        )
    }

    #[test]
    fn replays_the_flow_exactly() {
        let (app, script) = app_and_script();
        let mut rt = AppRuntime::launch(Arc::clone(&app), 1);
        let mut tool = Scripted::new(script, 1);
        let mut visited = Vec::new();
        for i in 0..4 {
            let obs = rt.observe(VirtualTime::from_secs(i));
            let a = tool.next_action(&obs);
            let out = rt.execute(a, VirtualTime::from_secs(i + 1)).unwrap();
            visited.push(app.screen(out.observation.screen).unwrap().name.clone());
        }
        assert!(tool.finished());
        assert_eq!(visited, vec!["List", "Detail", "Bag", "Detail"]);
    }

    #[test]
    fn skips_unreachable_steps_after_misses() {
        let (app, _) = app_and_script();
        let mut rt = AppRuntime::launch(app, 2);
        let mut tool = Scripted::new(
            vec![
                ScriptStep::tap("no_such_widget"),
                ScriptStep::tap("open_list"),
            ],
            2,
        );
        let mut reached_list = false;
        for i in 0..40 {
            let obs = rt.observe(VirtualTime::from_secs(i));
            let a = tool.next_action(&obs);
            rt.execute(a, VirtualTime::from_secs(i + 1)).unwrap();
            if tool.progress() >= 2 {
                reached_list = true;
                break;
            }
        }
        assert!(
            reached_list,
            "script should skip the dead step and continue"
        );
    }

    #[test]
    fn falls_back_to_exploration_when_done() {
        let (app, script) = app_and_script();
        let mut rt = AppRuntime::launch(app, 3);
        let mut tool = Scripted::new(script, 3);
        for i in 0..60 {
            let obs = rt.observe(VirtualTime::from_secs(i));
            let a = tool.next_action(&obs);
            rt.execute(a, VirtualTime::from_secs(i + 1)).unwrap();
        }
        assert!(tool.finished());
        // Exploration continued after the script: several screens visited.
        assert!(rt.visited_screens().len() >= 3);
    }

    #[test]
    fn scripted_widgets_blocked_by_enforcement_are_skipped() {
        let (app, script) = app_and_script();
        let mut rt = AppRuntime::launch(app, 4);
        let mut tool = Scripted::new(script, 4);
        for i in 0..30 {
            let mut obs = rt.observe(VirtualTime::from_secs(i));
            // Enforcement disables the scripted widget everywhere.
            obs.hierarchy.disable_by_resource_id("open_list");
            let a = tool.next_action(&obs);
            rt.execute(a, VirtualTime::from_secs(i + 1)).unwrap();
        }
        // The first step was never executable; the tool skipped past it
        // rather than stalling forever.
        assert!(tool.progress() >= 1);
    }
}
