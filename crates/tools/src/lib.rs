//! From-scratch automated UI testing tools.
//!
//! The paper evaluates TaOPT on three tools it treats as **black boxes**:
//!
//! * **Monkey** — Android's stock random event injector: uniform random
//!   events, many of which hit dead coordinates;
//! * **Ape** — the state-of-the-art model-based tool: it builds an abstract
//!   model of visited UI states and greedily steers towards unexecuted
//!   actions and rarely-visited states;
//! * **WCTester** — the state-of-practice tool used on WeChat: weighted
//!   random selection that "prioritizes the UI actions that trigger
//!   Activity transitions" (§3.3).
//!
//! Each is reimplemented here from its published description. The
//! [`TestingTool`] trait is the *entire* interface the rest of the system
//! uses — tools see only [`taopt_ui_model::ScreenObservation`]s (already filtered by the
//! Toller enforcement shim) and emit [`taopt_ui_model::Action`]s, which is exactly the
//! tool-agnosticism contract TaOPT depends on: blocking an entrypoint
//! changes what a tool *sees*, never how it *works*.
//!
//! The tools' differing selection policies are what make the transition
//! probabilities `P` of the paper's graph model tool-specific (§1): the
//! same app yields a different stochastic graph under each tool, which is
//! why TaOPT must infer subspaces *online from the running tool's trace*
//! rather than from static structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ape;
pub mod badge;
pub mod monkey;
pub mod scripted;
pub mod tool;
pub mod wctester;

pub use ape::Ape;
pub use badge::Badge;
pub use monkey::Monkey;
pub use scripted::{ScriptStep, Scripted};
pub use tool::{TestingTool, ToolKind};
pub use wctester::WcTester;
