//! Monkey — Android's stock random event injector.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use taopt_ui_model::{Action, ScreenObservation};

use crate::tool::TestingTool;

/// Probability that an event lands on dead coordinates (no widget).
const NOOP_PROB: f64 = 0.25;
/// Probability of injecting a system Back key event.
const BACK_PROB: f64 = 0.06;

/// A reimplementation of Android Monkey's UI-event stream.
///
/// Monkey injects pseudo-random events "without considering the semantics
/// of app UIs" (§9). A large share of taps hit nothing interactive
/// ([`struct@Monkey`] models this with a fixed no-op probability), a few hit
/// Back, and the rest are distributed uniformly over the visible enabled
/// widgets.
#[derive(Debug)]
pub struct Monkey {
    rng: StdRng,
}

impl Monkey {
    /// Creates a Monkey instance with the given random seed.
    pub fn new(seed: u64) -> Self {
        Monkey {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TestingTool for Monkey {
    fn name(&self) -> &'static str {
        "Monkey"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        let r: f64 = self.rng.gen();
        if r < BACK_PROB {
            return Action::Back;
        }
        if r < BACK_PROB + NOOP_PROB {
            return Action::Noop;
        }
        let actions = obs.enabled_actions();
        match actions.choose(&mut self.rng) {
            Some((id, _)) => Action::Widget(*id),
            None => Action::Back,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use taopt_app_sim::AppRuntime;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_ui_model::VirtualTime;

    fn observation() -> ScreenObservation {
        let app = Arc::new(generate_app(&GeneratorConfig::small("m", 1)).unwrap());
        AppRuntime::launch(app, 0).observe(VirtualTime::ZERO)
    }

    #[test]
    fn same_seed_same_stream() {
        let obs = observation();
        let mut a = Monkey::new(9);
        let mut b = Monkey::new(9);
        for _ in 0..50 {
            assert_eq!(a.next_action(&obs), b.next_action(&obs));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let obs = observation();
        let mut a = Monkey::new(1);
        let mut b = Monkey::new(2);
        let sa: Vec<_> = (0..50).map(|_| a.next_action(&obs)).collect();
        let sb: Vec<_> = (0..50).map(|_| b.next_action(&obs)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn emits_noops_backs_and_widgets() {
        let obs = observation();
        let mut m = Monkey::new(3);
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for _ in 0..2000 {
            let k = match m.next_action(&obs) {
                Action::Noop => "noop",
                Action::Back => "back",
                Action::Widget(_) => "widget",
            };
            *counts.entry(k).or_default() += 1;
        }
        assert!(counts["noop"] > 200, "noops: {:?}", counts);
        assert!(counts["back"] > 30, "backs: {:?}", counts);
        assert!(counts["widget"] > 1000, "widgets: {:?}", counts);
    }

    #[test]
    fn widget_choice_is_roughly_uniform() {
        let obs = observation();
        let n_actions = obs.enabled_actions().len();
        assert!(n_actions >= 2);
        let mut m = Monkey::new(5);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut widgets = 0;
        for _ in 0..5000 {
            if let Action::Widget(id) = m.next_action(&obs) {
                *counts.entry(id.0).or_default() += 1;
                widgets += 1;
            }
        }
        let expected = widgets as f64 / n_actions as f64;
        for (_, c) in counts {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "count {c} far from uniform expectation {expected}"
            );
        }
    }

    #[test]
    fn empty_screen_falls_back_to_back() {
        use taopt_ui_model::{ActivityId, ScreenId, UiHierarchy, Widget, WidgetClass};
        let obs = ScreenObservation::new(
            ScreenId(0),
            ActivityId(0),
            UiHierarchy::new(Widget::container(WidgetClass::FrameLayout)),
            VirtualTime::ZERO,
        );
        let mut m = Monkey::new(0);
        for _ in 0..100 {
            assert!(matches!(m.next_action(&obs), Action::Back | Action::Noop));
        }
    }
}
