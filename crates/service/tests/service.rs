//! Service-level integration and property tests: checkpoint-at-any-round
//! resume is byte-identical (including across worker counts and under
//! fault plans), damaged checkpoints are rejected cleanly, and the
//! service queue/priority/crash/recover lifecycle reproduces direct
//! [`run_campaign`] results exactly.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use taopt::campaign::run_campaign;
use taopt::experiments::ExperimentScale;
use taopt::{Campaign, KillEvent, RunMode};
use taopt_chaos::{FaultPlan, FaultRates};
use taopt_service::{
    AppSource, AppSpec, CampaignService, CampaignSpec, CampaignStatus, Checkpoint, CheckpointStore,
    EvolutionSpec, ServiceConfig, ServiceError, CHECKPOINT_VERSION,
};
use taopt_tools::ToolKind;
use taopt_ui_model::json::Value;
use taopt_ui_model::VirtualDuration;

/// A fresh scratch dir under the system temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taopt-service-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny but fully-featured campaign spec: `n` two-instance generated
/// apps, mixed tools/modes, and (on even seeds) a fault plan plus a
/// scheduled device kill, so resume is also exercised under chaos.
fn tiny_spec(n_apps: usize, seed: u64, workers: usize) -> CampaignSpec {
    let scale = ExperimentScale {
        instances: 2,
        duration: VirtualDuration::from_mins(3),
        tick: VirtualDuration::from_secs(10),
        stall_timeout: VirtualDuration::from_secs(60),
        l_min_short: VirtualDuration::from_secs(40),
        l_min_long: VirtualDuration::from_secs(100),
        grid_points: 4,
    };
    let apps = (0..n_apps)
        .map(|i| AppSpec {
            source: AppSource::Small {
                name: format!("svc{i}"),
                seed: seed ^ (i as u64 + 1),
            },
            tool: if i % 2 == 0 {
                ToolKind::Monkey
            } else {
                ToolKind::Ape
            },
            mode: if i % 3 == 2 {
                RunMode::TaoptResource
            } else {
                RunMode::TaoptDuration
            },
            seed: seed.wrapping_add(i as u64),
        })
        .collect();
    let mut spec = CampaignSpec::new(format!("tiny-{n_apps}-{seed}"), apps, scale);
    spec.workers = workers;
    if seed.is_multiple_of(2) {
        spec.faults = Some(FaultPlan::new(seed, FaultRates::uniform(0.02)));
        spec.kills = vec![KillEvent {
            round: 4,
            victim: seed % (n_apps as u64 * 2),
        }];
    }
    spec
}

/// The canonical uninterrupted result of a spec.
fn direct_report(spec: &CampaignSpec) -> String {
    let (apps, config) = spec.build().unwrap();
    run_campaign(apps, &config).coverage_report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core durability law: stop a campaign at *any* round, round-trip the
    /// checkpoint through disk, resume — possibly with a different worker
    /// count — and the finished coverage report is byte-identical to an
    /// uninterrupted run.
    #[test]
    fn checkpoint_any_round_resume_is_byte_identical(
        n_apps in 1usize..4,
        seed in 0u64..500,
        workers_sel in 0usize..3,
        resume_sel in 0usize..3,
        stop_round in 1u64..12,
    ) {
        let workers = [1usize, 2, 4][workers_sel];
        let resume_workers = [1usize, 2, 4][resume_sel];
        let spec = tiny_spec(n_apps, seed, workers);
        let reference = direct_report(&spec);

        let (apps, config) = spec.build().unwrap();
        let mut campaign = Campaign::new(apps, &config);
        let mut live = true;
        while live && campaign.round() < stop_round {
            live = campaign.advance_round();
        }
        if !live {
            // The campaign ended before `stop_round`; the uninterrupted
            // equality must still hold.
            prop_assert_eq!(campaign.finish().coverage_report(), reference);
            return Ok(());
        }

        // Mid-flight: checkpoint through an actual file.
        let digest = campaign.digest();
        drop(campaign);
        let store = CheckpointStore::new(scratch(&format!(
            "prop-{n_apps}-{seed}-{workers}-{resume_workers}-{stop_round}"
        )))
        .unwrap();
        let path = store
            .save(&Checkpoint {
                version: CHECKPOINT_VERSION,
                campaign: 1,
                priority: 0,
                round: stop_round,
                sequence_version: 0,
                spec: spec.clone(),
                digest: Some(digest),
            })
            .unwrap();
        let ckpt = store.load(&path).unwrap();
        prop_assert_eq!(&ckpt.spec, &spec);

        // Resume: rebuild, replay, verify the digest, run to completion.
        let mut resumed_spec = ckpt.spec;
        resumed_spec.workers = resume_workers;
        let (apps, config) = resumed_spec.build().unwrap();
        let mut resumed = Campaign::new(apps, &config);
        while resumed.round() < ckpt.round {
            prop_assert!(resumed.advance_round(), "replay ended early");
        }
        let replayed = resumed.digest();
        prop_assert_eq!(ckpt.digest.unwrap().diff(&replayed), None);
        while resumed.advance_round() {}
        prop_assert_eq!(resumed.finish().coverage_report(), reference);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Host-budget law: the campaign compute-pool budget is pure mechanism
    /// and never affects results — the coverage report is byte-identical
    /// across `host_threads` ∈ {1, 2, 4, 8}, and a campaign checkpointed
    /// under one budget resumes byte-identically under another (the budget
    /// travels through the durable checkpoint encoding both ways).
    #[test]
    fn host_threads_never_affect_results(
        n_apps in 1usize..4,
        seed in 0u64..500,
        budget_sel in 0usize..4,
        resume_sel in 0usize..4,
        stop_round in 1u64..10,
    ) {
        let budgets = [1usize, 2, 4, 8];
        let mut spec = tiny_spec(n_apps, seed, 2);
        spec.host_threads = 1;
        let reference = direct_report(&spec);
        for b in [2usize, 4, 8] {
            let mut s = spec.clone();
            s.host_threads = b;
            prop_assert_eq!(
                direct_report(&s),
                reference.clone(),
                "host_threads={} diverged from host_threads=1",
                b
            );
        }

        // Checkpoint under one budget, resume under another.
        let mut run_spec = spec.clone();
        run_spec.host_threads = budgets[budget_sel];
        let (apps, config) = run_spec.build().unwrap();
        let mut campaign = Campaign::new(apps, &config);
        let mut live = true;
        while live && campaign.round() < stop_round {
            live = campaign.advance_round();
        }
        if !live {
            prop_assert_eq!(campaign.finish().coverage_report(), reference);
            return Ok(());
        }
        let digest = campaign.digest();
        drop(campaign);
        let store = CheckpointStore::new(scratch(&format!(
            "prop-host-{n_apps}-{seed}-{budget_sel}-{resume_sel}-{stop_round}"
        )))
        .unwrap();
        let path = store
            .save(&Checkpoint {
                version: CHECKPOINT_VERSION,
                campaign: 1,
                priority: 0,
                round: stop_round,
                sequence_version: 0,
                spec: run_spec.clone(),
                digest: Some(digest),
            })
            .unwrap();
        let ckpt = store.load(&path).unwrap();
        prop_assert_eq!(&ckpt.spec, &run_spec);

        let mut resumed_spec = ckpt.spec;
        resumed_spec.host_threads = budgets[resume_sel];
        let (apps, config) = resumed_spec.build().unwrap();
        let mut resumed = Campaign::new(apps, &config);
        while resumed.round() < ckpt.round {
            prop_assert!(resumed.advance_round(), "replay ended early");
        }
        prop_assert_eq!(ckpt.digest.unwrap().diff(&resumed.digest()), None);
        while resumed.advance_round() {}
        prop_assert_eq!(resumed.finish().coverage_report(), reference);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Any truncation or byte flip of a checkpoint file must surface as a
    /// clean `Err` — never a panic, never a silently wrong resume.
    #[test]
    fn damaged_checkpoint_is_always_rejected(
        damage_at in 0usize..4096,
        flip in 1u8..255,
        truncate in 0u8..2,
    ) {
        let truncate = truncate == 1;
        let store = CheckpointStore::new(scratch("prop-damage")).unwrap();
        let path = store
            .save(&Checkpoint {
                version: CHECKPOINT_VERSION,
                campaign: 9,
                priority: 2,
                round: 6,
                sequence_version: 0,
                spec: tiny_spec(2, 42, 1),
                digest: None,
            })
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        if truncate {
            let cut = 1 + damage_at % (bytes.len() - 1);
            bytes.truncate(cut);
        } else {
            let idx = damage_at % bytes.len();
            bytes[idx] = bytes[idx].wrapping_add(flip);
        }
        fs::write(&path, &bytes).unwrap();
        prop_assert!(store.load(&path).is_err());
        let _ = fs::remove_dir_all(store.dir());
    }
}

#[test]
fn service_queue_runs_everything_byte_identical() {
    let dir = scratch("queue");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 4;
    config.checkpoint_every = 3;
    let service = CampaignService::start(config).unwrap();

    // Three campaigns of demand 4 against a 4-device farm: strictly
    // serialized, admitted highest-priority-first.
    let mut specs = [
        tiny_spec(2, 10, 1),
        tiny_spec(2, 11, 2),
        tiny_spec(3, 12, 1),
    ];
    specs[2].capacity = Some(4);
    let expected: Vec<String> = specs.iter().map(direct_report).collect();
    let ids: Vec<_> = specs
        .iter()
        .zip([1u8, 5, 3])
        .map(|(s, pri)| service.submit(s.clone(), pri).unwrap())
        .collect();

    service.wait_all();
    for (id, want) in ids.iter().zip(&expected) {
        assert_eq!(service.status(*id).unwrap(), CampaignStatus::Done);
        assert_eq!(service.result(*id).unwrap().as_deref(), Some(want.as_str()));
    }

    // Completed campaigns leave no checkpoints behind.
    let store = CheckpointStore::new(&dir).unwrap();
    assert!(store.list().unwrap().is_empty());
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_rejects_impossible_and_invalid_specs() {
    let dir = scratch("admission");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 2;
    let service = CampaignService::start(config).unwrap();

    // Demand 4 > farm 2: can never run.
    assert!(matches!(
        service.submit(tiny_spec(2, 1, 1), 0),
        Err(ServiceError::Rejected(_))
    ));
    // Unknown catalog app: fails the submitter, not a runner thread.
    let mut bad = tiny_spec(1, 1, 1);
    bad.capacity = Some(1);
    bad.apps[0].source = AppSource::Catalog("NoSuchApp".to_owned());
    assert!(matches!(
        service.submit(bad, 0),
        Err(ServiceError::UnknownApp(_))
    ));
    assert!(matches!(
        service.status(taopt_service::CampaignId(77)),
        Err(ServiceError::UnknownCampaign(77))
    ));
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn preemption_keeps_results_byte_identical() {
    let dir = scratch("preempt");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 4;
    config.checkpoint_every = 1;
    let service = CampaignService::start(config).unwrap();

    // A long low-priority campaign, then a high-priority one that outranks
    // it while the farm is full: the low one is asked to checkpoint and
    // yield, resumes later, and must still finish byte-identical.
    let mut long_spec = tiny_spec(3, 20, 1);
    long_spec.scale.duration = VirtualDuration::from_mins(30);
    long_spec.capacity = Some(4);
    let short_spec = tiny_spec(2, 21, 1);
    let long_want = direct_report(&long_spec);
    let short_want = direct_report(&short_spec);

    let low = service.submit(long_spec, 1).unwrap();
    let high = service.submit(short_spec, 9).unwrap();

    assert_eq!(service.wait(high).unwrap(), CampaignStatus::Done);
    assert_eq!(service.wait(low).unwrap(), CampaignStatus::Done);
    assert_eq!(
        service.result(low).unwrap().as_deref(),
        Some(long_want.as_str())
    );
    assert_eq!(
        service.result(high).unwrap().as_deref(),
        Some(short_want.as_str())
    );
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_and_recover_completes_every_unfinished_campaign() {
    let dir = scratch("crash");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 4;
    config.checkpoint_every = 2;
    let service = CampaignService::start(config.clone()).unwrap();

    // Campaign 1 is long and runs first; 2 and 3 queue behind it, so at
    // least two campaigns are guaranteed unfinished at the crash.
    let mut specs = [
        tiny_spec(2, 30, 2),
        tiny_spec(2, 31, 1),
        tiny_spec(3, 32, 1),
    ];
    specs[0].scale.duration = VirtualDuration::from_mins(30);
    specs[0].capacity = Some(4);
    specs[2].capacity = Some(4);
    let expected: Vec<String> = specs.iter().map(direct_report).collect();
    let ids: Vec<_> = specs
        .iter()
        .map(|s| service.submit(s.clone(), 4).unwrap())
        .collect();

    // Let the first campaign make some progress, then kill the process.
    for _ in 0..20_000 {
        match service.status(ids[0]).unwrap() {
            CampaignStatus::Running { round } if round >= 3 => break,
            CampaignStatus::Done | CampaignStatus::Failed(_) => break,
            _ => std::thread::yield_now(),
        }
    }
    service.crash();

    let (service, recovery) = CampaignService::recover(config).unwrap();
    assert!(recovery.rejected.is_empty());
    // Everything that had not completed pre-crash — at minimum the two
    // queued campaigns — comes back from its durable checkpoint.
    assert!(
        recovery.resumed.len() >= 2,
        "resumed {:?}",
        recovery.resumed
    );
    service.wait_all();
    for (id, want) in ids.iter().zip(&expected) {
        if recovery.resumed.contains(id) {
            assert_eq!(service.status(*id).unwrap(), CampaignStatus::Done);
            assert_eq!(
                service.result(*id).unwrap().as_deref(),
                Some(want.as_str()),
                "resumed campaign {id:?} diverged from uninterrupted run"
            );
        }
    }
    let store = CheckpointStore::new(&dir).unwrap();
    assert!(store.list().unwrap().is_empty());
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tampered_digest_fails_the_resume_cleanly() {
    let dir = scratch("tamper");
    let spec = tiny_spec(2, 40, 1);
    let (apps, config) = spec.build().unwrap();
    let mut campaign = Campaign::new(apps, &config);
    for _ in 0..3 {
        assert!(campaign.advance_round());
    }
    let mut digest = campaign.digest();
    digest.grants += 1;
    let store = CheckpointStore::new(&dir).unwrap();
    store
        .save(&Checkpoint {
            version: CHECKPOINT_VERSION,
            campaign: 1,
            priority: 0,
            round: campaign.round(),
            sequence_version: 0,
            spec,
            digest: Some(digest),
        })
        .unwrap();

    let mut svc_config = ServiceConfig::new(&dir);
    svc_config.farm_capacity = 8;
    let (service, recovery) = CampaignService::recover(svc_config).unwrap();
    assert_eq!(recovery.resumed.len(), 1);
    let id = recovery.resumed[0];
    match service.wait(id).unwrap() {
        CampaignStatus::Failed(msg) => {
            assert!(msg.contains("diverged"), "unexpected failure: {msg}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// A small evolution spec: `versions` releases of two TaOPT-mode apps
/// with warm-start threading.
fn evolution_spec(seed: u64, versions: u64) -> CampaignSpec {
    let mut spec = tiny_spec(2, seed, 2);
    spec.evolution = Some(EvolutionSpec {
        seed: seed ^ 0xe0,
        versions,
        warm: true,
    });
    spec
}

#[test]
fn evolution_campaign_reports_every_release() {
    let dir = scratch("evolution");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 8;
    let service = CampaignService::start(config).unwrap();

    let id = service.submit(evolution_spec(61, 3), 4).unwrap();
    assert_eq!(service.wait(id).unwrap(), CampaignStatus::Done);
    let report = service.result(id).unwrap().unwrap();
    let v = Value::parse(&report).unwrap();
    let versions = v.require("versions").unwrap().as_array().unwrap();
    assert_eq!(versions.len(), 3);
    for (i, ver) in versions.iter().enumerate() {
        assert_eq!(
            ver.require("version").unwrap().as_u64(),
            Some(i as u64),
            "versions out of order"
        );
        // Each release carries its evolution report and a full coverage
        // report.
        let evo = ver.require("evolution").unwrap();
        assert!(evo.require("apps").unwrap().as_array().unwrap().len() == 2);
        assert!(ver.require("coverage").is_ok());
    }
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn evolution_mid_version_crash_recovers_byte_identical() {
    // Reference: the same evolution spec run uninterrupted.
    let spec = evolution_spec(62, 3);
    let ref_dir = scratch("evo-ref");
    let mut ref_config = ServiceConfig::new(&ref_dir);
    ref_config.farm_capacity = 8;
    let reference = {
        let service = CampaignService::start(ref_config).unwrap();
        let id = service.submit(spec.clone(), 4).unwrap();
        assert_eq!(service.wait(id).unwrap(), CampaignStatus::Done);
        let report = service.result(id).unwrap().unwrap();
        service.shutdown();
        report
    };
    let _ = fs::remove_dir_all(&ref_dir);

    // Interrupted run: checkpoint every round, kill the service once a
    // checkpoint lands *inside* a later release (sequence cursor ≥ 1).
    let dir = scratch("evo-crash");
    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 8;
    config.checkpoint_every = 1;
    let service = CampaignService::start(config.clone()).unwrap();
    let id = service.submit(spec, 4).unwrap();
    let store = CheckpointStore::new(&dir).unwrap();
    let mut saw_mid_version = false;
    for _ in 0..200_000 {
        if let Ok(ckpt) = store.load(&store.path_for(id.0)) {
            if ckpt.sequence_version >= 1 && ckpt.round >= 1 {
                saw_mid_version = true;
                break;
            }
        }
        if matches!(
            service.status(id).unwrap(),
            CampaignStatus::Done | CampaignStatus::Failed(_)
        ) {
            break;
        }
        std::thread::yield_now();
    }
    assert!(
        saw_mid_version,
        "campaign never checkpointed inside a later release"
    );
    service.crash();

    let (service, recovery) = CampaignService::recover(config).unwrap();
    assert!(recovery.rejected.is_empty());
    assert_eq!(recovery.resumed, vec![id]);
    assert_eq!(service.wait(id).unwrap(), CampaignStatus::Done);
    assert_eq!(
        service.result(id).unwrap().as_deref(),
        Some(reference.as_str()),
        "mid-version resume diverged from uninterrupted release train"
    );
    let store = CheckpointStore::new(&dir).unwrap();
    assert!(store.list().unwrap().is_empty());
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recover_reports_unreadable_checkpoints_without_dying() {
    let dir = scratch("reject");
    let store = CheckpointStore::new(&dir).unwrap();
    store
        .save(&Checkpoint {
            version: CHECKPOINT_VERSION,
            campaign: 1,
            priority: 0,
            round: 0,
            sequence_version: 0,
            spec: tiny_spec(1, 50, 1),
            digest: None,
        })
        .unwrap();
    fs::write(store.path_for(2), "garbage, not a checkpoint").unwrap();

    let mut config = ServiceConfig::new(&dir);
    config.farm_capacity = 8;
    let (service, recovery) = CampaignService::recover(config).unwrap();
    assert_eq!(recovery.resumed.len(), 1);
    assert_eq!(recovery.rejected.len(), 1);
    assert!(matches!(
        recovery.rejected[0].1,
        ServiceError::Corrupt { .. }
    ));
    service.wait_all();
    assert_eq!(
        service.status(recovery.resumed[0]).unwrap(),
        CampaignStatus::Done
    );
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
