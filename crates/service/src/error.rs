//! Service error taxonomy.
//!
//! Every failure mode the service can hit — including a corrupted or
//! truncated checkpoint file — surfaces as a [`ServiceError`] value, never
//! a panic: the durability contract is that a damaged checkpoint is
//! *rejected cleanly* and the campaign reported failed, not that the whole
//! service dies.

use std::fmt;

use taopt_ui_model::json::JsonError;

/// Anything that can go wrong inside the campaign service.
#[derive(Debug)]
pub enum ServiceError {
    /// Filesystem trouble reading or writing a checkpoint.
    Io(std::io::Error),
    /// A checkpoint file failed structural validation (bad magic, length
    /// or checksum mismatch, truncation).
    Corrupt {
        /// Offending file.
        path: String,
        /// What failed.
        reason: String,
    },
    /// A checkpoint was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The checkpoint payload parsed as JSON but violated the schema.
    Malformed(JsonError),
    /// A spec referenced an app the catalog does not contain.
    UnknownApp(String),
    /// A replayed campaign diverged from its checkpointed digest.
    DigestMismatch {
        /// Round at which the digests were compared.
        round: u64,
        /// First divergent field.
        detail: String,
    },
    /// The submission was refused by admission control.
    Rejected(String),
    /// No campaign with the given id.
    UnknownCampaign(u64),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "checkpoint io: {e}"),
            ServiceError::Corrupt { path, reason } => {
                write!(f, "corrupt checkpoint {path}: {reason}")
            }
            ServiceError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint version {found} unsupported (this build supports v{supported})"
                )
            }
            ServiceError::Malformed(e) => write!(f, "malformed checkpoint payload: {e}"),
            ServiceError::UnknownApp(name) => write!(f, "unknown catalog app `{name}`"),
            ServiceError::DigestMismatch { round, detail } => {
                write!(
                    f,
                    "replay diverged from checkpoint at round {round}: {detail}"
                )
            }
            ServiceError::Rejected(why) => write!(f, "submission rejected: {why}"),
            ServiceError::UnknownCampaign(id) => write!(f, "unknown campaign {id}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<JsonError> for ServiceError {
    fn from(e: JsonError) -> Self {
        ServiceError::Malformed(e)
    }
}
