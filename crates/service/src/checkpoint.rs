//! Durable, versioned campaign checkpoints.
//!
//! # File format (version 1)
//!
//! A checkpoint file is a one-line header followed by a JSON payload:
//!
//! ```text
//! taopt-checkpoint v1 fnv64=<16 hex digits> len=<payload bytes>\n
//! { ...payload... }
//! ```
//!
//! The header pins the format version, an FNV-1a 64-bit checksum of the
//! payload bytes, and the exact payload length. [`CheckpointStore::load`]
//! validates all three before parsing, so truncation, bit rot and partial
//! writes surface as [`ServiceError::Corrupt`] — never a panic and never
//! a silently wrong resume. Writes go through a temp file plus atomic
//! rename, so a crash *during* checkpointing leaves the previous
//! checkpoint intact.
//!
//! The payload stores the campaign's [`CampaignSpec`] (its complete
//! input), the round reached, and the [`CampaignDigest`] at that round.
//! Restore rebuilds from the spec, replays to the round, and verifies the
//! digest (DESIGN.md §13) — the runtime's determinism is what makes this
//! small file a complete snapshot.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use taopt::CampaignDigest;
use taopt_ui_model::json::Value;

use crate::error::ServiceError;
use crate::spec::CampaignSpec;

/// Checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

const MAGIC: &str = "taopt-checkpoint";

/// One durable snapshot of an in-flight (or not-yet-started) campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u64,
    /// Service-assigned campaign id.
    pub campaign: u64,
    /// Scheduling priority (higher runs first).
    pub priority: u8,
    /// Global round the campaign had completed. 0 with no digest means
    /// the campaign was submitted but never started. For evolution
    /// campaigns this is the round *within* [`Checkpoint::sequence_version`].
    pub round: u64,
    /// For evolution campaigns, the release version `round` belongs to
    /// (the sequence cursor). Plain campaigns — and every checkpoint
    /// written before the evolution section existed — use 0, which is why
    /// the field is serialized only when nonzero and an absent field
    /// parses as 0.
    pub sequence_version: u64,
    /// The campaign's complete input.
    pub spec: CampaignSpec,
    /// Digest at `round`; a restore replay must reproduce it exactly.
    pub digest: Option<CampaignDigest>,
}

impl Checkpoint {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("version".to_owned(), Value::UInt(self.version)),
            ("campaign".to_owned(), Value::UInt(self.campaign)),
            ("priority".to_owned(), Value::UInt(self.priority as u64)),
            ("round".to_owned(), Value::UInt(self.round)),
            ("spec".to_owned(), self.spec.to_value()),
        ];
        if self.sequence_version > 0 {
            fields.push((
                "sequence_version".to_owned(),
                Value::UInt(self.sequence_version),
            ));
        }
        if let Some(d) = &self.digest {
            fields.push(("digest".to_owned(), d.to_value()));
        }
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self, ServiceError> {
        let u = |key: &str| -> Result<u64, ServiceError> {
            Ok(v.require(key)?.as_u64().ok_or_else(|| {
                taopt_ui_model::json::JsonError::conversion(format!("field `{key}` must be a u64"))
            })?)
        };
        let version = u("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(ServiceError::UnsupportedVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(Checkpoint {
            version,
            campaign: u("campaign")?,
            priority: u("priority")? as u8,
            round: u("round")?,
            // Optional for back-compat: pre-evolution checkpoints have no
            // sequence cursor and resume at version 0.
            sequence_version: match v.get("sequence_version") {
                None | Some(Value::Null) => 0,
                Some(sv) => sv.as_u64().ok_or_else(|| {
                    taopt_ui_model::json::JsonError::conversion("sequence_version must be a u64")
                })?,
            },
            spec: CampaignSpec::from_value(v.require("spec")?)?,
            digest: match v.get("digest") {
                None | Some(Value::Null) => None,
                Some(dv) => Some(CampaignDigest::from_value(dv)?),
            },
        })
    }
}

/// FNV-1a 64-bit, the checksum in the checkpoint header.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a checkpoint in the durable wire format (header line + JSON
/// payload). The same bytes live on disk and travel over the network
/// during shard migration, so the checksum protects both.
pub fn encode(checkpoint: &Checkpoint) -> String {
    let payload = checkpoint.to_value().to_json_string();
    format!(
        "{MAGIC} v{} fnv64={:016x} len={}\n{payload}",
        checkpoint.version,
        fnv64(payload.as_bytes()),
        payload.len()
    )
}

/// Parses and validates checkpoint text (the inverse of [`encode`]).
/// `origin` names the source in errors — a file path, or a peer address
/// for checkpoints received over the wire. Truncated, corrupted or alien
/// input fails with a clean [`ServiceError`], never a panic.
pub fn decode(text: &str, origin: &str) -> Result<Checkpoint, ServiceError> {
    let corrupt = |reason: &str| ServiceError::Corrupt {
        path: origin.to_owned(),
        reason: reason.to_owned(),
    };
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("missing header line"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| corrupt("unreadable version"))?;
    if version != CHECKPOINT_VERSION {
        return Err(ServiceError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let expect_sum = parts
        .next()
        .and_then(|v| v.strip_prefix("fnv64="))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt("unreadable checksum"))?;
    let expect_len = parts
        .next()
        .and_then(|v| v.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| corrupt("unreadable length"))?;
    if payload.len() != expect_len {
        return Err(corrupt("payload length mismatch (truncated?)"));
    }
    if fnv64(payload.as_bytes()) != expect_sum {
        return Err(corrupt("checksum mismatch"));
    }
    let value = Value::parse(payload).map_err(ServiceError::Malformed)?;
    Checkpoint::from_value(&value)
}

/// A directory of checkpoint files, one per in-flight campaign.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, ServiceError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a campaign's checkpoint lives at.
    pub fn path_for(&self, campaign: u64) -> PathBuf {
        self.dir.join(format!("campaign-{campaign:08}.ckpt"))
    }

    /// Atomically writes `checkpoint`, replacing any previous snapshot of
    /// the same campaign. The old file survives a crash mid-write.
    pub fn save(&self, checkpoint: &Checkpoint) -> Result<PathBuf, ServiceError> {
        let text = encode(checkpoint);
        let path = self.path_for(checkpoint.campaign);
        let tmp = self
            .dir
            .join(format!("campaign-{:08}.ckpt.tmp", checkpoint.campaign));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        taopt_telemetry::global()
            .counter("service_checkpoints_written_total")
            .inc();
        Ok(path)
    }

    /// Loads and validates the checkpoint at `path`. Truncated, corrupted
    /// or alien files fail with a clean [`ServiceError`].
    pub fn load(&self, path: &Path) -> Result<Checkpoint, ServiceError> {
        let text = fs::read_to_string(path)?;
        decode(&text, &path.display().to_string())
    }

    /// Every checkpoint file currently in the store, in campaign order.
    pub fn list(&self) -> Result<Vec<PathBuf>, ServiceError> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Deletes a campaign's checkpoint (after completion). Missing files
    /// are fine — completion can race a crash — but any other I/O failure
    /// is counted in `service_checkpoint_remove_errors_total` and logged,
    /// because a checkpoint that cannot be deleted will be resurrected by
    /// the next [`CampaignService::recover`](crate::CampaignService::recover).
    pub fn remove(&self, campaign: u64) {
        let path = self.path_for(campaign);
        if let Err(e) = fs::remove_file(&path) {
            if e.kind() != std::io::ErrorKind::NotFound {
                taopt_telemetry::global()
                    .counter("service_checkpoint_remove_errors_total")
                    .inc();
                eprintln!(
                    "taopt-service: failed to remove checkpoint {}: {e}",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSource, AppSpec};
    use taopt::experiments::ExperimentScale;
    use taopt::RunMode;
    use taopt_tools::ToolKind;

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("taopt-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn sample(round: u64) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            campaign: 3,
            priority: 7,
            round,
            sequence_version: 0,
            spec: CampaignSpec::new(
                "t",
                vec![AppSpec {
                    source: AppSource::Small {
                        name: "a".to_owned(),
                        seed: 1,
                    },
                    tool: ToolKind::Monkey,
                    mode: RunMode::TaoptDuration,
                    seed: 9,
                }],
                ExperimentScale::quick(),
            ),
            digest: None,
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let store = tmp_store("roundtrip");
        let ckpt = sample(12);
        let path = store.save(&ckpt).unwrap();
        let back = store.load(&path).unwrap();
        assert_eq!(ckpt, back);
        assert_eq!(store.list().unwrap(), vec![path]);
        store.remove(3);
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn wire_encode_decode_roundtrip() {
        let ckpt = sample(7);
        let text = encode(&ckpt);
        assert!(text.starts_with("taopt-checkpoint v1 fnv64="));
        let back = decode(&text, "peer:1234").unwrap();
        assert_eq!(ckpt, back);
        // A flipped payload byte fails the checksum with the origin named.
        let mut bytes = text.into_bytes();
        let idx = bytes.len() - 10;
        bytes[idx] = bytes[idx].wrapping_add(1);
        match decode(std::str::from_utf8(&bytes).unwrap(), "peer:1234") {
            Err(ServiceError::Corrupt { path, .. }) => assert_eq!(path, "peer:1234"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn sequence_cursor_roundtrips_and_defaults_to_zero() {
        // Nonzero cursor survives the wire format.
        let mut ckpt = sample(4);
        ckpt.sequence_version = 2;
        let back = decode(&encode(&ckpt), "test").unwrap();
        assert_eq!(back.sequence_version, 2);
        // Cursor 0 is omitted from the payload, so the bytes written for a
        // plain campaign are exactly the pre-evolution format — and any
        // old checkpoint without the field parses as version 0.
        let legacy = encode(&sample(4));
        assert!(!legacy.contains("sequence_version"));
        assert_eq!(decode(&legacy, "test").unwrap().sequence_version, 0);
    }

    #[test]
    fn remove_failure_is_counted_not_swallowed() {
        let store = tmp_store("remove-err");
        let counter = taopt_telemetry::global().counter("service_checkpoint_remove_errors_total");
        // Missing file: fine, not an error.
        let before = counter.get();
        store.remove(42);
        assert_eq!(counter.get(), before);
        // A directory squatting on the checkpoint path: remove_file fails
        // and the failure must be counted.
        fs::create_dir_all(store.path_for(42)).unwrap();
        store.remove(42);
        assert_eq!(counter.get(), before + 1);
    }

    #[test]
    fn truncated_checkpoint_is_rejected_cleanly() {
        let store = tmp_store("truncate");
        let path = store.save(&sample(5)).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        for cut in [full.len() / 4, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            match store.load(&path) {
                Err(ServiceError::Corrupt { .. }) => {}
                other => panic!("expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let store = tmp_store("flip");
        let path = store.save(&sample(5)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 10;
        bytes[idx] = bytes[idx].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(&path),
            Err(ServiceError::Corrupt { .. })
        ));
    }

    #[test]
    fn alien_and_future_version_files_are_rejected() {
        let store = tmp_store("alien");
        let path = store.path_for(1);
        fs::write(&path, "not a checkpoint at all").unwrap();
        assert!(matches!(
            store.load(&path),
            Err(ServiceError::Corrupt { .. })
        ));
        fs::write(&path, "taopt-checkpoint v99 fnv64=0 len=0\n").unwrap();
        assert!(matches!(
            store.load(&path),
            Err(ServiceError::UnsupportedVersion { found: 99, .. })
        ));
    }
}
