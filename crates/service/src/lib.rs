//! # taopt-service — persistent farm-as-a-service over the campaign runtime
//!
//! The crates below this one answer "run *one* campaign, deterministically"
//! ([`taopt::run_campaign`]). This crate turns that runtime into a
//! long-lived, multi-tenant service (DESIGN.md §13):
//!
//! - **Submission queue** — tenants submit serializable [`CampaignSpec`]s
//!   ([`spec`]); admission control checks device demand against the
//!   farm-capacity budget before anything runs.
//! - **Priorities and preemption** — higher-priority campaigns outrank
//!   queued work, and when capacity is exhausted the lowest-priority
//!   running campaigns are asked to checkpoint and yield
//!   ([`service`]).
//! - **Durable checkpoint/resume** — every unfinished campaign always has
//!   a validated, versioned snapshot on disk ([`checkpoint`]); a killed
//!   service ([`CampaignService::crash`]) recovers every in-flight
//!   campaign ([`CampaignService::recover`]) and finishes it
//!   *byte-identical* to an uninterrupted run, because restore is
//!   deterministic replay verified against a [`taopt::CampaignDigest`].
//! - **Live status** — per-campaign rounds, queue depth, leased capacity
//!   and resume latency are published through the process-global
//!   [`taopt_telemetry`] registry ([`CampaignService::metrics_text`]).
//! - **Longitudinal campaigns** — a spec with an [`EvolutionSpec`]
//!   section runs one campaign per app release ([`taopt::CampaignSequence`]),
//!   threading warm-start analyzer state across versions; checkpoints
//!   carry a sequence cursor so a killed release train resumes
//!   mid-version, and the final report combines every release's
//!   [`taopt::EvolutionReport`] with its coverage report.
//!
//! ```no_run
//! use taopt_service::{AppSource, AppSpec, CampaignSpec, CampaignService, ServiceConfig};
//! use taopt::experiments::ExperimentScale;
//! use taopt::RunMode;
//! use taopt_tools::ToolKind;
//!
//! let service = CampaignService::start(ServiceConfig::new("/tmp/taopt-ckpt")).unwrap();
//! let spec = CampaignSpec::new(
//!     "nightly",
//!     vec![AppSpec {
//!         source: AppSource::Catalog("AbsWorkout".to_owned()),
//!         tool: ToolKind::Monkey,
//!         mode: RunMode::TaoptDuration,
//!         seed: 7,
//!     }],
//!     ExperimentScale::quick(),
//! );
//! let id = service.submit(spec, 5).unwrap();
//! service.wait(id).unwrap();
//! println!("{}", service.result(id).unwrap().unwrap());
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod service;
pub mod spec;

pub use checkpoint::{Checkpoint, CheckpointStore, CHECKPOINT_VERSION};
pub use error::ServiceError;
pub use service::{
    CampaignId, CampaignService, CampaignStatus, Priority, RecoveryReport, ServiceConfig,
};
pub use spec::{AppSource, AppSpec, CampaignSpec, EvolutionSpec};
