//! The persistent campaign service: a multi-tenant queue over one shared
//! device-farm capacity budget.
//!
//! # Model
//!
//! Tenants [`CampaignService::submit`] serializable [`CampaignSpec`]s with
//! a priority. A scheduler thread admits queued campaigns against the
//! farm-capacity budget (highest priority first, FIFO within a priority)
//! and runs each admitted campaign on its own runner thread, driving the
//! deterministic [`Campaign`] round loop. When a waiting campaign
//! outranks running ones and capacity is exhausted, the lowest-priority
//! runners are asked to yield: they checkpoint at the next round boundary
//! and re-queue (preemption is just an early resume).
//!
//! # Durability
//!
//! Every submission writes a round-0 checkpoint, and every runner
//! re-checkpoints on a configurable round cadence, so at any instant each
//! unfinished campaign has a durable snapshot. [`CampaignService::crash`]
//! kills the service abruptly — no final checkpoints, mirroring a real
//! process death — and [`CampaignService::recover`] rebuilds the whole
//! queue from the checkpoint directory: every in-flight campaign resumes
//! from its last snapshot by deterministic replay with digest
//! verification, and completes byte-identical to an uninterrupted run
//! (DESIGN.md §13).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use taopt::{Campaign, CampaignDigest, CampaignSequence};
use taopt_app_sim::AppEvolution;
use taopt_chaos::{FaultKind, RecoveryKind};
use taopt_telemetry::Labels;
use taopt_ui_model::json::Value;
use taopt_ui_model::VirtualTime;

use crate::checkpoint::{Checkpoint, CheckpointStore, CHECKPOINT_VERSION};
use crate::error::ServiceError;
use crate::spec::CampaignSpec;

/// Service-level knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total device capacity the service may lease out at once.
    pub farm_capacity: usize,
    /// Directory for durable checkpoints.
    pub checkpoint_dir: PathBuf,
    /// Rounds between durable checkpoints of a running campaign.
    pub checkpoint_every: u64,
}

impl ServiceConfig {
    /// Defaults: 16 devices, checkpoint every 8 rounds.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            farm_capacity: 16,
            checkpoint_dir: checkpoint_dir.into(),
            checkpoint_every: 8,
        }
    }
}

/// Service-assigned campaign handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(pub u64);

/// Scheduling priority; higher runs first.
pub type Priority = u8;

/// Where a campaign is in its service lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Waiting for capacity.
    Queued,
    /// Executing; `round` is the last completed global round.
    Running {
        /// Last completed global round.
        round: u64,
    },
    /// Preempted (checkpointed and re-queued); resumes from `round`.
    Paused {
        /// Round the pause checkpoint was taken at.
        round: u64,
    },
    /// Finished; the coverage report is available.
    Done,
    /// Could not run or resume.
    Failed(
        /// Human-readable reason.
        String,
    ),
}

struct Entry {
    priority: Priority,
    spec: CampaignSpec,
    demand: usize,
    status: CampaignStatus,
    report: Option<String>,
    resume_round: u64,
    /// Release version `resume_round` belongs to (0 for plain campaigns).
    resume_sequence_version: u64,
    resume_digest: Option<CampaignDigest>,
    pause: Arc<AtomicBool>,
    /// Mid-export: the scheduler must not (re-)admit this campaign while
    /// its checkpoint is being handed to another shard.
    migrating: bool,
}

struct State {
    entries: BTreeMap<u64, Entry>,
    /// Queued (or paused-and-requeued) campaign ids.
    queue: Vec<u64>,
    /// Currently running campaign ids.
    running: Vec<u64>,
    next_id: u64,
    /// Graceful stop: drain the queue, then exit.
    stop: bool,
    /// Abrupt kill: exit *now*, no final checkpoints.
    crashed: bool,
    /// Draining: every running campaign checkpoints and yields, nothing
    /// new is admitted or accepted (the migration-ready quiescent state).
    draining: bool,
}

struct Shared {
    config: ServiceConfig,
    store: CheckpointStore,
    state: Mutex<State>,
    cv: Condvar,
}

/// The campaign service. Dropping it without [`CampaignService::shutdown`]
/// or [`CampaignService::crash`] crashes it (abrupt, like process death).
pub struct CampaignService {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
}

impl CampaignService {
    /// Starts a service with an empty queue.
    pub fn start(config: ServiceConfig) -> Result<Self, ServiceError> {
        let store = CheckpointStore::new(config.checkpoint_dir.clone())?;
        let shared = Arc::new(Shared {
            config,
            store,
            state: Mutex::new(State {
                entries: BTreeMap::new(),
                queue: Vec::new(),
                running: Vec::new(),
                next_id: 1,
                stop: false,
                crashed: false,
                draining: false,
            }),
            cv: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        Ok(CampaignService {
            shared,
            scheduler: Some(scheduler),
        })
    }

    /// Restarts a killed service from its checkpoint directory: every
    /// readable checkpoint is re-enqueued at its stored priority and will
    /// resume from its stored round. Unreadable checkpoints are left on
    /// disk and reported, never panicked on.
    pub fn recover(config: ServiceConfig) -> Result<(Self, RecoveryReport), ServiceError> {
        let service = CampaignService::start(config)?;
        let mut report = RecoveryReport::default();
        let paths = service.shared.store.list()?;
        for path in paths {
            match service.shared.store.load(&path) {
                Ok(ckpt) => {
                    let id = service.enqueue_checkpoint(ckpt);
                    report.resumed.push(id);
                }
                Err(e) => report.rejected.push((path, e)),
            }
        }
        taopt_telemetry::global()
            .counter("service_recoveries_total")
            .inc();
        Ok((service, report))
    }

    fn enqueue_checkpoint(&self, ckpt: Checkpoint) -> CampaignId {
        let mut st = self.shared.state.lock();
        let id = st.next_id.max(ckpt.campaign + 1);
        st.next_id = id;
        st.entries.insert(
            ckpt.campaign,
            Entry {
                priority: ckpt.priority,
                demand: ckpt.spec.device_demand(),
                status: if ckpt.round > 0 || ckpt.sequence_version > 0 {
                    CampaignStatus::Paused { round: ckpt.round }
                } else {
                    CampaignStatus::Queued
                },
                report: None,
                resume_round: ckpt.round,
                resume_sequence_version: ckpt.sequence_version,
                resume_digest: ckpt.digest,
                pause: Arc::new(AtomicBool::new(false)),
                migrating: false,
                spec: ckpt.spec,
            },
        );
        st.queue.push(ckpt.campaign);
        self.shared.cv.notify_all();
        CampaignId(ckpt.campaign)
    }

    /// Submits a campaign. Admission control rejects specs the farm can
    /// never satisfy; accepted submissions are durable (a round-0
    /// checkpoint hits disk before this returns).
    pub fn submit(
        &self,
        spec: CampaignSpec,
        priority: Priority,
    ) -> Result<CampaignId, ServiceError> {
        let demand = spec.device_demand();
        if demand > self.shared.config.farm_capacity {
            return Err(ServiceError::Rejected(format!(
                "spec demands {demand} devices, farm has {}",
                self.shared.config.farm_capacity
            )));
        }
        // Validate the recipe up front: unknown apps fail the submitter,
        // not a runner thread later.
        let _ = spec.build()?;
        let id = {
            let mut st = self.shared.state.lock();
            if st.stop || st.crashed || st.draining {
                return Err(ServiceError::Rejected(
                    "service is shutting down".to_owned(),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        self.shared.store.save(&Checkpoint {
            version: CHECKPOINT_VERSION,
            campaign: id,
            priority,
            round: 0,
            sequence_version: 0,
            spec: spec.clone(),
            digest: None,
        })?;
        {
            let mut st = self.shared.state.lock();
            st.entries.insert(
                id,
                Entry {
                    priority,
                    demand,
                    status: CampaignStatus::Queued,
                    report: None,
                    resume_round: 0,
                    resume_sequence_version: 0,
                    resume_digest: None,
                    pause: Arc::new(AtomicBool::new(false)),
                    migrating: false,
                    spec,
                },
            );
            st.queue.push(id);
        }
        let t = taopt_telemetry::global();
        t.counter("service_campaigns_submitted_total").inc();
        self.shared.cv.notify_all();
        Ok(CampaignId(id))
    }

    /// Current status of a campaign.
    pub fn status(&self, id: CampaignId) -> Result<CampaignStatus, ServiceError> {
        let st = self.shared.state.lock();
        st.entries
            .get(&id.0)
            .map(|e| e.status.clone())
            .ok_or(ServiceError::UnknownCampaign(id.0))
    }

    /// Blocks until a campaign reaches a terminal state, returning it.
    pub fn wait(&self, id: CampaignId) -> Result<CampaignStatus, ServiceError> {
        loop {
            if let Some(status) = self.wait_timeout(id, Duration::from_secs(3600))? {
                return Ok(status);
            }
        }
    }

    /// Blocks until a campaign reaches a terminal state or `timeout`
    /// elapses, whichever comes first. Returns `Ok(None)` on timeout —
    /// the bounded primitive network handlers use so a slow campaign can
    /// never hang a connection forever.
    pub fn wait_timeout(
        &self,
        id: CampaignId,
        timeout: Duration,
    ) -> Result<Option<CampaignStatus>, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            match st.entries.get(&id.0) {
                None => return Err(ServiceError::UnknownCampaign(id.0)),
                Some(e) => match &e.status {
                    CampaignStatus::Done | CampaignStatus::Failed(_) => {
                        return Ok(Some(e.status.clone()))
                    }
                    _ => {}
                },
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let res = self.shared.cv.wait_for(&mut st, deadline - now);
            if res.timed_out() {
                // Re-check the status once before reporting the timeout:
                // the state may have turned terminal as the clock ran out.
                if let Some(e) = st.entries.get(&id.0) {
                    if matches!(e.status, CampaignStatus::Done | CampaignStatus::Failed(_)) {
                        return Ok(Some(e.status.clone()));
                    }
                }
                return Ok(None);
            }
        }
    }

    /// Blocks until every submitted campaign is terminal.
    pub fn wait_all(&self) {
        let mut st = self.shared.state.lock();
        while st
            .entries
            .values()
            .any(|e| !matches!(e.status, CampaignStatus::Done | CampaignStatus::Failed(_)))
        {
            self.shared.cv.wait(&mut st);
        }
    }

    /// The finished campaign's canonical coverage report
    /// ([`taopt::CampaignResult::coverage_report`]), if it completed.
    pub fn result(&self, id: CampaignId) -> Result<Option<String>, ServiceError> {
        let st = self.shared.state.lock();
        st.entries
            .get(&id.0)
            .map(|e| e.report.clone())
            .ok_or(ServiceError::UnknownCampaign(id.0))
    }

    /// Kills the service abruptly: runners exit at their next round
    /// boundary *without* writing a final checkpoint, exactly like a
    /// process death. The last durable checkpoints stay on disk for
    /// [`CampaignService::recover`].
    pub fn crash(mut self) {
        taopt_telemetry::global().fault(FaultKind::ServiceKilled.label(), None, VirtualTime::ZERO);
        {
            let mut st = self.shared.state.lock();
            st.crashed = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: waits for every queued and running campaign to
    /// reach a terminal state, then stops the scheduler. After a
    /// [`CampaignService::drain`] there is nothing to wait for — the
    /// checkpointed queue stays durable on disk for a later recover.
    pub fn shutdown(mut self) {
        if !self.shared.state.lock().draining {
            self.wait_all();
        }
        {
            let mut st = self.shared.state.lock();
            st.stop = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Number of campaigns not yet terminal (queued, running or paused)
    /// — the application-level load signal network front ends throttle
    /// on.
    pub fn pending_campaigns(&self) -> usize {
        let st = self.shared.state.lock();
        st.entries
            .values()
            .filter(|e| !matches!(e.status, CampaignStatus::Done | CampaignStatus::Failed(_)))
            .count()
    }

    /// Prometheus-format snapshot of the process-global telemetry
    /// registry (the service's live status endpoint).
    pub fn metrics_text(&self) -> String {
        taopt_telemetry::global().render_prometheus()
    }

    /// Graceful drain: stops accepting submissions, asks every running
    /// campaign to checkpoint and yield, and blocks until the service is
    /// quiescent. Returns the campaigns that now sit on disk as durable
    /// checkpoints, ready for [`CampaignService::export_checkpoint`] or a
    /// later [`CampaignService::recover`].
    pub fn drain(&self) -> Vec<CampaignId> {
        let mut st = self.shared.state.lock();
        st.draining = true;
        for id in st.running.clone() {
            if let Some(e) = st.entries.get(&id) {
                e.pause.store(true, Ordering::SeqCst);
            }
        }
        self.shared.cv.notify_all();
        while !st.running.is_empty() && !st.crashed {
            self.shared.cv.wait(&mut st);
        }
        let checkpointed: Vec<CampaignId> = st
            .entries
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.status,
                    CampaignStatus::Queued | CampaignStatus::Paused { .. }
                )
            })
            .map(|(id, _)| CampaignId(*id))
            .collect();
        drop(st);
        taopt_telemetry::global()
            .counter("service_drains_total")
            .inc();
        checkpointed
    }

    /// Exports a campaign's durable checkpoint for migration to another
    /// shard, *detaching* it from this service: a running campaign is
    /// preempted first (checkpoint at its next round boundary), then the
    /// entry and its local checkpoint file are removed so the campaign
    /// cannot run on both shards. Terminal campaigns cannot be exported.
    pub fn export_checkpoint(&self, id: CampaignId) -> Result<Checkpoint, ServiceError> {
        let mut st = self.shared.state.lock();
        loop {
            if st.crashed || st.stop {
                return Err(ServiceError::Rejected(
                    "service is shutting down".to_owned(),
                ));
            }
            let e = st
                .entries
                .get_mut(&id.0)
                .ok_or(ServiceError::UnknownCampaign(id.0))?;
            match e.status {
                CampaignStatus::Done | CampaignStatus::Failed(_) => {
                    return Err(ServiceError::Rejected(format!(
                        "campaign {} is terminal; nothing to migrate",
                        id.0
                    )));
                }
                CampaignStatus::Running { .. } => {
                    // Preempt, and pin the entry so the scheduler cannot
                    // re-admit it between the pause and the detach.
                    e.migrating = true;
                    e.pause.store(true, Ordering::SeqCst);
                    self.shared.cv.notify_all();
                    self.shared.cv.wait(&mut st);
                }
                CampaignStatus::Queued | CampaignStatus::Paused { .. } => {
                    e.migrating = true;
                    break;
                }
            }
        }
        let ckpt = match self.shared.store.load(&self.shared.store.path_for(id.0)) {
            Ok(c) => c,
            Err(err) => {
                // Leave the campaign schedulable: the export failed, the
                // shard still owns it.
                if let Some(e) = st.entries.get_mut(&id.0) {
                    e.migrating = false;
                }
                self.shared.cv.notify_all();
                return Err(err);
            }
        };
        st.queue.retain(|q| *q != id.0);
        st.entries.remove(&id.0);
        drop(st);
        self.shared.store.remove(id.0);
        taopt_telemetry::global()
            .counter("service_exports_total")
            .inc();
        self.shared.cv.notify_all();
        Ok(ckpt)
    }

    /// Admits a checkpoint exported by another shard. The campaign gets a
    /// fresh local id, its checkpoint is made durable here before this
    /// returns, and it resumes by deterministic replay — the stored
    /// [`CampaignDigest`] is verified at the checkpointed round, so a
    /// tampered or diverging checkpoint fails the campaign with a clean
    /// [`ServiceError::DigestMismatch`] rather than producing silently
    /// wrong results. Admission control applies exactly as for
    /// [`CampaignService::submit`].
    pub fn import_checkpoint(&self, ckpt: Checkpoint) -> Result<CampaignId, ServiceError> {
        let demand = ckpt.spec.device_demand();
        if demand > self.shared.config.farm_capacity {
            return Err(ServiceError::Rejected(format!(
                "checkpoint demands {demand} devices, farm has {}",
                self.shared.config.farm_capacity
            )));
        }
        // Validate the recipe up front: unknown apps fail the importer.
        let _ = ckpt.spec.build()?;
        let id = {
            let mut st = self.shared.state.lock();
            if st.stop || st.crashed || st.draining {
                return Err(ServiceError::Rejected(
                    "service is shutting down".to_owned(),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        let ckpt = Checkpoint {
            campaign: id,
            ..ckpt
        };
        self.shared.store.save(&ckpt)?;
        {
            let mut st = self.shared.state.lock();
            st.entries.insert(
                id,
                Entry {
                    priority: ckpt.priority,
                    demand,
                    status: if ckpt.round > 0 || ckpt.sequence_version > 0 {
                        CampaignStatus::Paused { round: ckpt.round }
                    } else {
                        CampaignStatus::Queued
                    },
                    report: None,
                    resume_round: ckpt.round,
                    resume_sequence_version: ckpt.sequence_version,
                    resume_digest: ckpt.digest,
                    pause: Arc::new(AtomicBool::new(false)),
                    migrating: false,
                    spec: ckpt.spec,
                },
            );
            st.queue.push(id);
        }
        taopt_telemetry::global()
            .counter("service_imports_total")
            .inc();
        self.shared.cv.notify_all();
        Ok(CampaignId(id))
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        if let Some(h) = self.scheduler.take() {
            {
                let mut st = self.shared.state.lock();
                st.crashed = true;
            }
            self.shared.cv.notify_all();
            let _ = h.join();
        }
    }
}

/// What [`CampaignService::recover`] found in the checkpoint directory.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Campaigns re-enqueued from durable checkpoints.
    pub resumed: Vec<CampaignId>,
    /// Checkpoint files that failed validation, with their errors.
    pub rejected: Vec<(PathBuf, ServiceError)>,
}

/// Scheduler: admits queued campaigns against the capacity budget and
/// joins runner threads on exit.
fn scheduler_loop(shared: &Arc<Shared>) {
    let telemetry = taopt_telemetry::global();
    let queue_gauge = telemetry.gauge("service_queue_depth");
    let running_gauge = telemetry.gauge("service_running_campaigns");
    let leased_gauge = telemetry.gauge("service_capacity_leased");
    let preemptions = telemetry.counter("service_preemptions_total");
    let mut runners: Vec<JoinHandle<()>> = Vec::new();

    let mut st = shared.state.lock();
    loop {
        if st.crashed || (st.stop && st.running.is_empty() && (st.queue.is_empty() || st.draining))
        {
            break;
        }

        // Highest priority first; FIFO (lowest id) within a priority.
        // Entries mid-export and a draining service admit nothing: drain
        // means "reach the quiescent all-checkpointed state", and an
        // exported campaign must not restart under the exporter's feet.
        let mut order: Vec<u64> = if st.draining {
            Vec::new()
        } else {
            st.queue
                .iter()
                .copied()
                .filter(|id| !st.entries[id].migrating)
                .collect()
        };
        order.sort_by_key(|id| {
            let e = &st.entries[id];
            (std::cmp::Reverse(e.priority), *id)
        });
        let mut leased: usize = st.running.iter().map(|id| st.entries[id].demand).sum();
        for id in order {
            let (demand, priority) = {
                let e = &st.entries[&id];
                (e.demand, e.priority)
            };
            if leased + demand <= shared.config.farm_capacity {
                st.queue.retain(|q| *q != id);
                st.running.push(id);
                leased += demand;
                let e = st.entries.get_mut(&id).expect("queued entry exists");
                e.status = CampaignStatus::Running {
                    round: e.resume_round,
                };
                let shared = Arc::clone(shared);
                runners.push(std::thread::spawn(move || run_one(&shared, id)));
            } else {
                // Preemption: ask the lowest-priority strictly-outranked
                // runners to yield until this campaign would fit. They
                // checkpoint at their next boundary and re-queue; this
                // campaign is admitted on a later pass once capacity
                // actually frees.
                let mut victims: Vec<(Priority, u64)> = st
                    .running
                    .iter()
                    .map(|r| (st.entries[r].priority, *r))
                    .filter(|(p, _)| *p < priority)
                    .collect();
                victims.sort();
                let mut reclaimable = shared.config.farm_capacity - leased;
                for (_, victim) in victims {
                    if reclaimable >= demand {
                        break;
                    }
                    let v = &st.entries[&victim];
                    if !v.pause.swap(true, Ordering::SeqCst) {
                        preemptions.inc();
                    }
                    reclaimable += v.demand;
                }
                // Strict priority order: do not backfill lower-priority
                // campaigns past a blocked higher-priority one.
                break;
            }
        }

        queue_gauge.set(st.queue.len() as i64);
        running_gauge.set(st.running.len() as i64);
        leased_gauge.set(
            st.running
                .iter()
                .map(|id| st.entries[id].demand)
                .sum::<usize>() as i64,
        );
        shared.cv.wait(&mut st);
    }
    let crashed = st.crashed;
    drop(st);
    for h in runners {
        let _ = h.join();
    }
    if !crashed {
        queue_gauge.set(0);
        running_gauge.set(0);
        leased_gauge.set(0);
    }
}

/// Marks a campaign failed and wakes every waiter.
fn record_failure(shared: &Arc<Shared>, id: u64, why: String) {
    let mut st = shared.state.lock();
    st.running.retain(|r| *r != id);
    if let Some(e) = st.entries.get_mut(&id) {
        e.status = CampaignStatus::Failed(why);
    }
    drop(st);
    shared.cv.notify_all();
}

/// Marks a campaign done with its report and drops its checkpoint.
fn record_completion(shared: &Arc<Shared>, id: u64, report: String) {
    shared.store.remove(id);
    {
        let mut st = shared.state.lock();
        st.running.retain(|r| *r != id);
        if let Some(e) = st.entries.get_mut(&id) {
            e.status = CampaignStatus::Done;
            e.report = Some(report);
        }
    }
    taopt_telemetry::global()
        .counter("service_campaigns_completed_total")
        .inc();
    shared.cv.notify_all();
}

/// Deterministic replay of a freshly built campaign back to a
/// checkpointed round, then digest verification: a corrupted spec, a
/// version skew, or a determinism regression all surface here as a clean
/// failure.
fn replay_to(
    campaign: &mut Campaign,
    round: u64,
    digest: Option<&CampaignDigest>,
) -> Result<(), ServiceError> {
    while campaign.round() < round {
        if !campaign.advance_round() {
            break;
        }
    }
    if campaign.round() != round {
        return Err(ServiceError::DigestMismatch {
            round: campaign.round(),
            detail: format!("replay ended before checkpoint round {round}"),
        });
    }
    if let Some(expected) = digest {
        let actual = campaign.digest();
        if let Some(divergence) = expected.diff(&actual) {
            return Err(ServiceError::DigestMismatch {
                round,
                detail: divergence,
            });
        }
    }
    Ok(())
}

/// Records resume telemetry after a successful replay.
fn note_resume(id: u64, spec: &CampaignSpec, resume_round: u64, restore_start: Instant) {
    let telemetry = taopt_telemetry::global();
    let latency_us = restore_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    telemetry
        .registry()
        .histogram("service_resume_latency_us", Labels::instance(id as u32))
        .record(latency_us);
    telemetry.recovery(
        RecoveryKind::ServiceResumed.label(),
        Some(id as u32),
        VirtualTime::from_millis(spec.scale.tick.as_millis().saturating_mul(resume_round)),
    );
    telemetry.counter("service_resumes_total").inc();
}

/// Outcome of driving one campaign's round loop.
enum Drive {
    /// The campaign exhausted its rounds; the caller finishes it.
    Completed,
    /// The runner must exit now: crashed, paused-and-requeued, or failed
    /// (terminal state already recorded).
    Exit,
}

/// Drives a campaign's rounds with pause handling and cadence
/// checkpoints. `sequence_version` is the release the rounds belong to
/// (0 for plain campaigns) — it rides into every checkpoint written here.
#[allow(clippy::too_many_arguments)]
fn drive_rounds(
    shared: &Arc<Shared>,
    id: u64,
    spec: &CampaignSpec,
    priority: Priority,
    sequence_version: u64,
    pause: &AtomicBool,
    round_gauge: &taopt_telemetry::Gauge,
    campaign: &mut Campaign,
) -> Drive {
    let every = shared.config.checkpoint_every.max(1);
    loop {
        {
            let st = shared.state.lock();
            if st.crashed {
                // Process death: no final checkpoint; the last durable one
                // stands and recover() will replay past this point.
                return Drive::Exit;
            }
        }
        if pause.swap(false, Ordering::SeqCst) {
            let round = campaign.round();
            let digest = campaign.digest();
            let ckpt = Checkpoint {
                version: CHECKPOINT_VERSION,
                campaign: id,
                priority,
                round,
                sequence_version,
                spec: spec.clone(),
                digest: Some(digest.clone()),
            };
            if let Err(e) = shared.store.save(&ckpt) {
                record_failure(shared, id, e.to_string());
                return Drive::Exit;
            }
            let mut st = shared.state.lock();
            st.running.retain(|r| *r != id);
            if let Some(e) = st.entries.get_mut(&id) {
                e.status = CampaignStatus::Paused { round };
                e.resume_round = round;
                e.resume_sequence_version = sequence_version;
                e.resume_digest = Some(digest);
            }
            st.queue.push(id);
            drop(st);
            shared.cv.notify_all();
            return Drive::Exit;
        }

        let advanced = campaign.advance_round();
        let round = campaign.round();
        round_gauge.set(round as i64);
        {
            let mut st = shared.state.lock();
            if let Some(e) = st.entries.get_mut(&id) {
                e.status = CampaignStatus::Running { round };
            }
        }
        if !advanced {
            return Drive::Completed;
        }
        if round.is_multiple_of(every) {
            let digest = campaign.digest();
            let ckpt = Checkpoint {
                version: CHECKPOINT_VERSION,
                campaign: id,
                priority,
                round,
                sequence_version,
                spec: spec.clone(),
                digest: Some(digest),
            };
            if let Err(e) = shared.store.save(&ckpt) {
                record_failure(shared, id, e.to_string());
                return Drive::Exit;
            }
        }
    }
}

/// Runner: replays to the resume point if any, then drives the campaign
/// round loop with cadence checkpoints until done, paused, or crashed.
/// Specs with an evolution section run the whole release train in here,
/// one campaign per version, with the checkpoint cursor tracking which
/// release the stored round belongs to.
fn run_one(shared: &Arc<Shared>, id: u64) {
    let telemetry = taopt_telemetry::global();
    let round_gauge = telemetry
        .registry()
        .gauge("service_campaign_round", Labels::instance(id as u32));
    let (spec, priority, resume_round, resume_sequence, resume_digest, pause) = {
        let st = shared.state.lock();
        let e = &st.entries[&id];
        (
            e.spec.clone(),
            e.priority,
            e.resume_round,
            e.resume_sequence_version,
            e.resume_digest.clone(),
            Arc::clone(&e.pause),
        )
    };

    let built = match spec.build() {
        Ok(b) => b,
        Err(e) => return record_failure(shared, id, e.to_string()),
    };
    let (apps, config) = built;
    let restore_start = Instant::now();

    let Some(evo) = spec.evolution else {
        // Plain single-version campaign.
        let mut campaign = Campaign::new(apps, &config);
        if resume_round > 0 {
            if let Err(e) = replay_to(&mut campaign, resume_round, resume_digest.as_ref()) {
                return record_failure(shared, id, e.to_string());
            }
            note_resume(id, &spec, resume_round, restore_start);
        }
        match drive_rounds(
            shared,
            id,
            &spec,
            priority,
            0,
            &pause,
            &round_gauge,
            &mut campaign,
        ) {
            Drive::Exit => return,
            Drive::Completed => {}
        }
        let report = campaign.finish().coverage_report();
        return record_completion(shared, id, report);
    };

    // Evolution campaign: one deterministic campaign per release.
    // Releases before the checkpoint cursor are replayed in full (their
    // results rebuild the warm-start state the interrupted release was
    // seeded from); the cursor release replays to its stored round and
    // verifies the digest; everything after runs live.
    let resumed = resume_round > 0 || resume_sequence > 0;
    let mut sequence =
        CampaignSequence::new(apps, AppEvolution::new(evo.seed), evo.versions, evo.warm);
    let mut versions_out: Vec<Value> = Vec::new();
    while !sequence.is_done() {
        let version = sequence.version();
        let run_apps = match sequence.begin_version() {
            Ok(a) => a,
            Err(e) => return record_failure(shared, id, e.to_string()),
        };
        let mut campaign = Campaign::new(run_apps, &config);
        if version < resume_sequence {
            while campaign.advance_round() {}
        } else {
            if resumed && version == resume_sequence {
                if let Err(e) = replay_to(&mut campaign, resume_round, resume_digest.as_ref()) {
                    return record_failure(shared, id, e.to_string());
                }
                note_resume(id, &spec, resume_round, restore_start);
            }
            match drive_rounds(
                shared,
                id,
                &spec,
                priority,
                version,
                &pause,
                &round_gauge,
                &mut campaign,
            ) {
                Drive::Exit => return,
                Drive::Completed => {}
            }
        }
        let result = campaign.finish();
        let coverage = result.coverage_report();
        let report = sequence.complete_version(&result);
        versions_out.push(Value::Object(vec![
            ("version".to_owned(), Value::UInt(version)),
            ("evolution".to_owned(), report.to_value()),
            (
                "coverage".to_owned(),
                match Value::parse(&coverage) {
                    Ok(v) => v,
                    Err(_) => Value::Str(coverage),
                },
            ),
        ]));
    }
    let report = Value::Object(vec![
        ("name".to_owned(), Value::Str(spec.name.clone())),
        ("versions".to_owned(), Value::Array(versions_out)),
    ])
    .to_json_string();
    record_completion(shared, id, report);
}
