//! Serializable campaign specifications.
//!
//! A [`CampaignSpec`] is the *complete* input of a deterministic campaign
//! run: which apps (by catalog name or generator recipe — never by live
//! object), which tool/mode/seed per app, the experiment scale, and every
//! [`taopt::CampaignConfig`] knob. Because the campaign runtime is a pure
//! function of this spec, a durable checkpoint only ever needs to store
//! the spec plus a round number and digest — rebuilding and replaying
//! reproduces the interrupted run byte-for-byte (DESIGN.md §13).

use std::sync::Arc;

use taopt::experiments::ExperimentScale;
use taopt::{CampaignApp, CampaignConfig, KillEvent, RunMode};
use taopt_app_sim::{catalog_entries, generate_app, GeneratorConfig};
use taopt_chaos::FaultPlan;
use taopt_tools::ToolKind;
use taopt_ui_model::json::{JsonError, Value};
use taopt_ui_model::VirtualDuration;

use crate::error::ServiceError;

/// Where an app under test comes from. Only *recipes* are serializable;
/// the app object itself is rebuilt deterministically on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSource {
    /// A named entry of the built-in catalog.
    Catalog(String),
    /// A generated small app ([`GeneratorConfig::small`]).
    Small {
        /// Generator name (also the report key).
        name: String,
        /// Generator seed.
        seed: u64,
    },
}

impl AppSource {
    /// The app's display name.
    pub fn name(&self) -> &str {
        match self {
            AppSource::Catalog(name) => name,
            AppSource::Small { name, .. } => name,
        }
    }

    fn build(&self) -> Result<Arc<taopt_app_sim::App>, ServiceError> {
        match self {
            AppSource::Catalog(name) => catalog_entries()
                .into_iter()
                .find(|e| e.name == name)
                .map(|e| Arc::new(e.generate()))
                .ok_or_else(|| ServiceError::UnknownApp(name.clone())),
            AppSource::Small { name, seed } => generate_app(&GeneratorConfig::small(name, *seed))
                .map(Arc::new)
                .map_err(|e| ServiceError::Rejected(format!("app generation failed: {e}"))),
        }
    }
}

/// Longitudinal-sequence section of a campaign spec: run the campaign
/// once per app release instead of once, evolving every app between
/// versions and optionally threading warm-start analyzer state across
/// release boundaries.
///
/// Absent from pre-evolution specs (and their checkpoints); parsing
/// defaults to `None`, which means a plain single-version campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvolutionSpec {
    /// Seed of the [`taopt_app_sim::AppEvolution`] release sampler.
    pub seed: u64,
    /// Total releases to run (`1` = only `V0`).
    pub versions: u64,
    /// Thread [`taopt::WarmStart`] bundles across release boundaries.
    pub warm: bool,
}

impl EvolutionSpec {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("seed".to_owned(), Value::UInt(self.seed)),
            ("versions".to_owned(), Value::UInt(self.versions)),
            ("warm".to_owned(), Value::Bool(self.warm)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let u = |key: &str| -> Result<u64, JsonError> {
            v.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::conversion(format!("evolution `{key}` must be a u64")))
        };
        let warm = match v.require("warm")? {
            Value::Bool(b) => *b,
            _ => return Err(JsonError::conversion("evolution `warm` must be a bool")),
        };
        Ok(EvolutionSpec {
            seed: u("seed")?,
            versions: u("versions")?.max(1),
            warm,
        })
    }
}

/// One app slot of a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// The app recipe.
    pub source: AppSource,
    /// Testing tool driving this app's instances.
    pub tool: ToolKind,
    /// Run mode.
    pub mode: RunMode,
    /// Session base seed.
    pub seed: u64,
}

/// The complete, serializable input of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign display name.
    pub name: String,
    /// Apps under test, in input order.
    pub apps: Vec<AppSpec>,
    /// Per-app experiment scale (instances, duration, tick, ...).
    pub scale: ExperimentScale,
    /// Worker threads for the parallel phase (legacy alias of
    /// `host_threads`; see [`CampaignConfig::workers`]).
    pub workers: usize,
    /// Campaign-wide host compute-thread budget shared by round
    /// advancement and analysis (`0` = auto-detect). Never affects
    /// results — only host-side speed — so a checkpoint written under
    /// one budget restores byte-identical under another.
    pub host_threads: usize,
    /// Shared farm capacity override.
    pub capacity: Option<usize>,
    /// Rounds a lease is protected from starvation revocation.
    pub min_hold_rounds: u64,
    /// Hard round stop.
    pub max_rounds: u64,
    /// Scheduled device kills.
    pub kills: Vec<KillEvent>,
    /// Optional deterministic fault plan.
    pub faults: Option<FaultPlan>,
    /// Optional longitudinal sequence over app releases.
    pub evolution: Option<EvolutionSpec>,
}

impl CampaignSpec {
    /// A spec with the default campaign knobs for `apps`.
    pub fn new(name: impl Into<String>, apps: Vec<AppSpec>, scale: ExperimentScale) -> Self {
        let defaults = CampaignConfig::default();
        CampaignSpec {
            name: name.into(),
            apps,
            scale,
            workers: defaults.workers,
            host_threads: defaults.host_threads,
            capacity: defaults.capacity,
            min_hold_rounds: defaults.min_hold_rounds,
            max_rounds: defaults.max_rounds,
            kills: Vec::new(),
            faults: None,
            evolution: None,
        }
    }

    /// Peak device demand: what the campaign asks of the shared farm when
    /// uncontended (admission-control currency).
    pub fn device_demand(&self) -> usize {
        self.capacity
            .unwrap_or(self.apps.len() * self.scale.instances)
            .max(1)
    }

    /// Materializes the spec into runnable campaign inputs. Pure: the
    /// same spec always builds the same apps and config.
    pub fn build(&self) -> Result<(Vec<CampaignApp>, CampaignConfig), ServiceError> {
        if self.apps.is_empty() {
            return Err(ServiceError::Rejected("spec has no apps".to_owned()));
        }
        let mut apps = Vec::with_capacity(self.apps.len());
        for a in &self.apps {
            let app = a.source.build()?;
            apps.push(CampaignApp {
                name: a.source.name().to_owned(),
                app,
                config: self.scale.session_config(a.tool, a.mode, a.seed),
            });
        }
        let config = CampaignConfig {
            workers: self.workers,
            host_threads: self.host_threads,
            scoped_threads: false,
            capacity: self.capacity,
            min_hold_rounds: self.min_hold_rounds,
            kills: self.kills.clone(),
            bus: None,
            faults: self.faults.clone(),
            max_rounds: self.max_rounds,
        };
        Ok((apps, config))
    }

    /// Serializes the spec to a JSON value.
    pub fn to_value(&self) -> Value {
        let apps = self
            .apps
            .iter()
            .map(|a| {
                let source = match &a.source {
                    AppSource::Catalog(name) => {
                        Value::Object(vec![("catalog".to_owned(), Value::Str(name.clone()))])
                    }
                    AppSource::Small { name, seed } => Value::Object(vec![
                        ("small".to_owned(), Value::Str(name.clone())),
                        ("app_seed".to_owned(), Value::UInt(*seed)),
                    ]),
                };
                Value::Object(vec![
                    ("source".to_owned(), source),
                    ("tool".to_owned(), Value::Str(a.tool.name().to_owned())),
                    ("mode".to_owned(), Value::Str(a.mode.label().to_owned())),
                    ("seed".to_owned(), Value::UInt(a.seed)),
                ])
            })
            .collect();
        let kills = self
            .kills
            .iter()
            .map(|k| {
                Value::Object(vec![
                    ("round".to_owned(), Value::UInt(k.round)),
                    ("victim".to_owned(), Value::UInt(k.victim)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("apps".to_owned(), Value::Array(apps)),
            ("scale".to_owned(), scale_to_value(&self.scale)),
            ("workers".to_owned(), Value::UInt(self.workers as u64)),
            (
                "host_threads".to_owned(),
                Value::UInt(self.host_threads as u64),
            ),
            (
                "capacity".to_owned(),
                self.capacity.map_or(Value::Null, |c| Value::UInt(c as u64)),
            ),
            (
                "min_hold_rounds".to_owned(),
                Value::UInt(self.min_hold_rounds),
            ),
            ("max_rounds".to_owned(), Value::UInt(self.max_rounds)),
            ("kills".to_owned(), Value::Array(kills)),
        ];
        if let Some(plan) = &self.faults {
            fields.push(("faults".to_owned(), plan.to_value()));
        }
        if let Some(evo) = self.evolution {
            fields.push(("evolution".to_owned(), evo.to_value()));
        }
        Value::Object(fields)
    }

    /// Deserializes a spec, failing with [`JsonError`] on missing or
    /// mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let apps_v = v
            .require("apps")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("apps must be an array"))?;
        let mut apps = Vec::with_capacity(apps_v.len());
        for av in apps_v {
            let sv = av.require("source")?;
            let source = if let Some(name) = sv.get("catalog").and_then(|n| n.as_str()) {
                AppSource::Catalog(name.to_owned())
            } else if let Some(name) = sv.get("small").and_then(|n| n.as_str()) {
                AppSource::Small {
                    name: name.to_owned(),
                    seed: sv
                        .require("app_seed")?
                        .as_u64()
                        .ok_or_else(|| JsonError::conversion("app_seed must be a u64"))?,
                }
            } else {
                return Err(JsonError::conversion(
                    "source must carry `catalog` or `small`",
                ));
            };
            apps.push(AppSpec {
                source,
                tool: parse_tool(
                    av.require("tool")?
                        .as_str()
                        .ok_or_else(|| JsonError::conversion("tool must be a string"))?,
                )?,
                mode: parse_mode(
                    av.require("mode")?
                        .as_str()
                        .ok_or_else(|| JsonError::conversion("mode must be a string"))?,
                )?,
                seed: av
                    .require("seed")?
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("seed must be a u64"))?,
            });
        }
        let kills_v = v
            .require("kills")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("kills must be an array"))?;
        let mut kills = Vec::with_capacity(kills_v.len());
        for kv in kills_v {
            let u = |key: &str| -> Result<u64, JsonError> {
                kv.require(key)?
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion(format!("kill `{key}` must be a u64")))
            };
            kills.push(KillEvent {
                round: u("round")?,
                victim: u("victim")?,
            });
        }
        let u = |key: &str| -> Result<u64, JsonError> {
            v.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::conversion(format!("field `{key}` must be a u64")))
        };
        Ok(CampaignSpec {
            name: v
                .require("name")?
                .as_str()
                .ok_or_else(|| JsonError::conversion("name must be a string"))?
                .to_owned(),
            apps,
            scale: scale_from_value(v.require("scale")?)?,
            workers: u("workers")? as usize,
            // Optional for back-compat: checkpoints written before the
            // host-budget knob parse as 0 (auto-detect) — safe because
            // the budget never affects results.
            host_threads: match v.get("host_threads") {
                None | Some(Value::Null) => 0,
                Some(h) => h
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("host_threads must be a u64"))?
                    as usize,
            },
            capacity: match v.get("capacity") {
                None | Some(Value::Null) => None,
                Some(c) => Some(
                    c.as_u64()
                        .ok_or_else(|| JsonError::conversion("capacity must be a u64"))?
                        as usize,
                ),
            },
            min_hold_rounds: u("min_hold_rounds")?,
            max_rounds: u("max_rounds")?,
            kills,
            faults: match v.get("faults") {
                None | Some(Value::Null) => None,
                Some(fv) => Some(FaultPlan::from_value(fv)?),
            },
            // Optional for back-compat: pre-evolution specs (and their
            // checkpoints) have no `evolution` section and stay plain
            // single-version campaigns.
            evolution: match v.get("evolution") {
                None | Some(Value::Null) => None,
                Some(ev) => Some(EvolutionSpec::from_value(ev)?),
            },
        })
    }
}

fn scale_to_value(s: &ExperimentScale) -> Value {
    Value::Object(vec![
        ("instances".to_owned(), Value::UInt(s.instances as u64)),
        (
            "duration_ms".to_owned(),
            Value::UInt(s.duration.as_millis()),
        ),
        ("tick_ms".to_owned(), Value::UInt(s.tick.as_millis())),
        (
            "stall_timeout_ms".to_owned(),
            Value::UInt(s.stall_timeout.as_millis()),
        ),
        (
            "l_min_short_ms".to_owned(),
            Value::UInt(s.l_min_short.as_millis()),
        ),
        (
            "l_min_long_ms".to_owned(),
            Value::UInt(s.l_min_long.as_millis()),
        ),
        ("grid_points".to_owned(), Value::UInt(s.grid_points as u64)),
    ])
}

fn scale_from_value(v: &Value) -> Result<ExperimentScale, JsonError> {
    let u = |key: &str| -> Result<u64, JsonError> {
        v.require(key)?
            .as_u64()
            .ok_or_else(|| JsonError::conversion(format!("scale `{key}` must be a u64")))
    };
    Ok(ExperimentScale {
        instances: u("instances")? as usize,
        duration: VirtualDuration::from_millis(u("duration_ms")?),
        tick: VirtualDuration::from_millis(u("tick_ms")?),
        stall_timeout: VirtualDuration::from_millis(u("stall_timeout_ms")?),
        l_min_short: VirtualDuration::from_millis(u("l_min_short_ms")?),
        l_min_long: VirtualDuration::from_millis(u("l_min_long_ms")?),
        grid_points: u("grid_points")? as usize,
    })
}

fn parse_tool(s: &str) -> Result<ToolKind, JsonError> {
    ToolKind::EXTENDED
        .into_iter()
        .find(|t| t.name() == s)
        .ok_or_else(|| JsonError::conversion(format!("unknown tool `{s}`")))
}

fn parse_mode(s: &str) -> Result<RunMode, JsonError> {
    [
        RunMode::Baseline,
        RunMode::TaoptDuration,
        RunMode::TaoptResource,
        RunMode::ActivityPartition,
        RunMode::PatsMasterSlave,
    ]
    .into_iter()
    .find(|m| m.label() == s)
    .ok_or_else(|| JsonError::conversion(format!("unknown run mode `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_chaos::FaultRates;

    fn sample() -> CampaignSpec {
        let mut spec = CampaignSpec::new(
            "smoke",
            vec![
                AppSpec {
                    source: AppSource::Small {
                        name: "alpha".to_owned(),
                        seed: 11,
                    },
                    tool: ToolKind::Monkey,
                    mode: RunMode::TaoptDuration,
                    seed: 1,
                },
                AppSpec {
                    source: AppSource::Catalog("AbsWorkout".to_owned()),
                    tool: ToolKind::Ape,
                    mode: RunMode::Baseline,
                    seed: 2,
                },
            ],
            ExperimentScale::quick(),
        );
        spec.workers = 2;
        spec.host_threads = 3;
        spec.capacity = Some(4);
        spec.kills = vec![KillEvent {
            round: 9,
            victim: 3,
        }];
        spec.faults = Some(FaultPlan::new(5, FaultRates::uniform(0.01)));
        spec.evolution = Some(EvolutionSpec {
            seed: 77,
            versions: 3,
            warm: true,
        });
        spec
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = sample();
        let text = spec.to_value().to_json_string();
        let back = CampaignSpec::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn build_materializes_apps_and_config() {
        let spec = sample();
        let (apps, config) = spec.build().unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].name, "alpha");
        assert_eq!(apps[1].name, "AbsWorkout");
        assert_eq!(config.workers, 2);
        assert_eq!(config.host_threads, 3);
        assert!(!config.scoped_threads);
        assert_eq!(config.capacity, Some(4));
        assert_eq!(config.kills.len(), 1);
        assert!(config.faults.is_some());
        assert_eq!(spec.device_demand(), 4);
    }

    #[test]
    fn pre_host_threads_checkpoint_parses_as_auto() {
        // A spec serialized before the host-budget knob existed has no
        // `host_threads` field; it must parse as 0 (auto-detect).
        let spec = sample();
        let v = spec.to_value();
        let Value::Object(fields) = v else {
            panic!("spec serializes to an object")
        };
        let legacy = Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "host_threads")
                .collect(),
        );
        let back = CampaignSpec::from_value(&legacy).unwrap();
        assert_eq!(back.host_threads, 0);
        assert_eq!(back.workers, spec.workers);
    }

    #[test]
    fn pre_evolution_spec_parses_as_single_version() {
        // A spec serialized before the evolution section existed must
        // parse with `evolution: None` (a plain one-version campaign).
        let spec = sample();
        let v = spec.to_value();
        let Value::Object(fields) = v else {
            panic!("spec serializes to an object")
        };
        let legacy = Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "evolution")
                .collect(),
        );
        let back = CampaignSpec::from_value(&legacy).unwrap();
        assert_eq!(back.evolution, None);
        assert_eq!(back.apps, spec.apps);
    }

    #[test]
    fn checked_in_legacy_fixture_still_parses_and_builds() {
        // The fixture is a spec file written by the pre-evolution format
        // (no `evolution`, no `host_threads`, no `faults`) — exactly what
        // an old v1-header checkpoint embeds. It must keep parsing and
        // materializing forever.
        let text = include_str!("../testdata/legacy_spec_v1.json");
        let spec = CampaignSpec::from_value(&Value::parse(text).unwrap()).unwrap();
        assert_eq!(spec.name, "legacy-smoke");
        assert_eq!(spec.evolution, None);
        assert_eq!(spec.host_threads, 0);
        assert_eq!(spec.faults, None);
        let (apps, config) = spec.build().unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(config.capacity, Some(4));
    }

    #[test]
    fn unknown_catalog_app_is_rejected() {
        let mut spec = sample();
        spec.apps[1].source = AppSource::Catalog("NoSuchApp".to_owned());
        assert!(matches!(
            spec.build(),
            Err(ServiceError::UnknownApp(name)) if name == "NoSuchApp"
        ));
    }

    #[test]
    fn unknown_tool_or_mode_is_a_clean_error() {
        let spec = sample();
        let text = spec.to_value().to_json_string();
        let bad = text.replace("\"Monkey\"", "\"Gorilla\"");
        assert!(CampaignSpec::from_value(&Value::parse(&bad).unwrap()).is_err());
        let bad = text.replace("\"Baseline\"", "\"Turbo\"");
        assert!(CampaignSpec::from_value(&Value::parse(&bad).unwrap()).is_err());
    }
}
