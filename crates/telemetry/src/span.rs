//! Span tracer: RAII guards timing a named region of the exploration
//! loop.
//!
//! A span records a [`EventKind::SpanEnter`] event when entered and, on
//! drop, a [`EventKind::SpanExit`] event plus a sample in the
//! per-span-name latency histogram. When telemetry is disabled the
//! guard is inert and never reads the wall clock.

use std::time::Instant;

use taopt_ui_model::VirtualTime;

use crate::recorder::EventKind;
use crate::registry::Labels;
use crate::Telemetry;

/// Builder for a span; create via [`Telemetry::span`] or the
/// [`span!`](crate::span!) macro.
#[derive(Debug)]
pub struct SpanBuilder<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    labels: Labels,
    at: Option<VirtualTime>,
}

impl<'a> SpanBuilder<'a> {
    pub(crate) fn new(telemetry: &'a Telemetry, name: &'static str) -> Self {
        SpanBuilder {
            telemetry,
            name,
            labels: Labels::none(),
            at: None,
        }
    }

    /// Attaches the testing-instance id.
    pub fn instance(mut self, instance: u32) -> Self {
        self.labels.instance = Some(instance);
        self
    }

    /// Attaches the subspace id.
    pub fn subspace(mut self, subspace: u32) -> Self {
        self.labels.subspace = Some(subspace);
        self
    }

    /// Attaches the seam name.
    pub fn seam(mut self, seam: &'static str) -> Self {
        self.labels.seam = Some(seam);
        self
    }

    /// Stamps the span with the session clock.
    pub fn at(mut self, at: VirtualTime) -> Self {
        self.at = Some(at);
        self
    }

    /// Starts the span; the returned guard closes it on drop.
    pub fn enter(self) -> SpanGuard<'a> {
        let start = if self.telemetry.is_enabled() {
            self.telemetry.recorder().push(
                EventKind::SpanEnter,
                self.name,
                self.labels,
                self.at,
                0,
            );
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            telemetry: self.telemetry,
            name: self.name,
            labels: self.labels,
            at: self.at,
            start,
        }
    }
}

/// Live span; records duration and exit event when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    labels: Labels,
    at: Option<VirtualTime>,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.telemetry.span_histogram(self.name).record(ns);
        self.telemetry
            .recorder()
            .push(EventKind::SpanExit, self.name, self.labels, self.at, ns);
    }
}
