//! Log-bucketed latency histogram with atomic buckets.
//!
//! Values are `u64` (typically nanoseconds of wall-clock time or
//! milliseconds of virtual time). Bucket `k` (for `1 <= k < 63`) holds
//! values in `[2^(k-1), 2^k)`; bucket 0 holds the value `0`; the last
//! bucket absorbs everything from `2^62` up. Recording is a pair of
//! relaxed atomic adds, so concurrent recorders never block each other
//! and a snapshot is a consistent-enough view for reporting (counts may
//! trail sums by an in-flight record, which is fine for telemetry).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of the `u64` range.
pub const BUCKET_COUNT: usize = 64;

/// Index of the bucket holding `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
}

/// `[low, high)` bounds of bucket `index` (the last bucket is closed at
/// `u64::MAX`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 1),
        i if i >= BUCKET_COUNT - 1 => (1u64 << (BUCKET_COUNT - 2), u64::MAX),
        i => (1u64 << (i - 1), 1u64 << i),
    }
}

/// Concurrent histogram over log2 buckets.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LogHistogram`] for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`), or `None` when no
    /// samples were recorded.
    ///
    /// The estimate uses the nearest-rank definition (`rank =
    /// round((count - 1) * q)`) to locate the bucket, then interpolates
    /// linearly inside it, so the error versus the exact sample at that
    /// rank is bounded by one bucket width.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let (lo, hi) = bucket_bounds(i);
                let within = (rank - seen) as f64 + 0.5;
                let est = lo as f64 + within / n as f64 * (hi - lo) as f64;
                return Some((est as u64).min(self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50).unwrap_or(0)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95).unwrap_or(0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "low bound for {v}");
            assert!(
                v < hi || (i == BUCKET_COUNT - 1 && v <= hi),
                "high bound for {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        // Exact median is ~500 (bucket [256,512) or [512,1024)); the
        // estimate must land within one bucket width of 500.
        let width = {
            let (lo, hi) = bucket_bounds(bucket_index(500));
            hi - lo
        };
        assert!(p50.abs_diff(500) <= width, "p50 {p50} too far from 500");
        assert!(s.p99() <= 1000);
        assert!(s.p99() >= s.p50());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = LogHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0);
    }
}
