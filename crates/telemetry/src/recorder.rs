//! Flight recorder: a bounded ring buffer of telemetry events.
//!
//! The recorder keeps the last `capacity` events (span enter/exit,
//! fault injections, recoveries, free-form marks) with a strictly
//! increasing sequence number, so a post-mortem can replay "what the
//! system did just before it went wrong" in order, as JSON.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use taopt_ui_model::json::Value;
use taopt_ui_model::VirtualTime;

use crate::registry::Labels;

/// Default ring capacity (events, not bytes).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What a [`TelemetryEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span started.
    SpanEnter,
    /// A span finished; `wall_ns` holds its duration.
    SpanExit,
    /// A chaos fault was injected.
    Fault,
    /// The system recovered from an injected fault.
    Recovery,
    /// A free-form point event.
    Mark,
}

impl EventKind {
    /// Stable lower-case label for JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Fault => "fault",
            EventKind::Recovery => "recovery",
            EventKind::Mark => "mark",
        }
    }
}

/// One entry in the flight recorder.
#[derive(Debug, Clone)]
pub struct TelemetryEvent {
    /// Strictly increasing sequence number (never reused, survives
    /// ring wraparound).
    pub seq: u64,
    /// Session clock timestamp, when the producer had one.
    pub at: Option<VirtualTime>,
    /// What happened.
    pub kind: EventKind,
    /// Span name, fault kind label, or mark name.
    pub name: &'static str,
    /// Metric labels attached by the producer.
    pub labels: Labels,
    /// Wall-clock nanoseconds: span duration for [`EventKind::SpanExit`],
    /// 0 otherwise.
    pub wall_ns: u64,
}

impl TelemetryEvent {
    /// JSON rendering of this event.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::from(self.seq)),
            (
                "t_ms".to_string(),
                match self.at {
                    Some(t) => Value::from(t.as_millis()),
                    None => Value::Null,
                },
            ),
            ("kind".to_string(), Value::from(self.kind.label())),
            ("name".to_string(), Value::from(self.name)),
        ];
        if let Some(i) = self.labels.instance {
            fields.push(("instance".to_string(), Value::from(i)));
        }
        if let Some(s) = self.labels.subspace {
            fields.push(("subspace".to_string(), Value::from(s)));
        }
        if let Some(s) = self.labels.seam {
            fields.push(("seam".to_string(), Value::from(s)));
        }
        if let Some(k) = self.labels.kind {
            fields.push(("fault".to_string(), Value::from(k)));
        }
        if self.wall_ns > 0 {
            fields.push(("wall_ns".to_string(), Value::from(self.wall_ns)));
        }
        Value::Object(fields)
    }
}

#[derive(Debug)]
struct Ring {
    next_seq: u64,
    events: Vec<TelemetryEvent>,
    head: usize,
}

/// Bounded, thread-safe ring buffer of [`TelemetryEvent`]s.
///
/// Pushes take one short mutex hold; the sequence counter lives inside
/// the same lock so event order and sequence order always agree.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: Arc<AtomicBool>,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events, sharing the given
    /// enabled flag.
    pub fn new(enabled: Arc<AtomicBool>, capacity: usize) -> Self {
        FlightRecorder {
            enabled,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                next_seq: 0,
                events: Vec::new(),
                head: 0,
            }),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an event, evicting the oldest when full. No-op while
    /// telemetry is disabled.
    pub fn push(
        &self,
        kind: EventKind,
        name: &'static str,
        labels: Labels,
        at: Option<VirtualTime>,
        wall_ns: u64,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let event = TelemetryEvent {
            seq,
            at,
            kind,
            name,
            labels,
            wall_ns,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let head = ring.head;
            ring.events[head] = event;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// The most recent `n` events in sequence order (oldest first).
    pub fn last(&self, n: usize) -> Vec<TelemetryEvent> {
        let ring = self.ring.lock();
        let mut ordered: Vec<TelemetryEvent> = ring.events[ring.head..]
            .iter()
            .chain(ring.events[..ring.head].iter())
            .cloned()
            .collect();
        let skip = ordered.len().saturating_sub(n);
        ordered.drain(..skip);
        ordered
    }

    /// The `k` slowest completed spans currently retained, slowest
    /// first.
    pub fn slowest_spans(&self, k: usize) -> Vec<TelemetryEvent> {
        let mut exits: Vec<TelemetryEvent> = self
            .last(self.capacity)
            .into_iter()
            .filter(|e| e.kind == EventKind::SpanExit)
            .collect();
        exits.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.seq.cmp(&b.seq)));
        exits.truncate(k);
        exits
    }

    /// JSON dump of the most recent `n` events in sequence order —
    /// the post-mortem replay artifact.
    pub fn dump_json(&self, n: usize) -> Value {
        Value::Array(self.last(n).iter().map(TelemetryEvent::to_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize) -> FlightRecorder {
        FlightRecorder::new(Arc::new(AtomicBool::new(true)), capacity)
    }

    fn push_marks(r: &FlightRecorder, n: usize) {
        for i in 0..n {
            r.push(
                EventKind::Mark,
                "tick",
                Labels::none(),
                Some(VirtualTime::from_millis(i as u64)),
                0,
            );
        }
    }

    #[test]
    fn retains_last_events_in_seq_order_after_wraparound() {
        let r = recorder(8);
        push_marks(&r, 20);
        let events = r.last(8);
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn last_n_smaller_than_retained() {
        let r = recorder(8);
        push_marks(&r, 5);
        let events = r.last(2);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn slowest_spans_sorted_by_duration() {
        let r = recorder(16);
        for (name, ns) in [("a", 50u64), ("b", 500), ("c", 5)] {
            r.push(EventKind::SpanExit, name, Labels::none(), None, ns);
        }
        r.push(EventKind::Fault, "device-loss", Labels::none(), None, 0);
        let top = r.slowest_spans(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "b");
        assert_eq!(top[1].name, "a");
    }

    #[test]
    fn json_dump_is_parseable_and_ordered() {
        let r = recorder(4);
        push_marks(&r, 6);
        let json = r.dump_json(4).to_json_string();
        let parsed = Value::parse(&json).expect("valid json");
        let arr = match parsed {
            Value::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 4);
        let seqs: Vec<u64> = arr
            .iter()
            .map(|v| match v {
                Value::Object(fields) => fields
                    .iter()
                    .find(|(k, _)| k == "seq")
                    .and_then(|(_, v)| match v {
                        Value::UInt(n) => Some(*n),
                        _ => None,
                    })
                    .expect("seq field"),
                other => panic!("expected object, got {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    #[test]
    fn disabled_recorder_stays_empty() {
        let r = FlightRecorder::new(Arc::new(AtomicBool::new(false)), 8);
        push_marks(&r, 3);
        assert!(r.is_empty());
    }
}
