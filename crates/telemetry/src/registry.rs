//! Metrics registry: named, labeled counters, gauges and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics; hot paths fetch them once at construction time
//! and then update without any map lookup or lock. Every handle shares
//! the registry's enabled flag, so disabling telemetry turns every
//! update into a single relaxed load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::histogram::{bucket_bounds, HistogramSnapshot, LogHistogram, BUCKET_COUNT};

/// Label set attached to a metric series. All fields are optional; the
/// cardinality stays bounded because instances and subspaces are small
/// per-session integers and seams/kinds are static strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels {
    /// Testing-instance id the sample belongs to.
    pub instance: Option<u32>,
    /// Subspace id the sample belongs to.
    pub subspace: Option<u32>,
    /// Architectural seam ("bus", "farm", "enforce", ...).
    pub seam: Option<&'static str>,
    /// Discriminator within a seam (fault kind, rule kind, ...).
    pub kind: Option<&'static str>,
}

impl Labels {
    /// The empty label set.
    pub fn none() -> Self {
        Labels::default()
    }

    /// Labels carrying only an instance id.
    pub fn instance(instance: u32) -> Self {
        Labels {
            instance: Some(instance),
            ..Labels::default()
        }
    }

    /// Labels carrying only a seam name.
    pub fn seam(seam: &'static str) -> Self {
        Labels {
            seam: Some(seam),
            ..Labels::default()
        }
    }

    /// Labels carrying only a kind discriminator.
    pub fn kind(kind: &'static str) -> Self {
        Labels {
            kind: Some(kind),
            ..Labels::default()
        }
    }

    /// Returns a copy with the subspace set.
    pub fn with_subspace(mut self, subspace: u32) -> Self {
        self.subspace = Some(subspace);
        self
    }

    /// Returns a copy with the instance set.
    pub fn with_instance(mut self, instance: u32) -> Self {
        self.instance = Some(instance);
        self
    }

    /// True when no label is set.
    pub fn is_empty(&self) -> bool {
        *self == Labels::default()
    }

    /// Prometheus-style rendering: `{instance="3",seam="bus"}`, or the
    /// empty string for the empty label set.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut parts = Vec::new();
        if let Some(i) = self.instance {
            parts.push(format!("instance=\"{i}\""));
        }
        if let Some(s) = self.subspace {
            parts.push(format!("subspace=\"{s}\""));
        }
        if let Some(s) = self.seam {
            parts.push(format!("seam=\"{s}\""));
        }
        if let Some(k) = self.kind {
            parts.push(format!("kind=\"{k}\""));
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// Monotone event counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 && self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level handle (can go up and down).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds to the level.
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts from the level.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Latency histogram handle (see [`LogHistogram`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    inner: Arc<LogHistogram>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.inner.record(value);
        }
    }

    /// Starts a wall-clock timer, or `None` when telemetry is disabled
    /// (so disabled runs never call `Instant::now`).
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.enabled.load(Ordering::Relaxed).then(Instant::now)
    }

    /// Records the elapsed nanoseconds of a timer started with
    /// [`Histogram::timer`] and returns them.
    #[inline]
    pub fn stop(&self, timer: Option<Instant>) -> u64 {
        match timer {
            Some(t0) => {
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.inner.record(ns);
                ns
            }
            None => 0,
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.snapshot()
    }
}

/// Registry of all metric series, keyed by `(name, labels)`.
///
/// The maps are only locked on handle creation and snapshotting; every
/// update goes straight to the shared atomics inside the handles.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<(&'static str, Labels), Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<(&'static str, Labels), Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<(&'static str, Labels), Arc<LogHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry sharing the given enabled flag.
    pub fn new(enabled: Arc<AtomicBool>) -> Self {
        MetricsRegistry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Counter handle for `(name, labels)`, creating the series on first
    /// use.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        let value = Arc::clone(
            self.counters
                .lock()
                .entry((name, labels))
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter {
            enabled: Arc::clone(&self.enabled),
            value,
        }
    }

    /// Gauge handle for `(name, labels)`.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        let value = Arc::clone(
            self.gauges
                .lock()
                .entry((name, labels))
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        );
        Gauge {
            enabled: Arc::clone(&self.enabled),
            value,
        }
    }

    /// Histogram handle for `(name, labels)`.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        let inner = Arc::clone(
            self.histograms
                .lock()
                .entry((name, labels))
                .or_insert_with(|| Arc::new(LogHistogram::new())),
        );
        Histogram {
            enabled: Arc::clone(&self.enabled),
            inner,
        }
    }

    /// A point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|((name, labels), v)| {
                (
                    format!("{name}{}", labels.render()),
                    v.load(Ordering::Relaxed),
                )
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|((name, labels), v)| {
                (
                    format!("{name}{}", labels.render()),
                    v.load(Ordering::Relaxed),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|((name, labels), h)| (format!("{name}{}", labels.render()), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Prometheus text exposition of every series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), v) in self.counters.lock().iter() {
            if *name != last_name {
                out.push_str(&format!("# TYPE {name} counter\n"));
                last_name = name;
            }
            out.push_str(&format!(
                "{name}{} {}\n",
                labels.render(),
                v.load(Ordering::Relaxed)
            ));
        }
        last_name = "";
        for ((name, labels), v) in self.gauges.lock().iter() {
            if *name != last_name {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                last_name = name;
            }
            out.push_str(&format!(
                "{name}{} {}\n",
                labels.render(),
                v.load(Ordering::Relaxed)
            ));
        }
        last_name = "";
        for ((name, labels), h) in self.histograms.lock().iter() {
            if *name != last_name {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_name = name;
            }
            let s = h.snapshot();
            let base = labels.render();
            // Cumulative `le` buckets, only at occupied boundaries.
            let mut cum = 0u64;
            for (i, &n) in s.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let (_, hi) = bucket_bounds(i);
                let le = if i == BUCKET_COUNT - 1 {
                    "+Inf".to_string()
                } else {
                    hi.to_string()
                };
                let le_labels = splice_label(&base, &format!("le=\"{le}\""));
                out.push_str(&format!("{name}_bucket{le_labels} {cum}\n"));
            }
            if cum < s.count {
                // Samples recorded mid-snapshot; close the distribution.
                let le_labels = splice_label(&base, "le=\"+Inf\"");
                out.push_str(&format!("{name}_bucket{le_labels} {}\n", s.count));
            }
            out.push_str(&format!("{name}_sum{base} {}\n", s.sum));
            out.push_str(&format!("{name}_count{base} {}\n", s.count));
        }
        out
    }
}

/// Inserts an extra `k="v"` pair into a rendered label set.
fn splice_label(rendered: &str, pair: &str) -> String {
    if rendered.is_empty() {
        format!("{{{pair}}}")
    } else {
        format!("{},{pair}}}", &rendered[..rendered.len() - 1])
    }
}

/// Immutable copy of a [`MetricsRegistry`], keyed by the rendered
/// `name{labels}` series id.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Counter series.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram series.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when every counter is zero and every histogram is empty
    /// (the "nothing was wired" signal the CI smoke test checks for).
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0) && self.histograms.values().all(|h| h.is_empty())
    }

    /// Sum of all counter series whose name (ignoring labels) equals
    /// `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&format!("{name}{{")))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merged snapshot of all histogram series whose name (ignoring
    /// labels) equals `name`, or `None` when no such series exists.
    pub fn histogram_total(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (k, h) in &self.histograms {
            if k.as_str() != name && !k.starts_with(&format!("{name}{{")) {
                continue;
            }
            merged = Some(match merged {
                None => h.clone(),
                Some(mut m) => {
                    for (b, &n) in m.buckets.iter_mut().zip(h.buckets.iter()) {
                        *b += n;
                    }
                    m.count += h.count;
                    m.sum += h.sum;
                    m.max = m.max.max(h.max);
                    m
                }
            });
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn counters_accumulate_per_label() {
        let r = registry();
        let a = r.counter("events_total", Labels::instance(0));
        let b = r.counter("events_total", Labels::instance(1));
        a.inc();
        a.add(2);
        b.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters["events_total{instance=\"0\"}"], 3);
        assert_eq!(snap.counter_total("events_total"), 4);
        assert!(!snap.is_empty());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let enabled = Arc::new(AtomicBool::new(false));
        let r = MetricsRegistry::new(Arc::clone(&enabled));
        let c = r.counter("noop_total", Labels::none());
        let h = r.histogram("noop_ns", Labels::none());
        c.inc();
        assert!(h.timer().is_none());
        h.record(99);
        assert!(r.snapshot().is_empty());
        // Re-enabling makes the same handles live again.
        enabled.store(true, Ordering::Relaxed);
        c.inc();
        assert_eq!(r.snapshot().counter_total("noop_total"), 1);
    }

    #[test]
    fn prometheus_rendering_has_types_and_series() {
        let r = registry();
        r.counter("x_total", Labels::seam("bus")).add(7);
        r.gauge("level", Labels::none()).set(-2);
        r.histogram("lat_ns", Labels::none()).record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total{seam=\"bus\"} 7"));
        assert!(text.contains("level -2"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"128\"} 1"));
        assert!(text.contains("lat_ns_count 1"));
    }

    #[test]
    fn histogram_total_merges_label_series() {
        let r = registry();
        r.histogram("step_ns", Labels::instance(0)).record(10);
        r.histogram("step_ns", Labels::instance(1)).record(1000);
        let snap = r.snapshot();
        let merged = snap.histogram_total("step_ns").expect("series exist");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.max, 1000);
        assert!(snap.histogram_total("absent_ns").is_none());
    }
}
