//! Runtime observability for the TaOPT reproduction.
//!
//! The paper's coordinator is a long-running service supervising many
//! devices; this crate makes the reproduction's exploration loop
//! observable the way such a service would be in production:
//!
//! * a [`MetricsRegistry`] of atomic counters, gauges and log-bucketed
//!   latency [histograms](histogram::LogHistogram) (p50/p95/p99),
//!   labeled by instance/subspace/seam, with Prometheus-style text
//!   exposition;
//! * a span tracer ([`span!`], [`SpanGuard`]) timing named regions of
//!   the loop (subspace dedication, enforcement broadcast, emulator
//!   steps) on both the wall clock and the session clock;
//! * a bounded [`FlightRecorder`] ring buffer that dumps the last N
//!   telemetry events as JSON for post-mortem replay of a failed or
//!   chaotic session.
//!
//! All instrumented crates share one process-global [`Telemetry`]
//! (see [`global`]), so wiring does not thread handles through every
//! constructor. Telemetry is observational only: it never influences
//! session control flow, so deterministic replays stay deterministic.
//! Set `TAOPT_TELEMETRY=off` (or `0`/`false`) to disable collection and
//! measure the no-op baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod recorder;
pub mod registry;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use taopt_ui_model::VirtualTime;

pub use crate::histogram::{HistogramSnapshot, LogHistogram};
pub use crate::recorder::{EventKind, FlightRecorder, TelemetryEvent, DEFAULT_FLIGHT_CAPACITY};
pub use crate::registry::{Counter, Gauge, Histogram, Labels, MetricsRegistry, MetricsSnapshot};
pub use crate::span::{SpanBuilder, SpanGuard};

/// One telemetry domain: a registry plus a flight recorder sharing an
/// enabled flag.
///
/// Most code uses the process-global instance via [`global`]; tests
/// construct private instances to assert in isolation.
#[derive(Debug)]
pub struct Telemetry {
    enabled: Arc<AtomicBool>,
    registry: MetricsRegistry,
    recorder: FlightRecorder,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled instance with the default flight-recorder capacity.
    pub fn new() -> Self {
        Telemetry::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// An enabled instance retaining the last `capacity` flight events.
    pub fn with_capacity(capacity: usize) -> Self {
        let enabled = Arc::new(AtomicBool::new(true));
        Telemetry {
            registry: MetricsRegistry::new(Arc::clone(&enabled)),
            recorder: FlightRecorder::new(Arc::clone(&enabled), capacity),
            enabled,
        }
    }

    /// A disabled instance: every handle and span is a near-free no-op.
    pub fn disabled() -> Self {
        let t = Telemetry::new();
        t.set_enabled(false);
        t
    }

    /// Enables or disables collection. Existing handles observe the
    /// change immediately (they share the flag).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when collection is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Counter handle without labels.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.registry.counter(name, Labels::none())
    }

    /// Counter handle with labels.
    pub fn counter_labeled(&self, name: &'static str, labels: Labels) -> Counter {
        self.registry.counter(name, labels)
    }

    /// Gauge handle without labels.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.registry.gauge(name, Labels::none())
    }

    /// Histogram handle without labels.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.registry.histogram(name, Labels::none())
    }

    /// Histogram handle with labels.
    pub fn histogram_labeled(&self, name: &'static str, labels: Labels) -> Histogram {
        self.registry.histogram(name, labels)
    }

    /// The latency histogram series backing spans named `name`
    /// (exposed as `span_ns{kind="<name>"}`).
    pub fn span_histogram(&self, name: &'static str) -> Histogram {
        self.registry.histogram("span_ns", Labels::kind(name))
    }

    /// Starts building a span; finish with [`SpanBuilder::enter`].
    pub fn span(&self, name: &'static str) -> SpanBuilder<'_> {
        SpanBuilder::new(self, name)
    }

    /// Records a fault injection: bumps `faults_injected_total` (total
    /// and per-kind) and appends a flight event, so the chaos fault log
    /// and the flight recorder line up.
    pub fn fault(&self, kind: &'static str, instance: Option<u32>, at: VirtualTime) {
        if !self.is_enabled() {
            return;
        }
        self.counter("faults_injected_total").inc();
        self.counter_labeled("faults_injected_total", Labels::kind(kind))
            .inc();
        let mut labels = Labels::kind(kind);
        labels.instance = instance;
        self.recorder
            .push(EventKind::Fault, kind, labels, Some(at), 0);
    }

    /// Records a recovery from an injected fault (mirror of
    /// [`Telemetry::fault`]).
    pub fn recovery(&self, kind: &'static str, instance: Option<u32>, at: VirtualTime) {
        if !self.is_enabled() {
            return;
        }
        self.counter("faults_recovered_total").inc();
        self.counter_labeled("faults_recovered_total", Labels::kind(kind))
            .inc();
        let mut labels = Labels::kind(kind);
        labels.instance = instance;
        self.recorder
            .push(EventKind::Recovery, kind, labels, Some(at), 0);
    }

    /// Appends a free-form point event to the flight recorder.
    pub fn mark(&self, name: &'static str, labels: Labels, at: Option<VirtualTime>) {
        self.recorder.push(EventKind::Mark, name, labels, at, 0);
    }

    /// Snapshot of every metric series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Prometheus text exposition of every metric series.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

/// The process-global telemetry domain used by all instrumented crates.
///
/// Created on first use; starts disabled when the `TAOPT_TELEMETRY`
/// environment variable is `off`, `0` or `false` (any case), enabled
/// otherwise. Flip at runtime with [`Telemetry::set_enabled`].
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let t = Telemetry::new();
        if let Ok(v) = std::env::var("TAOPT_TELEMETRY") {
            let v = v.to_ascii_lowercase();
            if v == "off" || v == "0" || v == "false" {
                t.set_enabled(false);
            }
        }
        t
    })
}

/// Opens a span on the [`global`] telemetry domain.
///
/// ```
/// use taopt_telemetry::span;
/// use taopt_ui_model::VirtualTime;
///
/// let now = VirtualTime::from_secs(42);
/// {
///     let _span = span!("dedicate", instance = 3, subspace = 7, at = now);
///     // ... timed work ...
/// }
/// let hist = taopt_telemetry::global().span_histogram("dedicate");
/// assert!(hist.snapshot().count >= 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        let builder = $crate::global().span($name);
        $(let builder = builder.$key($value);)*
        builder.enter()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_histogram_and_flight_events() {
        let t = Telemetry::new();
        {
            let _g = t
                .span("unit_work")
                .instance(2)
                .at(VirtualTime::from_secs(1))
                .enter();
            std::hint::black_box(0u64);
        }
        let snap = t.snapshot();
        let h = snap
            .histograms
            .get("span_ns{kind=\"unit_work\"}")
            .expect("span histogram exists");
        assert_eq!(h.count, 1);
        let events = t.recorder().last(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanEnter);
        assert_eq!(events[1].kind, EventKind::SpanExit);
        assert_eq!(events[1].labels.instance, Some(2));
    }

    #[test]
    fn fault_and_recovery_line_up_in_counters_and_flight() {
        let t = Telemetry::new();
        t.fault("device-loss", Some(1), VirtualTime::from_secs(5));
        t.recovery("device-loss", Some(1), VirtualTime::from_secs(9));
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("faults_injected_total"), 2); // total + per-kind
        assert_eq!(
            snap.counters["faults_injected_total{kind=\"device-loss\"}"],
            1
        );
        let events = t.recorder().last(10);
        assert_eq!(events[0].kind, EventKind::Fault);
        assert_eq!(events[1].kind, EventKind::Recovery);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn disabled_domain_is_silent() {
        let t = Telemetry::disabled();
        t.fault("x", None, VirtualTime::ZERO);
        {
            let _g = t.span("quiet").enter();
        }
        assert!(t.snapshot().is_empty());
        assert!(t.recorder().is_empty());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Telemetry;
        let b = global() as *const Telemetry;
        assert_eq!(a, b);
    }
}
