//! Property tests for the telemetry crate: histogram percentile error
//! bounds and flight-recorder wraparound laws.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use proptest::prelude::*;

use taopt_telemetry::histogram::{bucket_bounds, bucket_index, LogHistogram};
use taopt_telemetry::recorder::{EventKind, FlightRecorder};
use taopt_telemetry::Labels;
use taopt_ui_model::VirtualTime;

/// Exact nearest-rank quantile over the raw sample, the ground truth the
/// histogram approximates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

/// Arbitrary latency samples spanning the full log-bucket range: a
/// random bucket shift plus a random offset within that bucket.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..40, 0u64..u64::MAX).prop_map(|(shift, raw)| {
            if shift == 0 {
                raw % 2
            } else {
                (1u64 << shift) + raw % (1u64 << shift)
            }
        }),
        1..400,
    )
}

proptest! {
    /// A reported quantile lands within one log2 bucket of the exact
    /// nearest-rank quantile of the recorded samples.
    #[test]
    fn quantiles_are_within_one_bucket(samples in arb_samples(), qm in 0u32..=100) {
        let q = f64::from(qm) / 100.0;
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.snapshot().quantile(q).expect("histogram is non-empty");
        // Both must fall inside (or at the boundary of) the exact
        // value's bucket: the approximation error is at most one bucket
        // width by construction.
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(
            approx >= lo && approx <= hi,
            "q={q}: approx {approx} outside bucket [{lo}, {hi}] of exact {exact}"
        );
    }

    /// Count, sum and max are exact regardless of bucketing.
    #[test]
    fn totals_are_exact(samples in arb_samples()) {
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
    }

    /// After any number of pushes, a ring of capacity `cap` retains
    /// exactly the last `min(pushes, cap)` events, in strictly
    /// increasing sequence order, ending at the newest push.
    #[test]
    fn flight_recorder_wraparound(cap in 1usize..32, pushes in 0usize..130) {
        let recorder = FlightRecorder::new(Arc::new(AtomicBool::new(true)), cap);
        for i in 0..pushes {
            recorder.push(
                EventKind::Mark,
                "tick",
                Labels::none(),
                Some(VirtualTime::from_millis(i as u64)),
                0,
            );
        }
        let events = recorder.last(usize::MAX);
        prop_assert_eq!(events.len(), pushes.min(cap));
        prop_assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        if let Some(last) = events.last() {
            prop_assert_eq!(last.seq, pushes as u64 - 1);
        }
    }
}
