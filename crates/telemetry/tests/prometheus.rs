//! Parser-level tests for the Prometheus text exposition: the rendered
//! page must declare every family exactly once with a valid type, attach
//! every sample to a declared family, and never emit the same series
//! (name + label set) twice — the properties a scraping Prometheus
//! relies on.

use std::collections::{HashMap, HashSet};

use taopt_telemetry::{Labels, Telemetry};

/// Parses `text` as Prometheus text exposition and panics on any
/// well-formedness violation. Returns `(families, series)` for
/// content assertions.
fn parse_exposition(text: &str) -> (HashMap<String, String>, HashSet<String>) {
    let mut families: HashMap<String, String> = HashMap::new();
    let mut series: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a family").to_owned();
            let kind = parts.next().expect("TYPE line carries a type").to_owned();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown metric type in: {line}"
            );
            assert!(parts.next().is_none(), "trailing tokens in: {line}");
            assert!(
                families.insert(name.clone(), kind).is_none(),
                "duplicate # TYPE for `{name}`"
            );
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "unexpected comment (only # TYPE is emitted): {line}"
        );
        let (series_id, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unreadable sample value in: {line}"
        );
        assert!(
            series.insert(series_id.to_owned()),
            "duplicate series `{series_id}`"
        );
        let name = series_id.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| families.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(
            families.contains_key(family),
            "sample `{series_id}` has no # TYPE declaration"
        );
        if family != name {
            // Histogram suffix series must follow a histogram TYPE.
            assert_eq!(families[family], "histogram");
        }
    }
    (families, series)
}

#[test]
fn exposition_is_wellformed_across_metric_kinds_and_labels() {
    let t = Telemetry::new();
    // Several series per family — labels must keep them distinct.
    for kind in ["submit", "status", "wait"] {
        t.counter_labeled("requests_total", Labels::kind(kind))
            .inc();
        let h = t.histogram_labeled("latency_us", Labels::kind(kind));
        for sample in [3, 900, 70_000, 2_000_000] {
            h.record(sample);
        }
    }
    t.counter("errors_total").inc();
    t.gauge("queue_depth").set(7);
    for i in 0..3 {
        t.counter_labeled("per_instance_total", Labels::instance(i))
            .inc();
    }

    let text = t.render_prometheus();
    let (families, series) = parse_exposition(&text);

    assert_eq!(
        families.get("requests_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        families.get("queue_depth").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        families.get("latency_us").map(String::as_str),
        Some("histogram")
    );
    // One declaration per family even with three labeled series each.
    assert!(series.contains("requests_total{kind=\"submit\"}"));
    assert!(series.contains("per_instance_total{instance=\"2\"}"));
    assert!(series.contains("latency_us_count{kind=\"wait\"}"));
    // Histogram buckets carry `le` spliced into the existing label set.
    assert!(
        series
            .iter()
            .any(|s| s.starts_with("latency_us_bucket{kind=\"submit\",le=\"")),
        "no le-labeled bucket series rendered"
    );
}

#[test]
fn campaign_round_host_us_renders_log2_buckets() {
    // The campaign scheduler records per-round host time into this log2
    // histogram; /metrics must expose it with cumulative power-of-two
    // `le` boundaries at exactly the occupied buckets, plus sum/count.
    let t = Telemetry::new();
    let h = t.histogram("campaign_round_host_us");
    for us in [0u64, 90, 300, 300, 4096] {
        h.record(us);
    }

    let text = t.render_prometheus();
    let (families, series) = parse_exposition(&text);
    assert_eq!(
        families.get("campaign_round_host_us").map(String::as_str),
        Some("histogram")
    );
    // 0 → [0,1); 90 → [64,128); 300×2 → [256,512); 4096 → [4096,8192).
    assert!(text.contains("campaign_round_host_us_bucket{le=\"1\"} 1"));
    assert!(text.contains("campaign_round_host_us_bucket{le=\"128\"} 2"));
    assert!(text.contains("campaign_round_host_us_bucket{le=\"512\"} 4"));
    assert!(text.contains("campaign_round_host_us_bucket{le=\"8192\"} 5"));
    assert!(text.contains("campaign_round_host_us_sum 4786"));
    assert!(text.contains("campaign_round_host_us_count 5"));
    // Exactly the occupied boundaries — the renderer closes with +Inf
    // only when the trailing buckets hold samples.
    assert_eq!(
        series
            .iter()
            .filter(|s| s.starts_with("campaign_round_host_us_bucket"))
            .count(),
        4
    );
}

#[test]
fn empty_registry_renders_an_empty_page() {
    let (families, series) = parse_exposition(&Telemetry::new().render_prometheus());
    assert!(families.is_empty());
    assert!(series.is_empty());
}

#[test]
fn global_registry_page_is_wellformed() {
    // The process-global registry is what `/metrics` and `metrics_text()`
    // serve; whatever other tests have recorded into it, it must parse.
    taopt_telemetry::global()
        .counter("prometheus_test_probe_total")
        .inc();
    let (families, series) = parse_exposition(&taopt_telemetry::global().render_prometheus());
    assert!(families.contains_key("prometheus_test_probe_total"));
    assert!(series.contains("prometheus_test_probe_total"));
}
