//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .chain(std::iter::once(&self.header))
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |row: &[String], out: &mut String| {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .next()
                    .map(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+')
                    .unwrap_or(false);
                if numeric && i > 0 {
                    let _ = write!(out, "{}{}", " ".repeat(pad), c);
                } else {
                    let _ = write!(out, "{}{}", c, " ".repeat(pad));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a signed percentage like the paper's tables (`+23%`, `-19.0 %`).
pub fn pct(delta: f64) -> String {
    format!("{:+.1}%", delta * 100.0)
}

/// Formats a ratio as a multiplier (`1.64×`).
pub fn times(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["App", "Cov"]);
        t.row(["AbsWorkout", "9483"]);
        t.row(["Zedge", "63574"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("63574"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["A", "B", "C"]);
        t.row(["x"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.231), "+23.1%");
        assert_eq!(pct(-0.19), "-19.0%");
        assert_eq!(times(1.64), "1.64x");
    }
}
