//! Weighted-directed conductance and the MC-GPP objective (Eqs. 2–3).

use std::collections::BTreeSet;

use taopt_ui_model::StochasticDigraph;

/// The conductance φ(G1, G2) of Eq. (2):
///
/// ```text
/// φ(G1, G2) = Σ_{i∈G1, j∈G2} p(i,j) / min(|vol(G1)|, |vol(G2)|)
/// ```
///
/// Intuitively, the tool's probability of transitioning from `a` into `b`,
/// normalized by the smaller subgraph volume. Returns 0.0 when both
/// volumes are zero (isolated subsets).
pub fn conductance(g: &StochasticDigraph, a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
    let cut = g.cut_weight(a, b);
    if cut == 0.0 {
        return 0.0;
    }
    let denom = g.volume(a).abs().min(g.volume(b).abs());
    if denom == 0.0 {
        return 0.0;
    }
    cut / denom
}

/// The MC-GPP objective of Eq. (3) for a k-way partition: the maximum
/// pairwise conductance between any two parts (both directions).
///
/// Lower is better; the optimal parallelization strategy minimizes it.
pub fn partition_score(g: &StochasticDigraph, parts: &[BTreeSet<u64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for (i, a) in parts.iter().enumerate() {
        for b in parts.iter().skip(i + 1) {
            worst = worst.max(conductance(g, a, b));
            worst = worst.max(conductance(g, b, a));
        }
    }
    worst
}

/// Classifies a pair of subgraphs as loosely coupled (§4.1): either both
/// directions have near-zero conductance, or one direction is easy and the
/// reverse is rare.
pub fn loosely_coupled(
    g: &StochasticDigraph,
    a: &BTreeSet<u64>,
    b: &BTreeSet<u64>,
    epsilon: f64,
) -> bool {
    let ab = conductance(g, a, b);
    let ba = conductance(g, b, a);
    ab <= epsilon || ba <= epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> BTreeSet<u64> {
        ids.iter().copied().collect()
    }

    /// Two triangles joined by one weak edge.
    fn two_triangles(cross: f64) -> StochasticDigraph {
        let mut g = StochasticDigraph::new();
        for (x, y) in [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4)] {
            g.add_edge(x, y, 1.0).unwrap();
            g.add_edge(y, x, 1.0).unwrap();
        }
        if cross > 0.0 {
            g.add_edge(1, 4, cross).unwrap();
        }
        g
    }

    #[test]
    fn disconnected_subgraphs_have_zero_conductance() {
        let g = two_triangles(0.0);
        let (a, b) = (set(&[1, 2, 3]), set(&[4, 5, 6]));
        assert_eq!(conductance(&g, &a, &b), 0.0);
        assert_eq!(conductance(&g, &b, &a), 0.0);
        assert!(loosely_coupled(&g, &a, &b, 0.01));
    }

    #[test]
    fn weak_cross_edge_gives_small_conductance() {
        let g = two_triangles(0.05);
        let (a, b) = (set(&[1, 2, 3]), set(&[4, 5, 6]));
        let ab = conductance(&g, &a, &b);
        assert!(ab > 0.0 && ab < 0.05, "φ = {ab}");
        // Reverse direction has no edge at all.
        assert_eq!(conductance(&g, &b, &a), 0.0);
        assert!(loosely_coupled(&g, &a, &b, 0.01));
    }

    #[test]
    fn bad_partition_scores_higher_than_good() {
        let g = two_triangles(0.05);
        let good = vec![set(&[1, 2, 3]), set(&[4, 5, 6])];
        let bad = vec![set(&[1, 2, 4]), set(&[3, 5, 6])];
        assert!(
            partition_score(&g, &good) < partition_score(&g, &bad),
            "cluster-aligned partition must win: {} vs {}",
            partition_score(&g, &good),
            partition_score(&g, &bad)
        );
    }

    #[test]
    fn partition_score_of_single_part_is_zero() {
        let g = two_triangles(0.5);
        assert_eq!(partition_score(&g, &[set(&[1, 2, 3, 4, 5, 6])]), 0.0);
        assert_eq!(partition_score(&g, &[]), 0.0);
    }

    #[test]
    fn one_way_coupling_counts_as_loose() {
        // a -> b is easy (φ large), b -> a impossible: still "loosely
        // coupled" per the paper's case (2).
        let mut g = StochasticDigraph::new();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(3, 2, 1.0).unwrap();
        let (a, b) = (set(&[1]), set(&[2, 3]));
        assert!(conductance(&g, &a, &b) > 0.1);
        assert_eq!(conductance(&g, &b, &a), 0.0);
        assert!(loosely_coupled(&g, &a, &b, 0.01));
    }
}
