//! Parallel sessions under deterministic fault injection.
//!
//! [`run_with_chaos`] is the chaos-mode counterpart of
//! [`crate::session::ParallelSession::run`]. Both are thin drivers over
//! the one round engine, [`crate::campaign::SessionStep`]; the only
//! difference is which implementation is plugged into each seam layer:
//!
//! * **device seam** ([`taopt_device::DevicePool`]) — here a
//!   [`taopt_chaos::FaultyPool`], so allocation attempts can be refused
//!   and live devices can be killed on the fault schedule; the plain
//!   driver uses [`taopt_device::PlainPool`];
//! * **bus seam** ([`crate::campaign::BusTransport`]) — a `FaultyBus`
//!   decides a fate (drop / duplicate / delay) per stamped event; the
//!   coordinator sees only the repaired coordinator-view trace
//!   ([`crate::streaming`]'s sequence-order repair);
//! * **enforcement seam** ([`crate::campaign::Enforcement`]) — block-rule
//!   intent goes to a shadow list and an [`EnforcementBroadcaster`]
//!   reconciles it onto devices through the failure-prone channel,
//!   retrying idempotently until acknowledged.
//!
//! The self-healing policies are the ones demanded by the paper's
//! deployment reality: lost devices are re-allocated with bounded
//! retry/backoff, orphaned subspaces are re-dedicated to survivors, and
//! no fault can make the session exceed `d_max` or run past its budget.
//! With an inert injector every layer is observably a no-op and the run
//! is **field-for-field equal** to a plain [`ParallelSession::run`] —
//! the fault-free baseline chaos experiments compare against (and the
//! parity test below pins).
//!
//! [`ParallelSession::run`]: crate::session::ParallelSession::run
//! [`EnforcementBroadcaster`]: crate::resilience::EnforcementBroadcaster

use std::sync::Arc;

use taopt_app_sim::App;
use taopt_chaos::{FaultInjector, FaultLog, FaultStats, FaultyPool, RecoveryKind};
use taopt_device::{DeviceFarm, DevicePool, PoolDecision};

use crate::campaign::{SessionStep, StepLayers};
use crate::resilience::{ReplacementQueue, RetryPolicy};
use crate::session::{RunMode, SessionConfig, SessionResult};
use crate::streaming::StreamStats;
use taopt_ui_model::VirtualTime;

/// Everything a chaos run produces: the ordinary session result plus the
/// fault/recovery audit trail.
#[derive(Debug)]
pub struct ChaosReport {
    /// The session outcome (coverage, crashes, subspaces, …).
    pub session: SessionResult,
    /// Every injected fault and recorded recovery.
    pub fault_log: FaultLog,
    /// Aggregated fault/recovery statistics.
    pub fault_stats: FaultStats,
    /// Bus-repair counters across all instances.
    pub stream: StreamStats,
    /// Devices killed by the fault schedule.
    pub devices_lost: usize,
    /// Lost devices successfully re-allocated.
    pub replacements: usize,
    /// Replacement attempts abandoned after the retry budget.
    pub replacements_abandoned: usize,
    /// Enforcement deliveries that needed at least one retry.
    pub enforcement_retries: usize,
    /// Confirmed, unfinished subspaces still blocked for every live
    /// instance when the session ended (the liveness invariant: should
    /// be 0 whenever any instance survived to inherit).
    pub unresolved_orphans: usize,
}

/// Runs a fault-injected parallel session to completion.
///
/// All [`RunMode`]s are supported; the run is fully deterministic given
/// `config.seed` and the injector's plan seed. The loop below is pure
/// device-seam policy — boot, replace, kill — with every in-round fault
/// (latency, bus, enforcement) handled inside
/// [`SessionStep::advance_round`] by the chaos [`StepLayers`].
pub fn run_with_chaos(
    app: Arc<App>,
    config: &SessionConfig,
    injector: &FaultInjector,
) -> ChaosReport {
    let telemetry = taopt_telemetry::global();
    telemetry.counter("chaos_sessions_started_total").inc();
    let round_counter = telemetry.counter("chaos_rounds_total");

    let mut pool = FaultyPool::new(DeviceFarm::new(config.instances), injector.clone());
    let mut step = SessionStep::new(app, config.clone())
        .with_layers(StepLayers::chaos(injector, 0))
        .with_orphan_repair(true)
        .with_compute(crate::campaign::pool::ComputePool::shared());
    let mut replacements = ReplacementQueue::new(RetryPolicy {
        max_attempts: 6,
        backoff: config.tick,
    });
    let mut replaced = 0usize;
    // A resource-mode session that can never hold a device (pathological
    // refusal rates) would never burn its machine budget; bound it by
    // wall clock with headroom for a fully serialized burn-down.
    let wall_cap =
        VirtualTime::ZERO + config.duration * (config.instances as u64).max(1) * 4 + config.tick;

    let mut round = 0u64;
    loop {
        round += 1;
        // Device seam, replacements first: each lost device owes one
        // recovery-tracked re-allocation, retried with backoff and
        // abandoned after the retry budget. `d_max` is a hard ceiling.
        for req in replacements.due(step.now()) {
            if step.active_count() >= config.instances {
                replacements.defer(req, step.now());
                continue;
            }
            match pool.allocate(step.now()) {
                PoolDecision::Granted(device) => {
                    let iid = step.grant(device);
                    replaced += 1;
                    injector.record_recovery(
                        req.lost_at,
                        step.now(),
                        Some(iid.0),
                        RecoveryKind::DeviceReallocated,
                    );
                }
                _ => replacements.defer(req, step.now()),
            }
        }
        // Plain top-up to the step's demand, leaving headroom for
        // replacements still backing off. A refusal here simply retries
        // next round (demand persists), without replacement bookkeeping.
        while step.demand() > replacements.outstanding() {
            match pool.allocate(step.now()) {
                PoolDecision::Granted(device) => {
                    step.grant(device);
                }
                _ => break,
            }
        }

        round_counter.inc();
        let out = step.advance_round();
        // Stall-released devices go back before victims are drawn, so a
        // device cannot be "killed" after its instance already retired.
        for d in out.released {
            pool.release(d, step.now());
        }
        // Device seam, losses: the schedule picks victims among devices
        // still active; the pool charges and frees the slot, the step
        // settles the instance, and a replacement is queued.
        for device in pool.round_losses(round, step.now()) {
            pool.kill(device, step.now());
            if step.lose_device(device) {
                replacements.device_lost(step.now());
            }
        }
        if out.done || (config.mode == RunMode::TaoptResource && step.now() >= wall_cap) {
            break;
        }
    }

    let end = step.now();
    let fin = step.finish();
    for d in fin.released {
        pool.release(d, end);
    }
    ChaosReport {
        session: fin.result,
        fault_log: injector.log_snapshot(),
        fault_stats: injector.stats(),
        stream: fin.stream,
        devices_lost: pool.lost_count(),
        replacements: replaced,
        replacements_abandoned: replacements.given_up(),
        enforcement_retries: fin.enforcement_retries,
        unresolved_orphans: fin.unresolved_orphans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerConfig;
    use crate::session::ParallelSession;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_chaos::{FaultPlan, FaultRates};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    fn quick_config() -> SessionConfig {
        let mut c = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
        c.instances = 3;
        c.duration = VirtualDuration::from_mins(8);
        c.tick = VirtualDuration::from_secs(10);
        c.analyzer = AnalyzerConfig::duration_mode();
        c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
        c
    }

    fn app() -> Arc<App> {
        Arc::new(generate_app(&GeneratorConfig::small("chaos-sess", 3)).unwrap())
    }

    /// The parity pin: with an inert injector, every seam layer is a
    /// no-op and the chaos driver must produce a session result equal
    /// **field by field** to the plain driver, in every run mode.
    #[test]
    fn inert_chaos_run_equals_plain_run_field_by_field() {
        for mode in [
            RunMode::Baseline,
            RunMode::TaoptDuration,
            RunMode::TaoptResource,
            RunMode::ActivityPartition,
            RunMode::PatsMasterSlave,
        ] {
            let mut cfg = quick_config();
            cfg.mode = mode;
            cfg.seed = 42;
            if mode == RunMode::TaoptResource {
                cfg.analyzer = AnalyzerConfig::resource_mode();
                cfg.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
                cfg.analyzer.analysis_interval = VirtualDuration::from_secs(20);
            }
            let plain = ParallelSession::run(app(), &cfg);
            let report = run_with_chaos(app(), &cfg, &FaultInjector::inert(9));
            assert_eq!(report.fault_stats.total_injected(), 0);
            assert_eq!(report.devices_lost, 0);
            assert_eq!(report.stream, StreamStats::default());
            assert_eq!(report.unresolved_orphans, 0);
            let chaos = report.session;
            let fields = [
                (
                    "tool",
                    format!("{:?}", plain.tool),
                    format!("{:?}", chaos.tool),
                ),
                (
                    "mode",
                    format!("{:?}", plain.mode),
                    format!("{:?}", chaos.mode),
                ),
                (
                    "instances",
                    format!("{:?}", plain.instances),
                    format!("{:?}", chaos.instances),
                ),
                (
                    "union_curve",
                    format!("{:?}", plain.union_curve),
                    format!("{:?}", chaos.union_curve),
                ),
                (
                    "machine_time",
                    format!("{:?}", plain.machine_time),
                    format!("{:?}", chaos.machine_time),
                ),
                (
                    "wall_clock",
                    format!("{:?}", plain.wall_clock),
                    format!("{:?}", chaos.wall_clock),
                ),
                (
                    "subspaces",
                    format!("{:?}", plain.subspaces),
                    format!("{:?}", chaos.subspaces),
                ),
                (
                    "coordinator_events",
                    format!("{:?}", plain.coordinator_events),
                    format!("{:?}", chaos.coordinator_events),
                ),
                (
                    "concurrency_timeline",
                    format!("{:?}", plain.concurrency_timeline),
                    format!("{:?}", chaos.concurrency_timeline),
                ),
            ];
            for (name, p, c) in fields {
                assert_eq!(p, c, "{mode:?}: field `{name}` diverged under inert chaos");
            }
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let cfg = quick_config();
        let plan = FaultPlan::new(11, FaultRates::uniform(0.05));
        let a = run_with_chaos(app(), &cfg, &FaultInjector::new(plan.clone()));
        let b = run_with_chaos(app(), &cfg, &FaultInjector::new(plan));
        assert_eq!(a.session.union_coverage(), b.session.union_coverage());
        assert_eq!(
            a.fault_stats.total_injected(),
            b.fault_stats.total_injected()
        );
        assert_eq!(a.devices_lost, b.devices_lost);
        assert_eq!(a.stream, b.stream);
    }

    #[test]
    fn device_losses_are_recovered_by_reallocation() {
        let cfg = quick_config();
        let mut rates = FaultRates::none();
        rates.device_loss = 0.03; // per device per 10 s round
        let r = run_with_chaos(app(), &cfg, &FaultInjector::new(FaultPlan::new(5, rates)));
        assert!(r.devices_lost > 0, "schedule should kill devices");
        assert!(r.replacements > 0, "lost devices get replaced");
        assert!(
            r.session.peak_concurrency() <= cfg.instances,
            "d_max holds under churn"
        );
        assert!(r.session.union_coverage() > 0);
    }
}
