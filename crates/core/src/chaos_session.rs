//! Parallel sessions under deterministic fault injection.
//!
//! [`run_with_chaos`] is the chaos-mode counterpart of
//! [`crate::session::ParallelSession::run`]: the same lock-step
//! virtual-time loop, but every seam a real testing cloud can break is
//! routed through a [`FaultInjector`]:
//!
//! * **device farm** — instances can lose their device mid-run,
//!   allocation attempts can be refused, actions can hit latency spikes;
//! * **event bus** — the coordinator does not read instance traces
//!   directly; it sees only the events that survive the bus (drops,
//!   duplicates, delays), repaired into order by sequence numbers
//!   ([`crate::streaming`]'s repair layer);
//! * **enforcement** — block-rule broadcasts go through an
//!   [`EnforcementBroadcaster`] and may fail to apply, being retried
//!   idempotently until acknowledged.
//!
//! The self-healing policies are the ones ISSUE'd by the paper's
//! deployment reality: lost devices are re-allocated with bounded
//! retry/backoff, orphaned subspaces are re-dedicated to survivors, and
//! no fault can make the session exceed `d_max` or run past its budget.
//! With an inert injector the run degenerates to a plain coordinated
//! session, which is the fault-free baseline chaos experiments compare
//! against.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taopt_app_sim::{App, MethodId};
use taopt_chaos::{EventFate, FaultInjector, FaultLog, FaultStats, RecoveryKind};
use taopt_device::DeviceFarm;
use taopt_telemetry::Labels;
use taopt_toller::{InstanceId, InstrumentedInstance};
use taopt_ui_model::{Trace, TraceEvent, VirtualTime};

use crate::analyzer::SubspaceId;
use crate::coordinator::TestCoordinator;
use crate::metrics::curves::CurvePoint;
use crate::resilience::{EnforcementBroadcaster, ReplacementQueue, RetryPolicy};
use crate::session::{InstanceResult, SessionConfig, SessionResult};
use crate::streaming::{Reorder, StreamStats};

/// Everything a chaos run produces: the ordinary session result plus the
/// fault/recovery audit trail.
#[derive(Debug)]
pub struct ChaosReport {
    /// The session outcome (coverage, crashes, subspaces, …).
    pub session: SessionResult,
    /// Every injected fault and recorded recovery.
    pub fault_log: FaultLog,
    /// Aggregated fault/recovery statistics.
    pub fault_stats: FaultStats,
    /// Bus-repair counters across all instances.
    pub stream: StreamStats,
    /// Devices killed by the fault schedule.
    pub devices_lost: usize,
    /// Lost devices successfully re-allocated.
    pub replacements: usize,
    /// Replacement attempts abandoned after the retry budget.
    pub replacements_abandoned: usize,
    /// Enforcement deliveries that needed at least one retry.
    pub enforcement_retries: usize,
    /// Confirmed, unfinished subspaces still blocked for every live
    /// instance when the session ended (the liveness invariant: should
    /// be 0 whenever any instance survived to inherit).
    pub unresolved_orphans: usize,
}

/// One live instance plus its chaos bookkeeping.
struct ChaosInstance {
    inst: InstrumentedInstance,
    device: taopt_device::DeviceId,
    allocated_at: VirtualTime,
    last_new_screen: VirtualTime,
    cover_events: Vec<(VirtualTime, MethodId)>,
    /// Trace events already forwarded onto the (faulty) bus.
    forwarded: usize,
    /// Next sequence number to stamp.
    seq: u64,
    /// Events held back by a delay fault, re-sent next round.
    delayed: Vec<(u64, TraceEvent)>,
    /// Sequence-order repair for the coordinator-view trace.
    repair: Reorder,
    /// What the coordinator actually sees of this instance.
    coord_trace: Trace,
    stream: StreamStats,
}

impl ChaosInstance {
    /// Forwards new trace events through the bus seam and appends the
    /// survivors (in repaired order) to the coordinator-view trace.
    fn pump_bus(&mut self, injector: &FaultInjector, now: VirtualTime) {
        let iid = self.inst.id().0;
        let gaps_before = self.stream.gaps;
        let mut batch: Vec<(u64, TraceEvent)> = std::mem::take(&mut self.delayed);
        for ev in &self.inst.trace().events()[self.forwarded..] {
            let seq = self.seq;
            self.seq += 1;
            match injector.event_fate(iid, seq, now) {
                EventFate::Deliver => batch.push((seq, ev.clone())),
                EventFate::Drop => {}
                EventFate::Duplicate => {
                    batch.push((seq, ev.clone()));
                    batch.push((seq, ev.clone()));
                }
                EventFate::Delay => self.delayed.push((seq, ev.clone())),
            }
        }
        self.forwarded = self.inst.trace().len();
        let published = batch.len() as u64;
        let mut consumed = 0u64;
        for (seq, ev) in batch {
            for ready in self.repair.accept(seq, ev, &mut self.stream) {
                self.coord_trace.push(ready);
                consumed += 1;
            }
        }
        // Mirror the streaming path's bus accounting so chaos and clean
        // sessions expose the same series.
        let telemetry = taopt_telemetry::global();
        telemetry
            .counter_labeled("bus_events_published_total", Labels::seam("bus"))
            .add(published);
        telemetry
            .counter("stream_events_consumed_total")
            .add(consumed);
        for gap in gaps_before..self.stream.gaps {
            let _ = gap;
            injector.record_recovery(now, now, Some(iid), RecoveryKind::StreamRepaired);
        }
    }

    /// Delivers everything still in flight (end of life for the stream).
    fn flush_bus(&mut self, injector: &FaultInjector, now: VirtualTime) {
        for (seq, ev) in std::mem::take(&mut self.delayed) {
            for ready in self.repair.accept(seq, ev, &mut self.stream) {
                self.coord_trace.push(ready);
            }
        }
        for ready in self.repair.flush(&mut self.stream) {
            self.coord_trace.push(ready);
        }
        let _ = (injector, now);
    }
}

/// Runs a fault-injected parallel session to completion.
///
/// Supports the duration-bounded modes ([`crate::session::RunMode`]
/// `Baseline` and `TaoptDuration`; the coordinator runs only for TaOPT
/// modes). The run is fully deterministic given `config.seed` and the
/// injector's plan seed.
pub fn run_with_chaos(
    app: Arc<App>,
    config: &SessionConfig,
    injector: &FaultInjector,
) -> ChaosReport {
    let mut farm = DeviceFarm::new(config.instances);
    let mut coordinator =
        TestCoordinator::new(config.analyzer.clone()).with_stall_timeout(config.stall_timeout);
    let mut broadcaster = EnforcementBroadcaster::new();
    let mut replacements = ReplacementQueue::new(RetryPolicy {
        max_attempts: 6,
        backoff: config.tick,
    });
    let mut active: Vec<ChaosInstance> = Vec::new();
    let mut finished: Vec<InstanceResult> = Vec::new();
    let mut next_instance = 0u32;
    let mut union: BTreeSet<MethodId> = BTreeSet::new();
    let mut union_curve: Vec<CurvePoint> = Vec::new();
    let mut pending_boot: Vec<(VirtualTime, MethodId)> = Vec::new();
    let mut concurrency_timeline: Vec<(VirtualTime, usize)> = Vec::new();
    let mut orphaned_since: BTreeMap<SubspaceId, VirtualTime> = BTreeMap::new();
    let mut replaced = 0usize;
    let mut now = VirtualTime::ZERO;
    let end_at = VirtualTime::ZERO + config.duration;
    let uses_taopt = config.mode.uses_taopt();

    // Boot helper: allocates a device (the caller has already cleared the
    // refusal seam) and wires the instance through the broadcaster.
    let boot = |farm: &mut DeviceFarm,
                coordinator: &mut TestCoordinator,
                broadcaster: &mut EnforcementBroadcaster,
                active: &mut Vec<ChaosInstance>,
                next_instance: &mut u32,
                pending_boot: &mut Vec<(VirtualTime, MethodId)>,
                now: VirtualTime|
     -> bool {
        let Ok(device) = farm.allocate(now) else {
            return false;
        };
        let iid = InstanceId(*next_instance);
        *next_instance += 1;
        let seed = crate::campaign::instance_seed(config.seed, iid);
        let inst = InstrumentedInstance::boot_with(
            iid,
            device,
            Arc::clone(&app),
            config.tool.build(seed),
            seed ^ 0xabcd,
            now,
            config.emulator,
        );
        if uses_taopt {
            // The coordinator writes intent to a shadow list; the
            // broadcaster reconciles it onto the device through the
            // failure-prone enforcement channel.
            let shadow = broadcaster.register(iid, inst.blocklist());
            coordinator.register_instance(iid, shadow);
        }
        let boot_covered: Vec<(VirtualTime, MethodId)> = inst
            .emulator()
            .coverage()
            .covered()
            .iter()
            .map(|m| (now, *m))
            .collect();
        pending_boot.extend(boot_covered.iter().copied());
        active.push(ChaosInstance {
            inst,
            device,
            allocated_at: now,
            last_new_screen: now,
            cover_events: boot_covered,
            forwarded: 0,
            seq: 0,
            delayed: Vec::new(),
            repair: Reorder::default(),
            coord_trace: Trace::new(),
            stream: StreamStats::default(),
        });
        true
    };

    let retire = |mut a: ChaosInstance,
                  device_alive: bool,
                  farm: &mut DeviceFarm,
                  coordinator: &mut TestCoordinator,
                  broadcaster: &mut EnforcementBroadcaster,
                  finished: &mut Vec<InstanceResult>,
                  now: VirtualTime| {
        a.flush_bus(injector, now);
        if device_alive {
            let _ = farm.deallocate(a.device, now);
        }
        if uses_taopt {
            let visited: BTreeSet<_> = a
                .inst
                .trace()
                .events()
                .iter()
                .map(|e| e.abstract_id)
                .collect();
            coordinator.unregister_instance_with_trace(a.inst.id(), &visited);
            broadcaster.unregister(a.inst.id());
        }
        let em = a.inst.emulator();
        finished.push(InstanceResult {
            instance: a.inst.id(),
            allocated_at: a.allocated_at,
            deallocated_at: now,
            covered: em.coverage().covered().clone(),
            cover_events: a.cover_events.clone(),
            crashes: em.crashes().unique_crashes().clone(),
            crash_occurrences: em.crashes().occurrences().to_vec(),
            device: a.device,
            trace: a.inst.trace().clone(),
        });
        a.stream
    };

    for _ in 0..config.instances {
        if injector.refuse_allocation(now) {
            replacements.device_lost(now);
            continue;
        }
        boot(
            &mut farm,
            &mut coordinator,
            &mut broadcaster,
            &mut active,
            &mut next_instance,
            &mut pending_boot,
            now,
        );
    }

    let telemetry = taopt_telemetry::global();
    telemetry.counter("chaos_sessions_started_total").inc();
    let round_counter = telemetry.counter("chaos_rounds_total");
    let cover_counter = telemetry.counter("cover_events_total");
    let coordinator_errors = telemetry.counter("coordinator_errors_total");

    let mut stream_total = StreamStats::default();
    let mut round = 0u64;
    loop {
        round += 1;
        round_counter.inc();
        now += config.tick;
        concurrency_timeline.push((now, active.len()));
        let deadline = now.min(end_at);

        // Latency spikes stall the device before it runs its round.
        for a in active.iter_mut() {
            if let Some(extra) = injector.latency_spike(a.inst.id().0, round, now) {
                a.inst.emulator_mut().idle(extra);
            }
        }

        // Step every instance to the round boundary.
        let mut round_events: Vec<(VirtualTime, MethodId)> = std::mem::take(&mut pending_boot);
        for a in active.iter_mut() {
            for r in a.inst.run_until(deadline) {
                if !r.newly_covered.is_empty() || r.new_screen {
                    a.last_new_screen = r.time;
                }
                for m in &r.newly_covered {
                    a.cover_events.push((r.time, *m));
                    round_events.push((r.time, *m));
                }
            }
        }
        round_events.sort_by_key(|(t, _)| *t);
        cover_counter.add(round_events.len() as u64);
        let consumed = farm.consumed_as_of(now);
        for (t, m) in round_events {
            if union.insert(m) {
                union_curve.push(CurvePoint {
                    time: t,
                    covered: union.len(),
                    machine_time: consumed,
                });
            }
        }

        // Device-loss seam: kill scheduled victims; their unfinished
        // subspaces are settled by the coordinator and a replacement is
        // queued with bounded retry/backoff.
        let mut i = 0;
        while i < active.len() {
            let iid = active[i].inst.id().0;
            if injector.device_loss(iid, round, now) {
                let a = active.swap_remove(i);
                let _ = farm.kill(a.device, now);
                stream_total = add_stream(
                    stream_total,
                    retire(
                        a,
                        false,
                        &mut farm,
                        &mut coordinator,
                        &mut broadcaster,
                        &mut finished,
                        now,
                    ),
                );
                replacements.device_lost(now);
            } else {
                i += 1;
            }
        }

        // Bus seam: forward surviving events, then let the coordinator
        // analyze the repaired coordinator-view traces.
        for a in active.iter_mut() {
            a.pump_bus(injector, now);
            if uses_taopt
                && coordinator
                    .process_trace(a.inst.id(), &a.coord_trace, now)
                    .is_err()
            {
                // A failed dedication degrades this round to uncoordinated
                // exploration; the session keeps running.
                coordinator_errors.inc();
            }
        }

        // Orphan repair: any confirmed subspace whose owner died without
        // an heir is re-dedicated to a live instance.
        if uses_taopt {
            for sid in coordinator.orphaned_subspaces() {
                orphaned_since.entry(sid).or_insert(now);
            }
            for sid in coordinator.orphaned_subspaces() {
                if let Some(heir) = coordinator.rededicate(sid, now) {
                    let since = orphaned_since.remove(&sid).unwrap_or(now);
                    injector.record_recovery(
                        since,
                        now,
                        Some(heir.0),
                        RecoveryKind::SubspaceRededicated,
                    );
                }
            }
        }

        // Enforcement seam: push intended rules onto devices, retrying
        // failed broadcasts from previous rounds.
        if uses_taopt {
            broadcaster.reconcile(injector, now);
        }

        // Stall-based deallocation (TaOPT policy), then termination.
        if uses_taopt {
            let mut i = 0;
            while i < active.len() {
                if coordinator.should_deallocate(active[i].last_new_screen, now) {
                    let a = active.swap_remove(i);
                    stream_total = add_stream(
                        stream_total,
                        retire(
                            a,
                            true,
                            &mut farm,
                            &mut coordinator,
                            &mut broadcaster,
                            &mut finished,
                            now,
                        ),
                    );
                } else {
                    i += 1;
                }
            }
        }
        if now >= end_at {
            break;
        }

        // Re-allocation: queued replacements first (recovery-tracked),
        // then plain top-up to d_max for stall-deallocated slots. Every
        // attempt passes the refusal seam; d_max is a hard ceiling.
        for req in replacements.due(now) {
            if active.len() >= config.instances {
                replacements.defer(req, now);
                continue;
            }
            if injector.refuse_allocation(now) {
                replacements.defer(req, now);
                continue;
            }
            if boot(
                &mut farm,
                &mut coordinator,
                &mut broadcaster,
                &mut active,
                &mut next_instance,
                &mut pending_boot,
                now,
            ) {
                replaced += 1;
                let latency_anchor = req.lost_at;
                let new_iid = next_instance - 1;
                injector.record_recovery(
                    latency_anchor,
                    now,
                    Some(new_iid),
                    RecoveryKind::DeviceReallocated,
                );
            } else {
                replacements.defer(req, now);
            }
        }
        while active.len() + replacements.outstanding() < config.instances {
            if injector.refuse_allocation(now) {
                break; // retried implicitly next round
            }
            if !boot(
                &mut farm,
                &mut coordinator,
                &mut broadcaster,
                &mut active,
                &mut next_instance,
                &mut pending_boot,
                now,
            ) {
                break;
            }
        }
    }

    // Give orphans one last chance while instances are still registered,
    // then measure the invariant.
    if uses_taopt {
        for sid in coordinator.orphaned_subspaces() {
            let since = orphaned_since.remove(&sid).unwrap_or(now);
            if let Some(heir) = coordinator.rededicate(sid, now) {
                injector.record_recovery(
                    since,
                    now,
                    Some(heir.0),
                    RecoveryKind::SubspaceRededicated,
                );
            }
        }
    }
    let unresolved_orphans = if uses_taopt {
        coordinator.orphaned_subspaces().len()
    } else {
        0
    };

    let end = now;
    for a in active.drain(..) {
        stream_total = add_stream(
            stream_total,
            retire(
                a,
                true,
                &mut farm,
                &mut coordinator,
                &mut broadcaster,
                &mut finished,
                end,
            ),
        );
    }
    finished.sort_by_key(|r| r.instance);

    // The coordinator is done: move the registry and decision log out
    // instead of cloning them.
    let machine_time = farm.consumed();
    let (subspaces, coordinator_events) = coordinator.into_report();
    let session = SessionResult {
        tool: config.tool,
        mode: config.mode,
        instances: finished,
        union_curve,
        machine_time,
        wall_clock: end.since(VirtualTime::ZERO),
        subspaces,
        coordinator_events,
        concurrency_timeline,
    };
    ChaosReport {
        session,
        fault_log: injector.log_snapshot(),
        fault_stats: injector.stats(),
        stream: stream_total,
        devices_lost: farm.lost_count(),
        replacements: replaced,
        replacements_abandoned: replacements.given_up(),
        enforcement_retries: broadcaster.reapplied(),
        unresolved_orphans,
    }
}

fn add_stream(a: StreamStats, b: StreamStats) -> StreamStats {
    StreamStats {
        gaps: a.gaps + b.gaps,
        duplicates: a.duplicates + b.duplicates,
        reordered: a.reordered + b.reordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerConfig;
    use crate::session::RunMode;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_chaos::{FaultPlan, FaultRates};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    fn quick_config() -> SessionConfig {
        let mut c = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
        c.instances = 3;
        c.duration = VirtualDuration::from_mins(8);
        c.tick = VirtualDuration::from_secs(10);
        c.analyzer = AnalyzerConfig::duration_mode();
        c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
        c
    }

    fn app() -> Arc<App> {
        Arc::new(generate_app(&GeneratorConfig::small("chaos-sess", 3)).unwrap())
    }

    #[test]
    fn inert_chaos_run_matches_a_plain_coordinated_run_shape() {
        let cfg = quick_config();
        let r = run_with_chaos(app(), &cfg, &FaultInjector::inert(1));
        assert_eq!(r.fault_stats.total_injected(), 0);
        assert_eq!(r.devices_lost, 0);
        assert_eq!(r.stream, StreamStats::default());
        assert!(r.session.union_coverage() > 0);
        assert!(r.session.peak_concurrency() <= cfg.instances);
        assert_eq!(r.unresolved_orphans, 0);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let cfg = quick_config();
        let plan = FaultPlan::new(11, FaultRates::uniform(0.05));
        let a = run_with_chaos(app(), &cfg, &FaultInjector::new(plan.clone()));
        let b = run_with_chaos(app(), &cfg, &FaultInjector::new(plan));
        assert_eq!(a.session.union_coverage(), b.session.union_coverage());
        assert_eq!(
            a.fault_stats.total_injected(),
            b.fault_stats.total_injected()
        );
        assert_eq!(a.devices_lost, b.devices_lost);
        assert_eq!(a.stream, b.stream);
    }

    #[test]
    fn device_losses_are_recovered_by_reallocation() {
        let cfg = quick_config();
        let mut rates = FaultRates::none();
        rates.device_loss = 0.03; // per instance per 10 s round
        let r = run_with_chaos(app(), &cfg, &FaultInjector::new(FaultPlan::new(5, rates)));
        assert!(r.devices_lost > 0, "schedule should kill devices");
        assert!(r.replacements > 0, "lost devices get replaced");
        assert!(
            r.session.peak_concurrency() <= cfg.instances,
            "d_max holds under churn"
        );
        assert!(r.session.union_coverage() > 0);
    }
}
