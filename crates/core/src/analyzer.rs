//! The on-the-fly trace analyzer (§5.2).
//!
//! One [`OnlineTraceAnalyzer`] serves a whole parallel run. It
//! periodically runs [`crate::findspace::find_space`] on each instance's
//! growing trace,
//! turns accepted splits into **subspace reports** (entry widget + screen
//! set), deduplicates reports across instances by screen-set overlap, and
//! applies the paper's confirmation policy:
//!
//! * resource-constrained mode, `l_min^long = 5 min`: a single report is
//!   "confidently accepted at once";
//! * duration-constrained mode, `l_min^short = 1 min`: accepted "only when
//!   reported by at least two testing instances".

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use taopt_toller::{EntrypointRule, InstanceId};
use taopt_ui_model::{AbstractScreenId, Trace, VirtualDuration, VirtualTime};

use crate::findspace::{FindSpaceConfig, FindSpaceEngine, SimilarityCache};

/// Containment coefficient `|A∩B| / min(|A|, |B|)` (1.0 when either set
/// is contained in the other; 0 when disjoint or either is empty).
fn containment(a: &BTreeSet<AbstractScreenId>, b: &BTreeSet<AbstractScreenId>) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    a.intersection(b).count() as f64 / min as f64
}

/// Identifier of an identified UI subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubspaceId(pub u32);

impl fmt::Display for SubspaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// Analyzer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// `FindSpace` parameters (including `l_min`).
    pub find_space: FindSpaceConfig,
    /// Independent instance reports required before a subspace is accepted.
    pub confirmations_required: usize,
    /// Minimum gap between analyses of the same instance's trace.
    pub analysis_interval: VirtualDuration,
    /// Minimum trace growth (events) before re-analysis.
    pub min_new_events: usize,
    /// Screen-set containment coefficient (`|A∩B| / min(|A|,|B|)`) above
    /// which two reports describe the same subspace. Containment (rather
    /// than symmetric Jaccard) also merges *nested* reports — a deep
    /// region of an already-identified subspace must never become a
    /// separate subspace with a different owner, or its owner could be
    /// locked out of the enclosing entrypoint.
    pub merge_jaccard: f64,
    /// Minimum distinct screens a reported subspace must contain. Guards
    /// against fragmenting a functionality into micro-subspaces whose
    /// blocking rules would partition the space too finely.
    pub min_subspace_screens: usize,
}

impl AnalyzerConfig {
    /// Parameters for the duration-constrained mode
    /// (`l_min^short = 1 min`, two confirmations).
    pub fn duration_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(1),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 2,
            analysis_interval: VirtualDuration::from_secs(20),
            min_new_events: 10,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
        }
    }

    /// Parameters for the resource-constrained mode
    /// (`l_min^long = 5 min`, accepted at once).
    pub fn resource_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(5),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 1,
            analysis_interval: VirtualDuration::from_secs(45),
            min_new_events: 20,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
        }
    }
}

/// One identified loosely coupled UI subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct SubspaceInfo {
    /// Registry id.
    pub id: SubspaceId,
    /// Entry widgets discovered for this subspace (blocking all of them
    /// seals the subspace).
    pub entrypoints: Vec<EntrypointRule>,
    /// Abstract screens belonging to the subspace.
    pub screens: BTreeSet<AbstractScreenId>,
    /// Instances that independently reported it.
    pub reporters: BTreeSet<InstanceId>,
    /// Whether the confirmation policy has accepted it.
    pub confirmed: bool,
    /// Time of first report.
    pub first_reported: VirtualTime,
    /// Instance the subspace is dedicated to (set by the coordinator).
    pub owner: Option<InstanceId>,
}

/// Per-instance analysis state: the due-gating cursor plus the
/// persistent incremental [`FindSpaceEngine`] mirroring the instance's
/// analysis window (`trace[start_index..]`).
#[derive(Debug)]
struct InstanceState {
    last_run: Option<VirtualTime>,
    last_len: usize,
    /// Absolute index into the trace where analysis restarts after an
    /// accepted split.
    start_index: usize,
    /// Incremental FindSpace state for the current window. Reset (and
    /// lazily re-fed) whenever the window rebases: an accepted split
    /// moves `start_index`, or the instance's trace is replaced.
    engine: FindSpaceEngine,
}

impl InstanceState {
    fn new(config: &FindSpaceConfig) -> Self {
        InstanceState {
            last_run: None,
            last_len: 0,
            start_index: 0,
            engine: FindSpaceEngine::new(config.clone()),
        }
    }
}

/// The on-the-fly trace analyzer shared by all instances of a run.
#[derive(Debug)]
pub struct OnlineTraceAnalyzer {
    config: AnalyzerConfig,
    subspaces: Vec<SubspaceInfo>,
    instances: HashMap<InstanceId, InstanceState>,
    similarity_cache: SimilarityCache,
    /// Bumped on every subspace-registry mutation; lets snapshot
    /// publishers detect changes in `O(1)` instead of comparing vectors.
    version: u64,
    /// Per-analysis latency of the incremental FindSpace run, in µs.
    analysis_latency: taopt_telemetry::Histogram,
}

impl OnlineTraceAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        OnlineTraceAnalyzer {
            config,
            subspaces: Vec::new(),
            instances: HashMap::new(),
            similarity_cache: SimilarityCache::new(),
            version: 0,
            analysis_latency: taopt_telemetry::global().histogram("findspace_analysis_us"),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// All subspaces in the registry (confirmed or pending).
    pub fn subspaces(&self) -> &[SubspaceInfo] {
        &self.subspaces
    }

    /// Looks up a subspace.
    pub fn subspace(&self, id: SubspaceId) -> Option<&SubspaceInfo> {
        self.subspaces.get(id.0 as usize)
    }

    /// Records the dedication decided by the coordinator.
    pub fn set_owner(&mut self, id: SubspaceId, owner: InstanceId) {
        if let Some(s) = self.subspaces.get_mut(id.0 as usize) {
            s.owner = Some(owner);
            self.version += 1;
        }
    }

    /// Monotone counter bumped on every subspace-registry mutation.
    /// Publishers snapshot [`subspaces`](Self::subspaces) only when this
    /// changes, avoiding a full-vector comparison (or clone) per poll.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops all per-instance analysis state (cursor + incremental
    /// engine). Call when an instance retires or its device is replaced:
    /// a successor re-using the id must not inherit a stale window.
    pub fn forget_instance(&mut self, instance: InstanceId) {
        self.instances.remove(&instance);
    }

    /// Analyzes an instance's trace if it is due; returns the ids of
    /// subspaces that became **newly confirmed** by this call.
    pub fn maybe_analyze(
        &mut self,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        let state = self
            .instances
            .entry(instance)
            .or_insert_with(|| InstanceState::new(&self.config.find_space));
        if let Some(last) = state.last_run {
            if now.since(last) < self.config.analysis_interval {
                return Vec::new();
            }
        }
        if trace.len() < state.last_len + self.config.min_new_events {
            return Vec::new();
        }
        state.last_run = Some(now);
        state.last_len = trace.len();
        // Span opens after the due-gating above, so it times actual
        // FindSpace runs rather than every per-round poll.
        let _span = taopt_telemetry::global()
            .span("findspace")
            .instance(instance.0)
            .at(now)
            .enter();
        let start = state.start_index.min(trace.len());
        let window = &trace.events()[start..];
        // The engine mirrors `window` incrementally: only events appended
        // since the last analysis are fed. A shrunk window means the
        // trace was replaced under this id — start over.
        if window.len() < state.engine.len() {
            state.engine.reset();
        }
        let timer = std::time::Instant::now();
        state.engine.extend_from(window, &mut self.similarity_cache);
        let candidates = state.engine.analyze(5);
        self.analysis_latency
            .record(timer.elapsed().as_micros() as u64);
        let events = trace.events();
        for split in candidates {
            let abs = start + split.index;
            if abs == 0 {
                continue;
            }
            // The entrypoint is the widget fired on the screen *before*
            // the split that produced the first in-subspace screen.
            let Some(rid) = events[abs].action_widget_rid.clone() else {
                continue;
            };
            // Screens already visited repeatedly before the split are
            // *transit* infrastructure (hubs, tab bars); the subspace must
            // only contain territory that is new at the split.
            let mut prefix_counts: HashMap<AbstractScreenId, usize> = HashMap::new();
            for e in &events[..abs] {
                *prefix_counts.entry(e.abstract_id).or_insert(0) += 1;
            }
            let is_transit =
                |id: &AbstractScreenId| prefix_counts.get(id).copied().unwrap_or(0) >= 2;
            // Validity of the entry rule: the fired widget must sit on a
            // well-established *hub* screen (as in the paper's motivating
            // example, where "the button leading to SearchTabsActivity
            // will be disabled on the main screen") and land on territory
            // never seen before the split. Anchoring on hubs prevents two
            // failure modes: blocking a cluster's internal navigation for
            // other instances, and splitting one cluster into nested
            // subspaces with different owners that lock each other out.
            let host_screen = events[abs - 1].abstract_id;
            let target_screen = events[abs].abstract_id;
            if prefix_counts.get(&host_screen).copied().unwrap_or(0) < 3
                || prefix_counts.contains_key(&target_screen)
            {
                continue;
            }
            // The subspace is the cohesive region entered at the split:
            // the connected component of the entry target in the suffix's
            // transition structure, with transit screens removed.
            let mut adjacency: HashMap<AbstractScreenId, BTreeSet<AbstractScreenId>> =
                HashMap::new();
            for w in events[abs..].windows(2) {
                let (a, b) = (w[0].abstract_id, w[1].abstract_id);
                if a != b && !is_transit(&a) && !is_transit(&b) {
                    adjacency.entry(a).or_default().insert(b);
                    adjacency.entry(b).or_default().insert(a);
                }
            }
            let mut screens: BTreeSet<AbstractScreenId> = BTreeSet::new();
            let mut queue = vec![target_screen];
            while let Some(sc) = queue.pop() {
                if screens.insert(sc) {
                    if let Some(next) = adjacency.get(&sc) {
                        queue.extend(next.iter().copied());
                    }
                }
            }
            if screens.len() < self.config.min_subspace_screens || screens.contains(&host_screen) {
                continue;
            }
            let entry = EntrypointRule::new(host_screen, &*rid);
            // Future analyses for this instance start inside the subspace:
            // the window rebases to `abs`, so the engine restarts empty
            // and is re-fed from there on the next due analysis.
            // Infallible: this method is only reached from `maybe_analyze`,
            // which inserts the state for `instance` before calling here.
            let state = self.instances.get_mut(&instance).expect("state exists");
            state.start_index = abs;
            state.engine.reset();
            return self
                .register_report(instance, entry, screens, now)
                .into_iter()
                .collect();
        }
        Vec::new()
    }

    /// Registers a subspace report directly (used by tests and by offline
    /// replay); returns the id if the report *newly confirmed* a subspace.
    pub fn register_report(
        &mut self,
        instance: InstanceId,
        entry: EntrypointRule,
        screens: BTreeSet<AbstractScreenId>,
        now: VirtualTime,
    ) -> Option<SubspaceId> {
        // Conservatively treat every report as a registry change: a merge
        // can add entrypoints/reporters, a miss adds a subspace. Spurious
        // bumps only cost a publisher one extra snapshot.
        self.version += 1;
        // Merge with an existing subspace if screen sets overlap enough
        // (containment: nested regions merge into their enclosing
        // subspace) or the entrypoint matches.
        let existing = self.subspaces.iter().position(|s| {
            s.entrypoints.contains(&entry)
                || containment(&s.screens, &screens) >= self.config.merge_jaccard
        });
        let idx = match existing {
            Some(i) => {
                // Keep the first report's screen set: extending on every
                // merge lets subspaces drift and chain-absorb neighbours.
                let s = &mut self.subspaces[i];
                if !s.entrypoints.contains(&entry) {
                    s.entrypoints.push(entry);
                }
                s.reporters.insert(instance);
                i
            }
            None => {
                let id = SubspaceId(self.subspaces.len() as u32);
                self.subspaces.push(SubspaceInfo {
                    id,
                    entrypoints: vec![entry],
                    screens,
                    reporters: [instance].into_iter().collect(),
                    confirmed: false,
                    first_reported: now,
                    owner: None,
                });
                self.subspaces.len() - 1
            }
        };
        let s = &mut self.subspaces[idx];
        if !s.confirmed && s.reporters.len() >= self.config.confirmations_required {
            s.confirmed = true;
            Some(s.id)
        } else {
            None
        }
    }

    /// Consumes the analyzer, yielding the subspace registry by move —
    /// the change-free way to extract the final report.
    pub fn into_subspaces(self) -> Vec<SubspaceInfo> {
        self.subspaces
    }

    /// Confirmed subspaces, in identification order.
    pub fn confirmed(&self) -> impl Iterator<Item = &SubspaceInfo> {
        self.subspaces.iter().filter(|s| s.confirmed)
    }

    /// Summary: subspace count by confirmation state.
    pub fn stats(&self) -> BTreeMap<&'static str, usize> {
        let confirmed = self.subspaces.iter().filter(|s| s.confirmed).count();
        [
            ("confirmed", confirmed),
            ("pending", self.subspaces.len() - confirmed),
        ]
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_ui_model::AbstractScreenId;

    fn screens(ids: &[u64]) -> BTreeSet<AbstractScreenId> {
        ids.iter().map(|i| AbstractScreenId(*i)).collect()
    }

    fn rule(host: u64, rid: &str) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(host), rid)
    }

    #[test]
    fn single_report_confirms_in_resource_mode() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert!(id.is_some());
        assert!(a.subspace(id.unwrap()).unwrap().confirmed);
    }

    #[test]
    fn duration_mode_needs_two_reporters() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::duration_mode());
        let first = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert_eq!(first, None, "one reporter is not enough in duration mode");
        // A second report from the *same* instance does not confirm.
        let again = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 13]),
            VirtualTime::from_secs(5),
        );
        assert_eq!(again, None);
        // A different instance confirms.
        let second = a.register_report(
            InstanceId(1),
            rule(1, "tab_shop"),
            screens(&[10, 12, 13]),
            VirtualTime::from_secs(9),
        );
        assert!(second.is_some());
        let info = a.subspace(second.unwrap()).unwrap();
        assert!(info.confirmed);
        assert_eq!(info.reporters.len(), 2);
        assert_eq!(a.subspaces().len(), 1, "reports merged into one subspace");
    }

    #[test]
    fn overlapping_screen_sets_merge_even_with_new_entrypoint() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11, 12, 13]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(1),
            rule(2, "deeplink_b"),
            screens(&[10, 11, 12, 14]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 1);
        assert_eq!(
            a.subspaces()[0].entrypoints.len(),
            2,
            "both entrypoints kept"
        );
    }

    #[test]
    fn disjoint_reports_create_distinct_subspaces() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(0),
            rule(1, "tab_b"),
            screens(&[20, 21]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 2);
        assert_eq!(a.stats()["confirmed"], 2);
    }

    #[test]
    fn maybe_analyze_respects_interval_and_growth() {
        use crate::findspace::tests::two_cluster_trace;
        let mut cfg = AnalyzerConfig::resource_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(20);
        cfg.analysis_interval = VirtualDuration::from_secs(30);
        cfg.min_new_events = 5;
        let mut a = OnlineTraceAnalyzer::new(cfg);
        let trace: Trace = two_cluster_trace(30, 50).into_iter().collect();
        let now = trace.end_time().unwrap();
        let confirmed = a.maybe_analyze(InstanceId(0), &trace, now);
        assert_eq!(
            confirmed.len(),
            1,
            "clean two-cluster trace confirms at once"
        );
        // Immediately re-analyzing is throttled.
        let again = a.maybe_analyze(InstanceId(0), &trace, now);
        assert!(again.is_empty());
    }

    #[test]
    fn owner_assignment_is_recorded() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a
            .register_report(
                InstanceId(0),
                rule(1, "t"),
                screens(&[1, 2]),
                VirtualTime::ZERO,
            )
            .unwrap();
        a.set_owner(id, InstanceId(0));
        assert_eq!(a.subspace(id).unwrap().owner, Some(InstanceId(0)));
    }
}
