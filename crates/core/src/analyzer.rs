//! The on-the-fly trace analyzer (§5.2).
//!
//! One [`OnlineTraceAnalyzer`] serves a whole parallel run. It
//! periodically runs [`crate::findspace::find_space`] on each instance's
//! growing trace,
//! turns accepted splits into **subspace reports** (entry widget + screen
//! set), deduplicates reports across instances by screen-set overlap, and
//! applies the paper's confirmation policy:
//!
//! * resource-constrained mode, `l_min^long = 5 min`: a single report is
//!   "confidently accepted at once";
//! * duration-constrained mode, `l_min^short = 1 min`: accepted "only when
//!   reported by at least two testing instances".

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use taopt_toller::{EntrypointRule, InstanceId};
use taopt_ui_model::{AbstractScreenId, Trace, TraceEvent, VirtualDuration, VirtualTime};

use crate::campaign::pool::ComputePool;
use crate::findspace::{
    FindSpaceConfig, FindSpaceEngine, ScreenArena, SimilarityCache, SplitCandidate,
};
use crate::warmstart::{WarmStart, WarmSubspace};

/// Containment coefficient `|A∩B| / min(|A|, |B|)` (1.0 when either set
/// is contained in the other; 0 when disjoint or either is empty).
fn containment(a: &BTreeSet<AbstractScreenId>, b: &BTreeSet<AbstractScreenId>) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    a.intersection(b).count() as f64 / min as f64
}

/// Identifier of an identified UI subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubspaceId(pub u32);

impl fmt::Display for SubspaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// Analyzer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// `FindSpace` parameters (including `l_min`).
    pub find_space: FindSpaceConfig,
    /// Independent instance reports required before a subspace is accepted.
    pub confirmations_required: usize,
    /// Minimum gap between analyses of the same instance's trace.
    pub analysis_interval: VirtualDuration,
    /// Minimum trace growth (events) before re-analysis.
    pub min_new_events: usize,
    /// Screen-set containment coefficient (`|A∩B| / min(|A|,|B|)`) above
    /// which two reports describe the same subspace. Containment (rather
    /// than symmetric Jaccard) also merges *nested* reports — a deep
    /// region of an already-identified subspace must never become a
    /// separate subspace with a different owner, or its owner could be
    /// locked out of the enclosing entrypoint.
    pub merge_jaccard: f64,
    /// Minimum distinct screens a reported subspace must contain. Guards
    /// against fragmenting a functionality into micro-subspaces whose
    /// blocking rules would partition the space too finely.
    pub min_subspace_screens: usize,
    /// Host threads [`OnlineTraceAnalyzer::ingest_round`] may use for
    /// the per-instance analysis phase **when no compute pool is
    /// attached** (the legacy per-call scoped-thread path). Results are
    /// byte-identical at any value (the phase touches only per-instance
    /// state plus the sharded, order-independent similarity cache);
    /// `1` keeps the phase inline.
    ///
    /// Deprecated knob: superseded by the campaign-wide host budget
    /// (`CampaignConfig::host_threads`). With a pool attached via
    /// [`OnlineTraceAnalyzer::set_compute`] the worker count is derived
    /// from the pool's budget and this value is ignored — one knob for
    /// the whole campaign instead of one per analyzer.
    pub analysis_workers: usize,
    /// Minimum summed window length (events past each instance's
    /// `start_index`, over the whole batch) before phase A is shipped
    /// to an attached [`ComputePool`]. Below it the batch runs inline:
    /// job submission, worker wake-up and the per-item event clone cost
    /// more than a few microsecond sweeps return. Purely a *where*
    /// knob — results are byte-identical either way (the
    /// `pooled_ingestion_*` law pins it at 0, engaging the pool for
    /// every batch).
    pub pool_min_window: usize,
}

impl AnalyzerConfig {
    /// Parameters for the duration-constrained mode
    /// (`l_min^short = 1 min`, two confirmations).
    pub fn duration_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(1),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 2,
            analysis_interval: VirtualDuration::from_secs(20),
            min_new_events: 10,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
            analysis_workers: 1,
            pool_min_window: 4096,
        }
    }

    /// Parameters for the resource-constrained mode
    /// (`l_min^long = 5 min`, accepted at once).
    pub fn resource_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(5),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 1,
            analysis_interval: VirtualDuration::from_secs(45),
            min_new_events: 20,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
            analysis_workers: 1,
            pool_min_window: 4096,
        }
    }
}

/// One identified loosely coupled UI subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct SubspaceInfo {
    /// Registry id.
    pub id: SubspaceId,
    /// Entry widgets discovered for this subspace (blocking all of them
    /// seals the subspace).
    pub entrypoints: Vec<EntrypointRule>,
    /// Abstract screens belonging to the subspace.
    pub screens: BTreeSet<AbstractScreenId>,
    /// Instances that independently reported it.
    pub reporters: BTreeSet<InstanceId>,
    /// Whether the confirmation policy has accepted it.
    pub confirmed: bool,
    /// Time of first report.
    pub first_reported: VirtualTime,
    /// Instance the subspace is dedicated to (set by the coordinator).
    pub owner: Option<InstanceId>,
}

/// Per-instance analysis state: the due-gating cursor plus the
/// persistent incremental [`FindSpaceEngine`] mirroring the instance's
/// analysis window (`trace[start_index..]`).
#[derive(Debug)]
struct InstanceState {
    last_run: Option<VirtualTime>,
    last_len: usize,
    /// Absolute index into the trace where analysis restarts after an
    /// accepted split.
    start_index: usize,
    /// Incremental FindSpace state for the current window. Reset (and
    /// lazily re-fed) whenever the window rebases: an accepted split
    /// moves `start_index`, or the instance's trace is replaced.
    engine: FindSpaceEngine,
}

impl InstanceState {
    fn new(config: &FindSpaceConfig, arena: Arc<ScreenArena>) -> Self {
        InstanceState {
            last_run: None,
            last_len: 0,
            start_index: 0,
            engine: FindSpaceEngine::with_arena(config.clone(), arena),
        }
    }
}

/// The on-the-fly trace analyzer shared by all instances of a run.
#[derive(Debug)]
pub struct OnlineTraceAnalyzer {
    config: AnalyzerConfig,
    subspaces: Vec<SubspaceInfo>,
    instances: HashMap<InstanceId, InstanceState>,
    /// `Arc` so pooled phase-A tasks can hold the cache without
    /// borrowing the analyzer; the cache is internally thread-safe and
    /// its decisions are order-independent.
    similarity_cache: Arc<SimilarityCache>,
    /// Campaign-wide host budget for phase A of
    /// [`ingest_round`](Self::ingest_round); `None` falls back to the
    /// legacy `analysis_workers` scoped-thread path.
    compute: Option<Arc<ComputePool>>,
    /// Per-app screen interner shared by every instance's engine.
    arena: Arc<ScreenArena>,
    /// Bumped on every subspace-registry mutation; lets snapshot
    /// publishers detect changes in `O(1)` instead of comparing vectors.
    version: u64,
    /// Per-analysis latency of the incremental FindSpace run, in µs.
    analysis_latency: taopt_telemetry::Histogram,
    /// Live pair decisions held by the similarity cache.
    cache_entries: taopt_telemetry::Gauge,
    /// Batch-contract violations: duplicate instances skipped by
    /// [`ingest_round`](Self::ingest_round) (release builds skip and
    /// count; debug builds assert).
    duplicates_counter: taopt_telemetry::Counter,
}

/// A split candidate that survived validation: everything the apply
/// step needs to rebase the instance's window and register the report.
///
/// Producing one reads only the trace window and config thresholds —
/// never the subspace registry — which is exactly why candidate
/// validation runs in phase A, concurrently across instances, while
/// only [`OnlineTraceAnalyzer::apply_validated`] stays sequential in
/// batch order (DESIGN.md §16).
#[derive(Debug)]
struct ValidatedSplit {
    /// Absolute trace index of the accepted split.
    split_at: usize,
    entry: EntrypointRule,
    screens: BTreeSet<AbstractScreenId>,
}

impl OnlineTraceAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        OnlineTraceAnalyzer {
            config,
            subspaces: Vec::new(),
            instances: HashMap::new(),
            similarity_cache: Arc::new(SimilarityCache::new()),
            compute: None,
            arena: Arc::new(ScreenArena::new()),
            version: 0,
            analysis_latency: taopt_telemetry::global().histogram("findspace_analysis_us"),
            cache_entries: taopt_telemetry::global().gauge("similarity_cache_entries"),
            duplicates_counter: taopt_telemetry::global()
                .counter("analyzer_duplicate_instance_total"),
        }
    }

    /// Creates an analyzer seeded from a previous campaign's
    /// [`WarmStart`] bundle.
    ///
    /// The pure accelerators (similarity decisions, arena reps) are
    /// seeded unconditionally — they can only skip computes. Each bundled
    /// subspace enters the registry already-confirmed with **no owner and
    /// no reporters**: the coordinator's `register_instance` then blocks
    /// its entrypoints on every booting instance, and the per-round
    /// orphan-repair pass re-dedicates it at the first round — "untouched
    /// subspaces are re-dedicated immediately". Callers are responsible
    /// for invalidating the bundle against the release diff first
    /// ([`WarmStart::invalidate`]).
    pub fn with_warm_start(config: AnalyzerConfig, warm: &WarmStart) -> Self {
        let mut a = Self::new(config);
        let seeded = a.similarity_cache.seed(warm.similarity.iter());
        a.cache_entries.set(a.similarity_cache.len() as i64);
        // Gauge-consistency contract with `forget_instance`: on a fresh
        // cache every bundled entry inserts exactly once, so the gauge
        // equals the seed count — seeded entries are never double-counted.
        debug_assert_eq!(
            a.similarity_cache.len(),
            seeded,
            "warm-start seeded a non-fresh similarity cache"
        );
        for rep in &warm.arena_reps {
            a.arena.resolve(rep);
        }
        for ws in &warm.subspaces {
            let id = SubspaceId(a.subspaces.len() as u32);
            a.subspaces.push(SubspaceInfo {
                id,
                entrypoints: ws.entrypoints.clone(),
                screens: ws.screens.clone(),
                reporters: BTreeSet::new(),
                confirmed: true,
                first_reported: VirtualTime::ZERO,
                owner: None,
            });
        }
        if !a.subspaces.is_empty() {
            a.version += 1;
        }
        a
    }

    /// Captures the learned state of this analyzer as a [`WarmStart`]
    /// bundle for the next version's campaign. Call before instances are
    /// forgotten (retirement evicts cache entries). `coverage_baseline`
    /// is the capturing session's final union coverage.
    pub fn warm_start(&self, coverage_baseline: usize) -> WarmStart {
        WarmStart {
            subspaces: self
                .confirmed()
                .map(|s| WarmSubspace {
                    entrypoints: s.entrypoints.clone(),
                    screens: s.screens.clone(),
                })
                .collect(),
            similarity: self.similarity_cache.snapshot().into_iter().collect(),
            arena_reps: self.arena.reps_snapshot(),
            coverage_baseline,
        }
    }

    /// Attaches a campaign-wide [`ComputePool`]: phase A of
    /// [`ingest_round`](Self::ingest_round) is then scheduled on it
    /// whenever its budget and the batch allow parallelism, superseding
    /// the per-analyzer `analysis_workers` knob (one budget for the
    /// whole campaign). Results are byte-identical either way.
    pub fn set_compute(&mut self, pool: Arc<ComputePool>) {
        self.compute = Some(pool);
    }

    /// The shared pairwise-similarity cache (sharded; see
    /// [`SimilarityCache`]). Exposed for occupancy tests and gauges.
    pub fn similarity_cache(&self) -> &SimilarityCache {
        &self.similarity_cache
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// All subspaces in the registry (confirmed or pending).
    pub fn subspaces(&self) -> &[SubspaceInfo] {
        &self.subspaces
    }

    /// Looks up a subspace.
    pub fn subspace(&self, id: SubspaceId) -> Option<&SubspaceInfo> {
        self.subspaces.get(id.0 as usize)
    }

    /// Records the dedication decided by the coordinator.
    pub fn set_owner(&mut self, id: SubspaceId, owner: InstanceId) {
        if let Some(s) = self.subspaces.get_mut(id.0 as usize) {
            s.owner = Some(owner);
            self.version += 1;
        }
    }

    /// Monotone counter bumped on every subspace-registry mutation.
    /// Publishers snapshot [`subspaces`](Self::subspaces) only when this
    /// changes, avoiding a full-vector comparison (or clone) per poll.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops a retired instance's analysis state (cursor + incremental
    /// engine) and evicts similarity-cache decisions that involve
    /// screens **only this instance's window** had seen — pairs no
    /// surviving engine can ask about again. Screens shared with any
    /// live window are retained (their decisions stay hot), as are
    /// screens from windows already rebased away, which the next
    /// eviction or a cold recompute covers; the
    /// `similarity_cache_entries` gauge tracks residual occupancy.
    ///
    /// Call when an instance retires or its device is replaced: a
    /// successor re-using the id must not inherit a stale window.
    pub fn forget_instance(&mut self, instance: InstanceId) {
        let Some(state) = self.instances.remove(&instance) else {
            return;
        };
        let mut dying: BTreeSet<u64> = state.engine.abstract_screen_ids().collect();
        for other in self.instances.values() {
            if dying.is_empty() {
                break;
            }
            for id in other.engine.abstract_screen_ids() {
                dying.remove(&id);
            }
        }
        self.similarity_cache.evict_screens(&dying);
        self.cache_entries.set(self.similarity_cache.len() as i64);
    }

    /// Due-gating half of an analysis: interval and growth checks,
    /// advancing the cursor when due. Cheap and registry-map-bound
    /// (`&mut InstanceState`), so every ingestion path decides dueness
    /// inline before shipping the expensive sweep anywhere.
    fn analysis_due(
        config: &AnalyzerConfig,
        state: &mut InstanceState,
        trace_len: usize,
        now: VirtualTime,
    ) -> bool {
        if let Some(last) = state.last_run {
            if now.since(last) < config.analysis_interval {
                return false;
            }
        }
        if trace_len < state.last_len + config.min_new_events {
            return false;
        }
        state.last_run = Some(now);
        state.last_len = trace_len;
        true
    }

    /// The per-instance sweep: engine catch-up plus the FindSpace
    /// analysis. Touches only `state` and the (thread-safe) `cache` —
    /// no registry access — so [`ingest_round`](Self::ingest_round) may
    /// run it for many instances concurrently with byte-identical
    /// results.
    fn analysis_sweep(
        state: &mut InstanceState,
        instance: InstanceId,
        events: &[TraceEvent],
        now: VirtualTime,
        cache: &SimilarityCache,
        latency: &taopt_telemetry::Histogram,
    ) -> (usize, Vec<SplitCandidate>) {
        // Span opens after due-gating, so it times actual FindSpace
        // runs rather than every per-round poll.
        let _span = taopt_telemetry::global()
            .span("findspace")
            .instance(instance.0)
            .at(now)
            .enter();
        let start = state.start_index.min(events.len());
        let window = &events[start..];
        // The engine mirrors `window` incrementally: only events appended
        // since the last analysis are fed. A shrunk window means the
        // trace was replaced under this id — start over.
        if window.len() < state.engine.len() {
            state.engine.reset();
        }
        let timer = std::time::Instant::now();
        state.engine.extend_from(window, cache);
        let candidates = state.engine.analyze(5);
        latency.record(timer.elapsed().as_micros() as u64);
        (start, candidates)
    }

    /// One instance's complete phase-A work: due-gating, sweep, and
    /// candidate validation. Registry-free throughout.
    fn analyze_one(
        config: &AnalyzerConfig,
        state: &mut InstanceState,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
        cache: &SimilarityCache,
        latency: &taopt_telemetry::Histogram,
    ) -> Option<ValidatedSplit> {
        if !Self::analysis_due(config, state, trace.len(), now) {
            return None;
        }
        let events = trace.events();
        let (start, candidates) =
            Self::analysis_sweep(state, instance, events, now, cache, latency);
        Self::validate_candidates(config.min_subspace_screens, events, start, candidates)
    }

    /// Analyzes an instance's trace if it is due; returns the ids of
    /// subspaces that became **newly confirmed** by this call.
    pub fn maybe_analyze(
        &mut self,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        let arena = self.arena.clone();
        let state = self
            .instances
            .entry(instance)
            .or_insert_with(|| InstanceState::new(&self.config.find_space, arena));
        if !Self::analysis_due(&self.config, state, trace.len(), now) {
            return Vec::new();
        }
        let (start, candidates) = Self::analysis_sweep(
            state,
            instance,
            trace.events(),
            now,
            &self.similarity_cache,
            &self.analysis_latency,
        );
        let validated = Self::validate_candidates(
            self.config.min_subspace_screens,
            trace.events(),
            start,
            candidates,
        );
        let confirmed = match validated {
            Some(v) => self.apply_validated(instance, v, now),
            None => Vec::new(),
        };
        self.cache_entries.set(self.similarity_cache.len() as i64);
        confirmed
    }

    /// Batched ingestion: one call per round covering every instance's
    /// appended events, equivalent to calling
    /// [`maybe_analyze`](Self::maybe_analyze) for each `(instance,
    /// trace)` pair in slice order — the differential suite and the
    /// golden-trace second arm pin the equivalence bit-for-bit.
    ///
    /// Phase A runs the registry-free work for the whole batch —
    /// due-gating, the per-instance sweep, **and candidate validation**
    /// (`validate_candidates` reads only
    /// the trace window and config thresholds) — on the attached
    /// [`ComputePool`] when one is set (the campaign-wide budget), else
    /// across the legacy `analysis_workers` scoped threads. Per-instance
    /// state is disjoint and the sharded cache's decisions are
    /// order-independent, so any interleaving yields the same bytes.
    /// Phase B then applies validated splits — registry mutation plus
    /// window rebase only — **sequentially in batch order**, the same
    /// mutation sequence the one-at-a-time path produces.
    ///
    /// Instances must be distinct within one batch (the session feeds
    /// each instance once per round); a duplicate is skipped — debug
    /// builds assert, release builds count the skip in the
    /// `analyzer_duplicate_instance_total` counter.
    pub fn ingest_round(
        &mut self,
        batch: &[(InstanceId, &Trace)],
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        for (id, _) in batch {
            let arena = self.arena.clone();
            self.instances
                .entry(*id)
                .or_insert_with(|| InstanceState::new(&self.config.find_space, arena));
        }
        // Phase A: per-instance analysis + candidate validation, no
        // registry access. The pooled path pays a per-item event-clone
        // and a job submission to make work owned, so it only engages
        // when the pool can actually parallelize AND there is enough
        // window volume to amortize that overhead — dueness and window
        // sizes are deterministic, so the routing is too.
        let window_sum: usize = batch
            .iter()
            .map(|(id, trace)| {
                self.instances
                    .get(id)
                    .map_or(0, |s| trace.len().saturating_sub(s.start_index))
            })
            .sum();
        let pooled = self.compute.as_ref().is_some_and(|p| p.budget() > 1)
            && batch.len() > 1
            && window_sum >= self.config.pool_min_window;
        let results: Vec<Option<ValidatedSplit>> = if pooled {
            self.phase_a_pooled(batch, now)
        } else {
            self.phase_a_scoped(batch, now)
        };
        // Phase B: sequential application in batch order.
        let mut confirmed = Vec::new();
        for ((id, _), result) in batch.iter().zip(results) {
            if let Some(v) = result {
                confirmed.extend(self.apply_validated(*id, v, now));
            }
        }
        self.cache_entries.set(self.similarity_cache.len() as i64);
        confirmed
    }

    /// Phase A on borrowed state: inline when `analysis_workers` is 1,
    /// else the legacy per-call `std::thread::scope` spawn (kept as the
    /// differential baseline the equivalence suite races the pool
    /// against).
    fn phase_a_scoped(
        &mut self,
        batch: &[(InstanceId, &Trace)],
        now: VirtualTime,
    ) -> Vec<Option<ValidatedSplit>> {
        let mut results: Vec<Option<ValidatedSplit>> = Vec::new();
        results.resize_with(batch.len(), || None);
        let config = &self.config;
        let cache: &SimilarityCache = &self.similarity_cache;
        let latency = &self.analysis_latency;
        let duplicates = &self.duplicates_counter;
        let mut by_id: HashMap<InstanceId, &mut InstanceState> =
            self.instances.iter_mut().map(|(k, v)| (*k, v)).collect();
        let mut work: Vec<Option<(InstanceId, &Trace, &mut InstanceState)>> = batch
            .iter()
            .map(|(id, trace)| {
                let item = by_id.remove(id).map(|state| (*id, *trace, state));
                if item.is_none() {
                    duplicates.inc();
                }
                item
            })
            .collect();
        debug_assert!(
            work.iter().all(Option::is_some),
            "duplicate instance in ingest_round batch"
        );
        let workers = config.analysis_workers.clamp(1, work.len().max(1));
        if workers <= 1 {
            for (item, slot) in work.iter_mut().zip(results.iter_mut()) {
                if let Some((id, trace, state)) = item {
                    *slot = Self::analyze_one(config, state, *id, trace, now, cache, latency);
                }
            }
        } else {
            let chunk = work.len().div_ceil(workers);
            let spawn_counter = taopt_telemetry::global().counter("host_threads_spawned_total");
            std::thread::scope(|s| {
                for (wchunk, rchunk) in work.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
                    spawn_counter.inc();
                    s.spawn(move || {
                        for (item, slot) in wchunk.iter_mut().zip(rchunk) {
                            if let Some((id, trace, state)) = item {
                                *slot = Self::analyze_one(
                                    config, state, *id, trace, now, cache, latency,
                                );
                            }
                        }
                    });
                }
            });
        }
        results
    }

    /// Phase A on the campaign's persistent [`ComputePool`].
    ///
    /// The pool requires owned `'static` jobs (no borrowed scopes under
    /// `forbid(unsafe_code)`), so each *due* instance's state moves out
    /// of the registry map and its trace events are cloned into the job
    /// (an `Arc` bump per event — the sweep walks the whole window
    /// anyway). Skipped instances (not due, or duplicates) cost
    /// nothing. States return to the map before phase B runs.
    fn phase_a_pooled(
        &mut self,
        batch: &[(InstanceId, &Trace)],
        now: VirtualTime,
    ) -> Vec<Option<ValidatedSplit>> {
        let pool = Arc::clone(self.compute.as_ref().expect("pooled phase requires a pool"));
        struct IngestItem {
            instance: InstanceId,
            state: InstanceState,
            events: Vec<TraceEvent>,
            result: Option<ValidatedSplit>,
        }
        // Not-due states are re-inserted only after the whole batch is
        // scanned, so a duplicate id reliably finds its state missing
        // (same detection the scoped path gets from `by_id.remove`).
        let mut not_due: Vec<(InstanceId, InstanceState)> = Vec::new();
        let mut slots: Vec<Mutex<Option<IngestItem>>> = Vec::with_capacity(batch.len());
        for (id, trace) in batch {
            let item = match self.instances.remove(id) {
                None => {
                    self.duplicates_counter.inc();
                    debug_assert!(false, "duplicate instance in ingest_round batch");
                    None
                }
                Some(mut state) => {
                    if Self::analysis_due(&self.config, &mut state, trace.len(), now) {
                        Some(IngestItem {
                            instance: *id,
                            state,
                            events: trace.events().to_vec(),
                            result: None,
                        })
                    } else {
                        not_due.push((*id, state));
                        None
                    }
                }
            };
            slots.push(Mutex::new(item));
        }
        for (id, state) in not_due {
            self.instances.insert(id, state);
        }
        let slots = Arc::new(slots);
        let job_slots = Arc::clone(&slots);
        let cache = Arc::clone(&self.similarity_cache);
        let latency = self.analysis_latency.clone();
        let min_screens = self.config.min_subspace_screens;
        pool.run(batch.len(), move |k, _worker| {
            let mut guard = job_slots[k].lock();
            if let Some(item) = guard.as_mut() {
                let (start, candidates) = Self::analysis_sweep(
                    &mut item.state,
                    item.instance,
                    &item.events,
                    now,
                    &cache,
                    &latency,
                );
                item.result =
                    Self::validate_candidates(min_screens, &item.events, start, candidates);
            }
        });
        // `run` returns only after every task finished and dropped its
        // job clone: reclaim states and results in batch order.
        let mut results = Vec::with_capacity(batch.len());
        for slot in slots.iter() {
            match slot.lock().take() {
                Some(item) => {
                    self.instances.insert(item.instance, item.state);
                    results.push(item.result);
                }
                None => results.push(None),
            }
        }
        results
    }

    /// Turns the sweep's candidates into a validated subspace report:
    /// the first candidate that passes every structural check wins.
    ///
    /// Pure function of the trace window and config thresholds —
    /// **registry-read-free** (the proof obligation of DESIGN.md §16's
    /// boundary slimming): every input is frozen before phase A starts,
    /// so running this concurrently across instances cannot change any
    /// result. Only [`apply_validated`](Self::apply_validated) — the
    /// registry mutation and window rebase — must stay sequential.
    fn validate_candidates(
        min_subspace_screens: usize,
        events: &[TraceEvent],
        start: usize,
        candidates: Vec<SplitCandidate>,
    ) -> Option<ValidatedSplit> {
        for split in candidates {
            let abs = start + split.index;
            if abs == 0 {
                continue;
            }
            // The entrypoint is the widget fired on the screen *before*
            // the split that produced the first in-subspace screen.
            let Some(rid) = events[abs].action_widget_rid.clone() else {
                continue;
            };
            // Screens already visited repeatedly before the split are
            // *transit* infrastructure (hubs, tab bars); the subspace must
            // only contain territory that is new at the split.
            let mut prefix_counts: HashMap<AbstractScreenId, usize> = HashMap::new();
            for e in &events[..abs] {
                *prefix_counts.entry(e.abstract_id).or_insert(0) += 1;
            }
            let is_transit =
                |id: &AbstractScreenId| prefix_counts.get(id).copied().unwrap_or(0) >= 2;
            // Validity of the entry rule: the fired widget must sit on a
            // well-established *hub* screen (as in the paper's motivating
            // example, where "the button leading to SearchTabsActivity
            // will be disabled on the main screen") and land on territory
            // never seen before the split. Anchoring on hubs prevents two
            // failure modes: blocking a cluster's internal navigation for
            // other instances, and splitting one cluster into nested
            // subspaces with different owners that lock each other out.
            let host_screen = events[abs - 1].abstract_id;
            let target_screen = events[abs].abstract_id;
            if prefix_counts.get(&host_screen).copied().unwrap_or(0) < 3
                || prefix_counts.contains_key(&target_screen)
            {
                continue;
            }
            // The subspace is the cohesive region entered at the split:
            // the connected component of the entry target in the suffix's
            // transition structure, with transit screens removed.
            let mut adjacency: HashMap<AbstractScreenId, BTreeSet<AbstractScreenId>> =
                HashMap::new();
            for w in events[abs..].windows(2) {
                let (a, b) = (w[0].abstract_id, w[1].abstract_id);
                if a != b && !is_transit(&a) && !is_transit(&b) {
                    adjacency.entry(a).or_default().insert(b);
                    adjacency.entry(b).or_default().insert(a);
                }
            }
            let mut screens: BTreeSet<AbstractScreenId> = BTreeSet::new();
            let mut queue = vec![target_screen];
            while let Some(sc) = queue.pop() {
                if screens.insert(sc) {
                    if let Some(next) = adjacency.get(&sc) {
                        queue.extend(next.iter().copied());
                    }
                }
            }
            if screens.len() < min_subspace_screens || screens.contains(&host_screen) {
                continue;
            }
            return Some(ValidatedSplit {
                split_at: abs,
                entry: EntrypointRule::new(host_screen, &*rid),
                screens,
            });
        }
        None
    }

    /// The sequential half of an analysis: rebases the instance's
    /// window and registers the validated report. Must run in batch
    /// order — it mutates the shared subspace registry, and merge
    /// decisions depend on what earlier reports already registered.
    fn apply_validated(
        &mut self,
        instance: InstanceId,
        v: ValidatedSplit,
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        // Future analyses for this instance start inside the subspace:
        // the window rebases to `split_at`, so the engine restarts empty
        // and is re-fed from there on the next due analysis.
        // Infallible: every ingestion path inserts the state for
        // `instance` before calling here (and the pooled path returns
        // moved-out states to the map before phase B).
        let state = self.instances.get_mut(&instance).expect("state exists");
        state.start_index = v.split_at;
        state.engine.reset();
        self.register_report(instance, v.entry, v.screens, now)
            .into_iter()
            .collect()
    }

    /// Registers a subspace report directly (used by tests and by offline
    /// replay); returns the id if the report *newly confirmed* a subspace.
    pub fn register_report(
        &mut self,
        instance: InstanceId,
        entry: EntrypointRule,
        screens: BTreeSet<AbstractScreenId>,
        now: VirtualTime,
    ) -> Option<SubspaceId> {
        // Conservatively treat every report as a registry change: a merge
        // can add entrypoints/reporters, a miss adds a subspace. Spurious
        // bumps only cost a publisher one extra snapshot.
        self.version += 1;
        // Merge with an existing subspace if screen sets overlap enough
        // (containment: nested regions merge into their enclosing
        // subspace) or the entrypoint matches.
        let existing = self.subspaces.iter().position(|s| {
            s.entrypoints.contains(&entry)
                || containment(&s.screens, &screens) >= self.config.merge_jaccard
        });
        let idx = match existing {
            Some(i) => {
                // Keep the first report's screen set: extending on every
                // merge lets subspaces drift and chain-absorb neighbours.
                let s = &mut self.subspaces[i];
                if !s.entrypoints.contains(&entry) {
                    s.entrypoints.push(entry);
                }
                s.reporters.insert(instance);
                i
            }
            None => {
                let id = SubspaceId(self.subspaces.len() as u32);
                self.subspaces.push(SubspaceInfo {
                    id,
                    entrypoints: vec![entry],
                    screens,
                    reporters: [instance].into_iter().collect(),
                    confirmed: false,
                    first_reported: now,
                    owner: None,
                });
                self.subspaces.len() - 1
            }
        };
        let s = &mut self.subspaces[idx];
        if !s.confirmed && s.reporters.len() >= self.config.confirmations_required {
            s.confirmed = true;
            Some(s.id)
        } else {
            None
        }
    }

    /// Consumes the analyzer, yielding the subspace registry by move —
    /// the change-free way to extract the final report.
    pub fn into_subspaces(self) -> Vec<SubspaceInfo> {
        self.subspaces
    }

    /// Confirmed subspaces, in identification order.
    pub fn confirmed(&self) -> impl Iterator<Item = &SubspaceInfo> {
        self.subspaces.iter().filter(|s| s.confirmed)
    }

    /// Summary: subspace count by confirmation state.
    pub fn stats(&self) -> BTreeMap<&'static str, usize> {
        let confirmed = self.subspaces.iter().filter(|s| s.confirmed).count();
        [
            ("confirmed", confirmed),
            ("pending", self.subspaces.len() - confirmed),
        ]
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_ui_model::AbstractScreenId;

    fn screens(ids: &[u64]) -> BTreeSet<AbstractScreenId> {
        ids.iter().map(|i| AbstractScreenId(*i)).collect()
    }

    fn rule(host: u64, rid: &str) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(host), rid)
    }

    #[test]
    fn single_report_confirms_in_resource_mode() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert!(id.is_some());
        assert!(a.subspace(id.unwrap()).unwrap().confirmed);
    }

    #[test]
    fn duration_mode_needs_two_reporters() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::duration_mode());
        let first = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert_eq!(first, None, "one reporter is not enough in duration mode");
        // A second report from the *same* instance does not confirm.
        let again = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 13]),
            VirtualTime::from_secs(5),
        );
        assert_eq!(again, None);
        // A different instance confirms.
        let second = a.register_report(
            InstanceId(1),
            rule(1, "tab_shop"),
            screens(&[10, 12, 13]),
            VirtualTime::from_secs(9),
        );
        assert!(second.is_some());
        let info = a.subspace(second.unwrap()).unwrap();
        assert!(info.confirmed);
        assert_eq!(info.reporters.len(), 2);
        assert_eq!(a.subspaces().len(), 1, "reports merged into one subspace");
    }

    #[test]
    fn overlapping_screen_sets_merge_even_with_new_entrypoint() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11, 12, 13]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(1),
            rule(2, "deeplink_b"),
            screens(&[10, 11, 12, 14]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 1);
        assert_eq!(
            a.subspaces()[0].entrypoints.len(),
            2,
            "both entrypoints kept"
        );
    }

    #[test]
    fn disjoint_reports_create_distinct_subspaces() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(0),
            rule(1, "tab_b"),
            screens(&[20, 21]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 2);
        assert_eq!(a.stats()["confirmed"], 2);
    }

    #[test]
    fn maybe_analyze_respects_interval_and_growth() {
        use crate::findspace::tests::two_cluster_trace;
        let mut cfg = AnalyzerConfig::resource_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(20);
        cfg.analysis_interval = VirtualDuration::from_secs(30);
        cfg.min_new_events = 5;
        let mut a = OnlineTraceAnalyzer::new(cfg);
        let trace: Trace = two_cluster_trace(30, 50).into_iter().collect();
        let now = trace.end_time().unwrap();
        let confirmed = a.maybe_analyze(InstanceId(0), &trace, now);
        assert_eq!(
            confirmed.len(),
            1,
            "clean two-cluster trace confirms at once"
        );
        // Immediately re-analyzing is throttled.
        let again = a.maybe_analyze(InstanceId(0), &trace, now);
        assert!(again.is_empty());
    }

    /// Analyzer + trace ready for ingestion (the trace is long enough
    /// to be due immediately under `resource_mode` gating).
    fn due_setup() -> (OnlineTraceAnalyzer, Trace, VirtualTime) {
        use crate::findspace::tests::two_cluster_trace;
        let mut cfg = AnalyzerConfig::resource_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(20);
        // Engage the pool for any batch size; the default threshold
        // keeps short windows inline.
        cfg.pool_min_window = 0;
        let a = OnlineTraceAnalyzer::new(cfg);
        let trace: Trace = two_cluster_trace(30, 50).into_iter().collect();
        let now = trace.end_time().unwrap();
        (a, trace, now)
    }

    // The duplicate-instance batch contract has two enforcement arms:
    // debug builds assert (the caller is buggy), release builds skip the
    // duplicate and count it so the seam is observable in production.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate instance in ingest_round batch")]
    fn duplicate_instance_in_batch_asserts_in_debug() {
        let (mut a, trace, now) = due_setup();
        a.ingest_round(&[(InstanceId(0), &trace), (InstanceId(0), &trace)], now);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn duplicate_instance_in_batch_is_skipped_and_counted() {
        let before = taopt_telemetry::global()
            .counter("analyzer_duplicate_instance_total")
            .get();
        let (mut a, trace, now) = due_setup();
        let confirmed = a.ingest_round(&[(InstanceId(0), &trace), (InstanceId(0), &trace)], now);
        let after = taopt_telemetry::global()
            .counter("analyzer_duplicate_instance_total")
            .get();
        assert_eq!(after - before, 1, "exactly one skipped duplicate counted");
        // The duplicate is skipped, not analyzed twice: the batch is
        // equivalent to a single-entry one.
        let (mut b, trace_b, now_b) = due_setup();
        let single = b.ingest_round(&[(InstanceId(0), &trace_b)], now_b);
        assert_eq!(confirmed, single);
        assert_eq!(a.subspaces().len(), b.subspaces().len());
    }

    #[test]
    fn pooled_ingestion_matches_inline() {
        let (mut inline, trace, now) = due_setup();
        let (mut pooled, trace_p, _) = due_setup();
        pooled.set_compute(crate::campaign::pool::ComputePool::new(4));
        let batch_a = [(InstanceId(0), &trace), (InstanceId(1), &trace)];
        let batch_b = [(InstanceId(0), &trace_p), (InstanceId(1), &trace_p)];
        let a = inline.ingest_round(&batch_a, now);
        let b = pooled.ingest_round(&batch_b, now);
        assert_eq!(a, b);
        assert_eq!(inline.subspaces(), pooled.subspaces());
    }

    #[test]
    fn warm_seeding_does_not_double_count_cache_entries() {
        let warm = WarmStart {
            similarity: vec![((1, 2), true), ((1, 3), false)],
            ..WarmStart::default()
        };
        let mut a = OnlineTraceAnalyzer::with_warm_start(AnalyzerConfig::resource_mode(), &warm);
        assert_eq!(a.similarity_cache().len(), 2);
        // Re-seeding the same entries inserts nothing: the gauge set in
        // `with_warm_start` counted each decision exactly once.
        assert_eq!(a.similarity_cache().seed(warm.similarity.iter()), 0);
        assert_eq!(a.similarity_cache().len(), 2);
        // `forget_instance` on an unknown instance must not disturb the
        // seeded entries (both paths move the same gauge).
        a.forget_instance(InstanceId(99));
        assert_eq!(a.similarity_cache().len(), 2);
    }

    #[test]
    fn warm_start_round_trips_confirmed_subspaces_ownerless() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a
            .register_report(
                InstanceId(0),
                rule(1, "tab_a"),
                screens(&[10, 11]),
                VirtualTime::ZERO,
            )
            .unwrap();
        a.set_owner(id, InstanceId(0));
        let warm = a.warm_start(123);
        assert_eq!(warm.subspaces.len(), 1);
        assert_eq!(warm.coverage_baseline, 123);
        // Seeded subspaces arrive confirmed but ownerless and
        // reporter-free: the coordinator blocks them everywhere and the
        // orphan-repair pass re-dedicates them at round 1.
        let b = OnlineTraceAnalyzer::with_warm_start(AnalyzerConfig::duration_mode(), &warm);
        let seeded: Vec<_> = b.confirmed().collect();
        assert_eq!(seeded.len(), 1);
        assert_eq!(seeded[0].owner, None);
        assert!(seeded[0].reporters.is_empty());
        assert_eq!(seeded[0].entrypoints, vec![rule(1, "tab_a")]);
    }

    #[test]
    fn owner_assignment_is_recorded() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a
            .register_report(
                InstanceId(0),
                rule(1, "t"),
                screens(&[1, 2]),
                VirtualTime::ZERO,
            )
            .unwrap();
        a.set_owner(id, InstanceId(0));
        assert_eq!(a.subspace(id).unwrap().owner, Some(InstanceId(0)));
    }
}
