//! The on-the-fly trace analyzer (§5.2).
//!
//! One [`OnlineTraceAnalyzer`] serves a whole parallel run. It
//! periodically runs [`crate::findspace::find_space`] on each instance's
//! growing trace,
//! turns accepted splits into **subspace reports** (entry widget + screen
//! set), deduplicates reports across instances by screen-set overlap, and
//! applies the paper's confirmation policy:
//!
//! * resource-constrained mode, `l_min^long = 5 min`: a single report is
//!   "confidently accepted at once";
//! * duration-constrained mode, `l_min^short = 1 min`: accepted "only when
//!   reported by at least two testing instances".

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use taopt_toller::{EntrypointRule, InstanceId};
use taopt_ui_model::{AbstractScreenId, Trace, VirtualDuration, VirtualTime};

use crate::findspace::{
    FindSpaceConfig, FindSpaceEngine, ScreenArena, SimilarityCache, SplitCandidate,
};

/// Containment coefficient `|A∩B| / min(|A|, |B|)` (1.0 when either set
/// is contained in the other; 0 when disjoint or either is empty).
fn containment(a: &BTreeSet<AbstractScreenId>, b: &BTreeSet<AbstractScreenId>) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    a.intersection(b).count() as f64 / min as f64
}

/// Identifier of an identified UI subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubspaceId(pub u32);

impl fmt::Display for SubspaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// Analyzer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// `FindSpace` parameters (including `l_min`).
    pub find_space: FindSpaceConfig,
    /// Independent instance reports required before a subspace is accepted.
    pub confirmations_required: usize,
    /// Minimum gap between analyses of the same instance's trace.
    pub analysis_interval: VirtualDuration,
    /// Minimum trace growth (events) before re-analysis.
    pub min_new_events: usize,
    /// Screen-set containment coefficient (`|A∩B| / min(|A|,|B|)`) above
    /// which two reports describe the same subspace. Containment (rather
    /// than symmetric Jaccard) also merges *nested* reports — a deep
    /// region of an already-identified subspace must never become a
    /// separate subspace with a different owner, or its owner could be
    /// locked out of the enclosing entrypoint.
    pub merge_jaccard: f64,
    /// Minimum distinct screens a reported subspace must contain. Guards
    /// against fragmenting a functionality into micro-subspaces whose
    /// blocking rules would partition the space too finely.
    pub min_subspace_screens: usize,
    /// Host threads [`OnlineTraceAnalyzer::ingest_round`] may use for
    /// the per-instance analysis phase. Results are byte-identical at
    /// any value (the phase touches only per-instance state plus the
    /// sharded, order-independent similarity cache); `1` keeps the
    /// phase inline.
    pub analysis_workers: usize,
}

impl AnalyzerConfig {
    /// Parameters for the duration-constrained mode
    /// (`l_min^short = 1 min`, two confirmations).
    pub fn duration_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(1),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 2,
            analysis_interval: VirtualDuration::from_secs(20),
            min_new_events: 10,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
            analysis_workers: 1,
        }
    }

    /// Parameters for the resource-constrained mode
    /// (`l_min^long = 5 min`, accepted at once).
    pub fn resource_mode() -> Self {
        AnalyzerConfig {
            find_space: FindSpaceConfig {
                l_min: VirtualDuration::from_mins(5),
                ..FindSpaceConfig::default()
            },
            confirmations_required: 1,
            analysis_interval: VirtualDuration::from_secs(45),
            min_new_events: 20,
            merge_jaccard: 0.5,
            min_subspace_screens: 5,
            analysis_workers: 1,
        }
    }
}

/// One identified loosely coupled UI subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct SubspaceInfo {
    /// Registry id.
    pub id: SubspaceId,
    /// Entry widgets discovered for this subspace (blocking all of them
    /// seals the subspace).
    pub entrypoints: Vec<EntrypointRule>,
    /// Abstract screens belonging to the subspace.
    pub screens: BTreeSet<AbstractScreenId>,
    /// Instances that independently reported it.
    pub reporters: BTreeSet<InstanceId>,
    /// Whether the confirmation policy has accepted it.
    pub confirmed: bool,
    /// Time of first report.
    pub first_reported: VirtualTime,
    /// Instance the subspace is dedicated to (set by the coordinator).
    pub owner: Option<InstanceId>,
}

/// Per-instance analysis state: the due-gating cursor plus the
/// persistent incremental [`FindSpaceEngine`] mirroring the instance's
/// analysis window (`trace[start_index..]`).
#[derive(Debug)]
struct InstanceState {
    last_run: Option<VirtualTime>,
    last_len: usize,
    /// Absolute index into the trace where analysis restarts after an
    /// accepted split.
    start_index: usize,
    /// Incremental FindSpace state for the current window. Reset (and
    /// lazily re-fed) whenever the window rebases: an accepted split
    /// moves `start_index`, or the instance's trace is replaced.
    engine: FindSpaceEngine,
}

impl InstanceState {
    fn new(config: &FindSpaceConfig, arena: Arc<ScreenArena>) -> Self {
        InstanceState {
            last_run: None,
            last_len: 0,
            start_index: 0,
            engine: FindSpaceEngine::with_arena(config.clone(), arena),
        }
    }
}

/// The on-the-fly trace analyzer shared by all instances of a run.
#[derive(Debug)]
pub struct OnlineTraceAnalyzer {
    config: AnalyzerConfig,
    subspaces: Vec<SubspaceInfo>,
    instances: HashMap<InstanceId, InstanceState>,
    similarity_cache: SimilarityCache,
    /// Per-app screen interner shared by every instance's engine.
    arena: Arc<ScreenArena>,
    /// Bumped on every subspace-registry mutation; lets snapshot
    /// publishers detect changes in `O(1)` instead of comparing vectors.
    version: u64,
    /// Per-analysis latency of the incremental FindSpace run, in µs.
    analysis_latency: taopt_telemetry::Histogram,
    /// Live pair decisions held by the similarity cache.
    cache_entries: taopt_telemetry::Gauge,
}

impl OnlineTraceAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        OnlineTraceAnalyzer {
            config,
            subspaces: Vec::new(),
            instances: HashMap::new(),
            similarity_cache: SimilarityCache::new(),
            arena: Arc::new(ScreenArena::new()),
            version: 0,
            analysis_latency: taopt_telemetry::global().histogram("findspace_analysis_us"),
            cache_entries: taopt_telemetry::global().gauge("similarity_cache_entries"),
        }
    }

    /// The shared pairwise-similarity cache (sharded; see
    /// [`SimilarityCache`]). Exposed for occupancy tests and gauges.
    pub fn similarity_cache(&self) -> &SimilarityCache {
        &self.similarity_cache
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// All subspaces in the registry (confirmed or pending).
    pub fn subspaces(&self) -> &[SubspaceInfo] {
        &self.subspaces
    }

    /// Looks up a subspace.
    pub fn subspace(&self, id: SubspaceId) -> Option<&SubspaceInfo> {
        self.subspaces.get(id.0 as usize)
    }

    /// Records the dedication decided by the coordinator.
    pub fn set_owner(&mut self, id: SubspaceId, owner: InstanceId) {
        if let Some(s) = self.subspaces.get_mut(id.0 as usize) {
            s.owner = Some(owner);
            self.version += 1;
        }
    }

    /// Monotone counter bumped on every subspace-registry mutation.
    /// Publishers snapshot [`subspaces`](Self::subspaces) only when this
    /// changes, avoiding a full-vector comparison (or clone) per poll.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops a retired instance's analysis state (cursor + incremental
    /// engine) and evicts similarity-cache decisions that involve
    /// screens **only this instance's window** had seen — pairs no
    /// surviving engine can ask about again. Screens shared with any
    /// live window are retained (their decisions stay hot), as are
    /// screens from windows already rebased away, which the next
    /// eviction or a cold recompute covers; the
    /// `similarity_cache_entries` gauge tracks residual occupancy.
    ///
    /// Call when an instance retires or its device is replaced: a
    /// successor re-using the id must not inherit a stale window.
    pub fn forget_instance(&mut self, instance: InstanceId) {
        let Some(state) = self.instances.remove(&instance) else {
            return;
        };
        let mut dying: BTreeSet<u64> = state.engine.abstract_screen_ids().collect();
        for other in self.instances.values() {
            if dying.is_empty() {
                break;
            }
            for id in other.engine.abstract_screen_ids() {
                dying.remove(&id);
            }
        }
        self.similarity_cache.evict_screens(&dying);
        self.cache_entries.set(self.similarity_cache.len() as i64);
    }

    /// The per-instance half of an analysis: due-gating, engine
    /// catch-up, and the FindSpace sweep. Touches only `state` and the
    /// (thread-safe) `cache` — no registry access — so
    /// [`ingest_round`](Self::ingest_round) may run it for many
    /// instances concurrently with byte-identical results.
    fn analysis_pass(
        config: &AnalyzerConfig,
        state: &mut InstanceState,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
        cache: &SimilarityCache,
        latency: &taopt_telemetry::Histogram,
    ) -> Option<(usize, Vec<SplitCandidate>)> {
        if let Some(last) = state.last_run {
            if now.since(last) < config.analysis_interval {
                return None;
            }
        }
        if trace.len() < state.last_len + config.min_new_events {
            return None;
        }
        state.last_run = Some(now);
        state.last_len = trace.len();
        // Span opens after the due-gating above, so it times actual
        // FindSpace runs rather than every per-round poll.
        let _span = taopt_telemetry::global()
            .span("findspace")
            .instance(instance.0)
            .at(now)
            .enter();
        let start = state.start_index.min(trace.len());
        let window = &trace.events()[start..];
        // The engine mirrors `window` incrementally: only events appended
        // since the last analysis are fed. A shrunk window means the
        // trace was replaced under this id — start over.
        if window.len() < state.engine.len() {
            state.engine.reset();
        }
        let timer = std::time::Instant::now();
        state.engine.extend_from(window, cache);
        let candidates = state.engine.analyze(5);
        latency.record(timer.elapsed().as_micros() as u64);
        Some((start, candidates))
    }

    /// Analyzes an instance's trace if it is due; returns the ids of
    /// subspaces that became **newly confirmed** by this call.
    pub fn maybe_analyze(
        &mut self,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        let arena = self.arena.clone();
        let state = self
            .instances
            .entry(instance)
            .or_insert_with(|| InstanceState::new(&self.config.find_space, arena));
        let Some((start, candidates)) = Self::analysis_pass(
            &self.config,
            state,
            instance,
            trace,
            now,
            &self.similarity_cache,
            &self.analysis_latency,
        ) else {
            return Vec::new();
        };
        let confirmed = self.apply_candidates(instance, trace, start, candidates, now);
        self.cache_entries.set(self.similarity_cache.len() as i64);
        confirmed
    }

    /// Batched ingestion: one call per round covering every instance's
    /// appended events, equivalent to calling
    /// [`maybe_analyze`](Self::maybe_analyze) for each `(instance,
    /// trace)` pair in slice order — the differential suite and the
    /// golden-trace second arm pin the equivalence bit-for-bit.
    ///
    /// Phase A runs the per-instance [`analysis_pass`](Self::analysis_pass)
    /// for the whole batch (across `analysis_workers` host threads when
    /// configured — per-instance state is disjoint and the sharded
    /// cache's decisions are order-independent, so any interleaving
    /// yields the same bytes). Phase B then validates candidates and
    /// mutates the subspace registry **sequentially in batch order**,
    /// the same registry-mutation sequence the one-at-a-time path
    /// produces.
    ///
    /// Instances must be distinct within one batch (the session feeds
    /// each instance once per round); a duplicate is skipped.
    pub fn ingest_round(
        &mut self,
        batch: &[(InstanceId, &Trace)],
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        for (id, _) in batch {
            let arena = self.arena.clone();
            self.instances
                .entry(*id)
                .or_insert_with(|| InstanceState::new(&self.config.find_space, arena));
        }
        // Phase A: per-instance analysis, no registry access.
        let mut results: Vec<Option<(usize, Vec<SplitCandidate>)>> = Vec::new();
        results.resize_with(batch.len(), || None);
        {
            let config = &self.config;
            let cache = &self.similarity_cache;
            let latency = &self.analysis_latency;
            let mut by_id: HashMap<InstanceId, &mut InstanceState> =
                self.instances.iter_mut().map(|(k, v)| (*k, v)).collect();
            let mut work: Vec<Option<(InstanceId, &Trace, &mut InstanceState)>> = batch
                .iter()
                .map(|(id, trace)| by_id.remove(id).map(|state| (*id, *trace, state)))
                .collect();
            debug_assert!(
                work.iter().all(Option::is_some),
                "duplicate instance in ingest_round batch"
            );
            let workers = config.analysis_workers.clamp(1, work.len().max(1));
            if workers <= 1 {
                for (item, slot) in work.iter_mut().zip(results.iter_mut()) {
                    if let Some((id, trace, state)) = item {
                        *slot = Self::analysis_pass(config, state, *id, trace, now, cache, latency);
                    }
                }
            } else {
                let chunk = work.len().div_ceil(workers);
                std::thread::scope(|s| {
                    for (wchunk, rchunk) in work.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
                        s.spawn(move || {
                            for (item, slot) in wchunk.iter_mut().zip(rchunk) {
                                if let Some((id, trace, state)) = item {
                                    *slot = Self::analysis_pass(
                                        config, state, *id, trace, now, cache, latency,
                                    );
                                }
                            }
                        });
                    }
                });
            }
        }
        // Phase B: sequential candidate application in batch order.
        let mut confirmed = Vec::new();
        for ((id, trace), result) in batch.iter().zip(results) {
            if let Some((start, candidates)) = result {
                confirmed.extend(self.apply_candidates(*id, trace, start, candidates, now));
            }
        }
        self.cache_entries.set(self.similarity_cache.len() as i64);
        confirmed
    }

    /// The sequential half of an analysis: turns the sweep's candidates
    /// into a validated subspace report, rebases the instance's window
    /// on acceptance, and registers the report. Must run in instance
    /// order — it reads and mutates the shared subspace registry.
    fn apply_candidates(
        &mut self,
        instance: InstanceId,
        trace: &Trace,
        start: usize,
        candidates: Vec<SplitCandidate>,
        now: VirtualTime,
    ) -> Vec<SubspaceId> {
        let events = trace.events();
        for split in candidates {
            let abs = start + split.index;
            if abs == 0 {
                continue;
            }
            // The entrypoint is the widget fired on the screen *before*
            // the split that produced the first in-subspace screen.
            let Some(rid) = events[abs].action_widget_rid.clone() else {
                continue;
            };
            // Screens already visited repeatedly before the split are
            // *transit* infrastructure (hubs, tab bars); the subspace must
            // only contain territory that is new at the split.
            let mut prefix_counts: HashMap<AbstractScreenId, usize> = HashMap::new();
            for e in &events[..abs] {
                *prefix_counts.entry(e.abstract_id).or_insert(0) += 1;
            }
            let is_transit =
                |id: &AbstractScreenId| prefix_counts.get(id).copied().unwrap_or(0) >= 2;
            // Validity of the entry rule: the fired widget must sit on a
            // well-established *hub* screen (as in the paper's motivating
            // example, where "the button leading to SearchTabsActivity
            // will be disabled on the main screen") and land on territory
            // never seen before the split. Anchoring on hubs prevents two
            // failure modes: blocking a cluster's internal navigation for
            // other instances, and splitting one cluster into nested
            // subspaces with different owners that lock each other out.
            let host_screen = events[abs - 1].abstract_id;
            let target_screen = events[abs].abstract_id;
            if prefix_counts.get(&host_screen).copied().unwrap_or(0) < 3
                || prefix_counts.contains_key(&target_screen)
            {
                continue;
            }
            // The subspace is the cohesive region entered at the split:
            // the connected component of the entry target in the suffix's
            // transition structure, with transit screens removed.
            let mut adjacency: HashMap<AbstractScreenId, BTreeSet<AbstractScreenId>> =
                HashMap::new();
            for w in events[abs..].windows(2) {
                let (a, b) = (w[0].abstract_id, w[1].abstract_id);
                if a != b && !is_transit(&a) && !is_transit(&b) {
                    adjacency.entry(a).or_default().insert(b);
                    adjacency.entry(b).or_default().insert(a);
                }
            }
            let mut screens: BTreeSet<AbstractScreenId> = BTreeSet::new();
            let mut queue = vec![target_screen];
            while let Some(sc) = queue.pop() {
                if screens.insert(sc) {
                    if let Some(next) = adjacency.get(&sc) {
                        queue.extend(next.iter().copied());
                    }
                }
            }
            if screens.len() < self.config.min_subspace_screens || screens.contains(&host_screen) {
                continue;
            }
            let entry = EntrypointRule::new(host_screen, &*rid);
            // Future analyses for this instance start inside the subspace:
            // the window rebases to `abs`, so the engine restarts empty
            // and is re-fed from there on the next due analysis.
            // Infallible: this method is only reached from `maybe_analyze`,
            // which inserts the state for `instance` before calling here.
            let state = self.instances.get_mut(&instance).expect("state exists");
            state.start_index = abs;
            state.engine.reset();
            return self
                .register_report(instance, entry, screens, now)
                .into_iter()
                .collect();
        }
        Vec::new()
    }

    /// Registers a subspace report directly (used by tests and by offline
    /// replay); returns the id if the report *newly confirmed* a subspace.
    pub fn register_report(
        &mut self,
        instance: InstanceId,
        entry: EntrypointRule,
        screens: BTreeSet<AbstractScreenId>,
        now: VirtualTime,
    ) -> Option<SubspaceId> {
        // Conservatively treat every report as a registry change: a merge
        // can add entrypoints/reporters, a miss adds a subspace. Spurious
        // bumps only cost a publisher one extra snapshot.
        self.version += 1;
        // Merge with an existing subspace if screen sets overlap enough
        // (containment: nested regions merge into their enclosing
        // subspace) or the entrypoint matches.
        let existing = self.subspaces.iter().position(|s| {
            s.entrypoints.contains(&entry)
                || containment(&s.screens, &screens) >= self.config.merge_jaccard
        });
        let idx = match existing {
            Some(i) => {
                // Keep the first report's screen set: extending on every
                // merge lets subspaces drift and chain-absorb neighbours.
                let s = &mut self.subspaces[i];
                if !s.entrypoints.contains(&entry) {
                    s.entrypoints.push(entry);
                }
                s.reporters.insert(instance);
                i
            }
            None => {
                let id = SubspaceId(self.subspaces.len() as u32);
                self.subspaces.push(SubspaceInfo {
                    id,
                    entrypoints: vec![entry],
                    screens,
                    reporters: [instance].into_iter().collect(),
                    confirmed: false,
                    first_reported: now,
                    owner: None,
                });
                self.subspaces.len() - 1
            }
        };
        let s = &mut self.subspaces[idx];
        if !s.confirmed && s.reporters.len() >= self.config.confirmations_required {
            s.confirmed = true;
            Some(s.id)
        } else {
            None
        }
    }

    /// Consumes the analyzer, yielding the subspace registry by move —
    /// the change-free way to extract the final report.
    pub fn into_subspaces(self) -> Vec<SubspaceInfo> {
        self.subspaces
    }

    /// Confirmed subspaces, in identification order.
    pub fn confirmed(&self) -> impl Iterator<Item = &SubspaceInfo> {
        self.subspaces.iter().filter(|s| s.confirmed)
    }

    /// Summary: subspace count by confirmation state.
    pub fn stats(&self) -> BTreeMap<&'static str, usize> {
        let confirmed = self.subspaces.iter().filter(|s| s.confirmed).count();
        [
            ("confirmed", confirmed),
            ("pending", self.subspaces.len() - confirmed),
        ]
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_ui_model::AbstractScreenId;

    fn screens(ids: &[u64]) -> BTreeSet<AbstractScreenId> {
        ids.iter().map(|i| AbstractScreenId(*i)).collect()
    }

    fn rule(host: u64, rid: &str) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(host), rid)
    }

    #[test]
    fn single_report_confirms_in_resource_mode() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert!(id.is_some());
        assert!(a.subspace(id.unwrap()).unwrap().confirmed);
    }

    #[test]
    fn duration_mode_needs_two_reporters() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::duration_mode());
        let first = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 12]),
            VirtualTime::ZERO,
        );
        assert_eq!(first, None, "one reporter is not enough in duration mode");
        // A second report from the *same* instance does not confirm.
        let again = a.register_report(
            InstanceId(0),
            rule(1, "tab_shop"),
            screens(&[10, 11, 13]),
            VirtualTime::from_secs(5),
        );
        assert_eq!(again, None);
        // A different instance confirms.
        let second = a.register_report(
            InstanceId(1),
            rule(1, "tab_shop"),
            screens(&[10, 12, 13]),
            VirtualTime::from_secs(9),
        );
        assert!(second.is_some());
        let info = a.subspace(second.unwrap()).unwrap();
        assert!(info.confirmed);
        assert_eq!(info.reporters.len(), 2);
        assert_eq!(a.subspaces().len(), 1, "reports merged into one subspace");
    }

    #[test]
    fn overlapping_screen_sets_merge_even_with_new_entrypoint() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11, 12, 13]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(1),
            rule(2, "deeplink_b"),
            screens(&[10, 11, 12, 14]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 1);
        assert_eq!(
            a.subspaces()[0].entrypoints.len(),
            2,
            "both entrypoints kept"
        );
    }

    #[test]
    fn disjoint_reports_create_distinct_subspaces() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        a.register_report(
            InstanceId(0),
            rule(1, "tab_a"),
            screens(&[10, 11]),
            VirtualTime::ZERO,
        );
        a.register_report(
            InstanceId(0),
            rule(1, "tab_b"),
            screens(&[20, 21]),
            VirtualTime::ZERO,
        );
        assert_eq!(a.subspaces().len(), 2);
        assert_eq!(a.stats()["confirmed"], 2);
    }

    #[test]
    fn maybe_analyze_respects_interval_and_growth() {
        use crate::findspace::tests::two_cluster_trace;
        let mut cfg = AnalyzerConfig::resource_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(20);
        cfg.analysis_interval = VirtualDuration::from_secs(30);
        cfg.min_new_events = 5;
        let mut a = OnlineTraceAnalyzer::new(cfg);
        let trace: Trace = two_cluster_trace(30, 50).into_iter().collect();
        let now = trace.end_time().unwrap();
        let confirmed = a.maybe_analyze(InstanceId(0), &trace, now);
        assert_eq!(
            confirmed.len(),
            1,
            "clean two-cluster trace confirms at once"
        );
        // Immediately re-analyzing is throttled.
        let again = a.maybe_analyze(InstanceId(0), &trace, now);
        assert!(again.is_empty());
    }

    #[test]
    fn owner_assignment_is_recorded() {
        let mut a = OnlineTraceAnalyzer::new(AnalyzerConfig::resource_mode());
        let id = a
            .register_report(
                InstanceId(0),
                rule(1, "t"),
                screens(&[1, 2]),
                VirtualTime::ZERO,
            )
            .unwrap();
        a.set_owner(id, InstanceId(0));
        assert_eq!(a.subspace(id).unwrap().owner, Some(InstanceId(0)));
    }
}
