//! Runnable reproductions of the paper's evaluation (RQ1–RQ6).
//!
//! The heart of this module is [`evaluation_matrix`]: it runs every
//! (app × tool × {Baseline, TaOPT-duration, TaOPT-resource}) parallel
//! session — in parallel across apps — and reduces each session to a
//! compact [`RunSummary`]. All tables and figures then derive from the
//! matrix:
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig. 3 (RQ1, Jaccard over time) | [`fig3_rows`] |
//! | Table 1 (RQ1, subspace overlap) | [`table1_histogram`] |
//! | Table 2 (RQ2, activity partitioning) | [`table2_rows`] |
//! | Fig. 5 (RQ3, duration saved) | [`savings_rows`] |
//! | Fig. 6 (RQ4, machine time saved) | [`savings_rows`] |
//! | Table 4 (RQ5, coverage) | [`table4_rows`] |
//! | Table 5 (RQ5, crashes) | [`table5_rows`] |
//! | RQ5 behaviour preservation | [`behavior_rows`] |
//! | Table 6 (RQ6, UI overlap) | [`table6_rows`] |

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taopt_app_sim::{App, MethodId};
use taopt_tools::ToolKind;
use taopt_ui_model::{VirtualDuration, VirtualTime};

use crate::metrics::curves::{machine_time_to_reach, saved_fraction, time_to_reach, CurvePoint};
use crate::metrics::jaccard::{average_jaccard, jaccard};
use crate::metrics::overlap::{average_ui_occurrences, subspace_overlap_histogram};
use crate::partition::{partition_traces, PartitionConfig};
use crate::session::{ParallelSession, RunMode, SessionConfig, SessionResult};

/// Scale knobs shared by a whole evaluation: the paper's full setting or a
/// proportionally shrunk one for tests and Criterion benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// `d_max` concurrent instances.
    pub instances: usize,
    /// `l_p` per-run wall clock.
    pub duration: VirtualDuration,
    /// Lock-step round length.
    pub tick: VirtualDuration,
    /// Stall timeout.
    pub stall_timeout: VirtualDuration,
    /// `l_min^short` (duration mode).
    pub l_min_short: VirtualDuration,
    /// `l_min^long` (resource mode).
    pub l_min_long: VirtualDuration,
    /// Points on time-grid curves (Fig. 3).
    pub grid_points: usize,
}

impl ExperimentScale {
    /// The paper's full setting: 5 instances, 1 hour, 1/5-minute `l_min`.
    pub fn paper() -> Self {
        ExperimentScale {
            instances: 5,
            duration: VirtualDuration::from_hours(1),
            tick: VirtualDuration::from_secs(10),
            stall_timeout: VirtualDuration::from_mins(3),
            l_min_short: VirtualDuration::from_mins(1),
            l_min_long: VirtualDuration::from_mins(5),
            grid_points: 12,
        }
    }

    /// A shrunk setting (~10 virtual minutes) for tests and benches.
    pub fn quick() -> Self {
        ExperimentScale {
            instances: 3,
            duration: VirtualDuration::from_mins(10),
            tick: VirtualDuration::from_secs(10),
            stall_timeout: VirtualDuration::from_secs(45),
            l_min_short: VirtualDuration::from_secs(40),
            l_min_long: VirtualDuration::from_secs(100),
            grid_points: 8,
        }
    }

    /// Builds the session configuration for a tool/mode at this scale.
    pub fn session_config(&self, tool: ToolKind, mode: RunMode, seed: u64) -> SessionConfig {
        let mut cfg = SessionConfig::new(tool, mode);
        cfg.instances = self.instances;
        cfg.duration = self.duration;
        cfg.tick = self.tick;
        cfg.stall_timeout = self.stall_timeout;
        cfg.seed = seed;
        cfg.analyzer.find_space.l_min = match mode {
            RunMode::TaoptResource => self.l_min_long,
            _ => self.l_min_short,
        };
        cfg
    }
}

/// Everything the tables need from one session, with the heavy per-event
/// data already reduced.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// App name.
    pub app: String,
    /// Tool under test.
    pub tool: ToolKind,
    /// Run mode.
    pub mode: RunMode,
    /// Final cumulative union method coverage.
    pub union_coverage: usize,
    /// The union covered set (for behaviour-preservation Jaccard).
    pub union_covered: BTreeSet<MethodId>,
    /// Distinct crashes across instances.
    pub unique_crashes: usize,
    /// Machine time consumed.
    pub machine_time: VirtualDuration,
    /// Wall clock of the session.
    pub wall_clock: VirtualDuration,
    /// Union coverage curve over global time.
    pub union_curve: Vec<CurvePoint>,
    /// Table 6 metric.
    pub avg_ui_occurrences: f64,
    /// Fig. 3 metric: AJS of per-instance covered sets over time.
    pub ajs_curve: Vec<(u64, f64)>,
    /// Table 1 metric: offline-partition subspace → explorer histogram.
    pub overlap_histogram: BTreeMap<usize, usize>,
    /// Confirmed subspaces (TaOPT modes).
    pub confirmed_subspaces: usize,
}

/// Runs one session and reduces it.
pub fn run_and_summarize(
    app_name: &str,
    app: Arc<App>,
    tool: ToolKind,
    mode: RunMode,
    scale: &ExperimentScale,
    seed: u64,
) -> RunSummary {
    let cfg = scale.session_config(tool, mode, seed);
    let result = ParallelSession::run(app, &cfg);
    summarize(app_name, &result, scale)
}

/// Reduces a raw session result to a [`RunSummary`].
pub fn summarize(app_name: &str, result: &SessionResult, scale: &ExperimentScale) -> RunSummary {
    // AJS over a time grid.
    let total = scale.duration.as_secs().max(1);
    let grid: Vec<u64> = (1..=scale.grid_points)
        .map(|i| total * i as u64 / scale.grid_points as u64)
        .collect();
    let mut ajs_curve = Vec::with_capacity(grid.len());
    for t in &grid {
        let at = VirtualTime::from_secs(*t);
        let sets: Vec<BTreeSet<MethodId>> =
            result.instances.iter().map(|i| i.covered_at(at)).collect();
        ajs_curve.push((*t, average_jaccard(&sets)));
    }
    // Offline subspace partition + explorer histogram (Table 1).
    let traces = result.traces();
    let subspaces = partition_traces(&traces, &PartitionConfig::default());
    let overlap_histogram = subspace_overlap_histogram(&subspaces, &traces, 2);
    RunSummary {
        app: app_name.to_owned(),
        tool: result.tool,
        mode: result.mode,
        union_coverage: result.union_coverage(),
        union_covered: result.union_covered(),
        unique_crashes: result.unique_crashes().len(),
        machine_time: result.machine_time,
        wall_clock: result.wall_clock,
        union_curve: result.union_curve.clone(),
        avg_ui_occurrences: average_ui_occurrences(&traces),
        ajs_curve,
        overlap_histogram,
        confirmed_subspaces: result.subspaces.iter().filter(|s| s.confirmed).count(),
    }
}

/// The modes of the main evaluation matrix.
pub const EVAL_MODES: [RunMode; 3] = [
    RunMode::Baseline,
    RunMode::TaoptDuration,
    RunMode::TaoptResource,
];

/// Runs the full (apps × tools × modes) matrix, parallelized across apps.
pub fn evaluation_matrix(
    apps: &[(String, Arc<App>)],
    scale: &ExperimentScale,
    base_seed: u64,
) -> Vec<RunSummary> {
    let mut out: Vec<RunSummary> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = apps
            .iter()
            .map(|(name, app)| {
                let scale = *scale;
                scope.spawn(move || {
                    let mut rows = Vec::new();
                    for tool in ToolKind::ALL {
                        for mode in EVAL_MODES {
                            let seed = base_seed
                                ^ fnv(name)
                                ^ (tool as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95);
                            rows.push(run_and_summarize(
                                name,
                                Arc::clone(app),
                                tool,
                                mode,
                                &scale,
                                seed,
                            ));
                        }
                    }
                    rows
                })
            })
            .collect();
        for h in handles {
            // Propagating a worker panic is deliberate: a poisoned
            // evaluation row would silently skew the paper tables.
            out.extend(h.join().expect("evaluation worker panicked"));
        }
    });
    out
}

/// Looks up a matrix cell.
pub fn matrix_get<'a>(
    matrix: &'a [RunSummary],
    app: &str,
    tool: ToolKind,
    mode: RunMode,
) -> Option<&'a RunSummary> {
    matrix
        .iter()
        .find(|r| r.app == app && r.tool == tool && r.mode == mode)
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Per-artifact reductions.
// ---------------------------------------------------------------------

/// Fig. 3: per tool, the AJS-over-time curve averaged across apps
/// (baseline runs only).
pub fn fig3_rows(matrix: &[RunSummary]) -> Vec<(ToolKind, Vec<(u64, f64)>)> {
    ToolKind::ALL
        .into_iter()
        .map(|tool| {
            let runs: Vec<&RunSummary> = matrix
                .iter()
                .filter(|r| r.tool == tool && r.mode == RunMode::Baseline)
                .collect();
            let mut curve: Vec<(u64, f64)> = Vec::new();
            if let Some(first) = runs.first() {
                for (i, (t, _)) in first.ajs_curve.iter().enumerate() {
                    let mean = runs
                        .iter()
                        .filter_map(|r| r.ajs_curve.get(i).map(|(_, v)| *v))
                        .sum::<f64>()
                        / runs.len() as f64;
                    curve.push((*t, mean));
                }
            }
            (tool, curve)
        })
        .collect()
}

/// Table 1: the aggregate subspace-overlap histogram over all baseline
/// runs (how many of the `d_max` instances explored each subspace).
pub fn table1_histogram(matrix: &[RunSummary]) -> BTreeMap<usize, usize> {
    let mut agg: BTreeMap<usize, usize> = BTreeMap::new();
    for r in matrix.iter().filter(|r| r.mode == RunMode::Baseline) {
        for (k, v) in &r.overlap_histogram {
            *agg.entry(*k).or_insert(0) += v;
        }
    }
    agg
}

/// One row of Table 2 (WCTester under activity partitioning).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// App name.
    pub app: String,
    /// Union coverage of uncoordinated parallel WCTester.
    pub baseline: usize,
    /// Union coverage under activity partitioning.
    pub parallel: usize,
}

impl Table2Row {
    /// Relative improvement of activity partitioning over baseline.
    pub fn relative_improvement(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            (self.parallel as f64 - self.baseline as f64) / self.baseline as f64
        }
    }
}

/// Table 2: runs WCTester baseline vs. activity-partitioned per app.
pub fn table2_rows(
    apps: &[(String, Arc<App>)],
    scale: &ExperimentScale,
    base_seed: u64,
) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = apps
            .iter()
            .map(|(name, app)| {
                let scale = *scale;
                scope.spawn(move || {
                    let seed = base_seed ^ fnv(name);
                    let base = run_and_summarize(
                        name,
                        Arc::clone(app),
                        ToolKind::WcTester,
                        RunMode::Baseline,
                        &scale,
                        seed,
                    );
                    let part = run_and_summarize(
                        name,
                        Arc::clone(app),
                        ToolKind::WcTester,
                        RunMode::ActivityPartition,
                        &scale,
                        seed,
                    );
                    Table2Row {
                        app: name.clone(),
                        baseline: base.union_coverage,
                        parallel: part.union_coverage,
                    }
                })
            })
            .collect();
        for h in handles {
            // Same policy as `evaluate_matrix`: surface worker panics.
            rows.push(h.join().expect("table2 worker panicked"));
        }
    });
    rows.sort_by(|a, b| a.app.cmp(&b.app));
    rows
}

/// One row of Table 4 / Table 5 (per app, all tools and modes).
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// App name.
    pub app: String,
    /// `[tool][mode]` coverage (modes in [`EVAL_MODES`] order).
    pub coverage: [[usize; 3]; 3],
    /// `[tool][mode]` unique crashes.
    pub crashes: [[usize; 3]; 3],
}

/// Table 4 + Table 5 rows from the evaluation matrix.
pub fn table4_rows(matrix: &[RunSummary]) -> Vec<CoverageRow> {
    let mut apps: Vec<String> = matrix.iter().map(|r| r.app.clone()).collect();
    apps.sort();
    apps.dedup();
    apps.into_iter()
        .map(|app| {
            let mut row = CoverageRow {
                app: app.clone(),
                coverage: [[0; 3]; 3],
                crashes: [[0; 3]; 3],
            };
            for (ti, tool) in ToolKind::ALL.into_iter().enumerate() {
                for (mi, mode) in EVAL_MODES.into_iter().enumerate() {
                    if let Some(r) = matrix_get(matrix, &app, tool, mode) {
                        row.coverage[ti][mi] = r.union_coverage;
                        row.crashes[ti][mi] = r.unique_crashes;
                    }
                }
            }
            row
        })
        .collect()
}

/// Alias for the crash view of the same rows (Table 5).
pub fn table5_rows(matrix: &[RunSummary]) -> Vec<CoverageRow> {
    table4_rows(matrix)
}

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// App name.
    pub app: String,
    /// `[tool][mode]` average occurrences of distinct UIs.
    pub occurrences: [[f64; 3]; 3],
}

/// Table 6 rows from the evaluation matrix.
pub fn table6_rows(matrix: &[RunSummary]) -> Vec<OverlapRow> {
    let mut apps: Vec<String> = matrix.iter().map(|r| r.app.clone()).collect();
    apps.sort();
    apps.dedup();
    apps.into_iter()
        .map(|app| {
            let mut row = OverlapRow {
                app: app.clone(),
                occurrences: [[0.0; 3]; 3],
            };
            for (ti, tool) in ToolKind::ALL.into_iter().enumerate() {
                for (mi, mode) in EVAL_MODES.into_iter().enumerate() {
                    if let Some(r) = matrix_get(matrix, &app, tool, mode) {
                        row.occurrences[ti][mi] = r.avg_ui_occurrences;
                    }
                }
            }
            row
        })
        .collect()
}

/// One row of the RQ3/RQ4 savings analysis (Figs. 5 and 6).
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// App name.
    pub app: String,
    /// Tool.
    pub tool: ToolKind,
    /// Fraction of wall-clock duration saved by the duration mode.
    pub duration_saved_duration_mode: f64,
    /// Fraction of wall-clock duration saved by the resource mode.
    pub duration_saved_resource_mode: f64,
    /// Fraction of machine time saved by the duration mode.
    pub resource_saved_duration_mode: f64,
    /// Fraction of machine time saved by the resource mode.
    pub resource_saved_resource_mode: f64,
}

/// Figs. 5/6: for each app and tool, how much duration / machine time
/// TaOPT needs to reach the baseline's final coverage.
pub fn savings_rows(matrix: &[RunSummary], scale: &ExperimentScale) -> Vec<SavingsRow> {
    let mut rows = Vec::new();
    let mut apps: Vec<String> = matrix.iter().map(|r| r.app.clone()).collect();
    apps.sort();
    apps.dedup();
    for app in apps {
        for tool in ToolKind::ALL {
            let Some(base) = matrix_get(matrix, &app, tool, RunMode::Baseline) else {
                continue;
            };
            let target = base.union_coverage;
            let total_duration = scale.duration;
            let total_machine = base.machine_time;
            let mut row = SavingsRow {
                app: app.clone(),
                tool,
                duration_saved_duration_mode: 0.0,
                duration_saved_resource_mode: 0.0,
                resource_saved_duration_mode: 0.0,
                resource_saved_resource_mode: 0.0,
            };
            if let Some(dur) = matrix_get(matrix, &app, tool, RunMode::TaoptDuration) {
                let t = time_to_reach(&dur.union_curve, target).map(|t| t.since(VirtualTime::ZERO));
                row.duration_saved_duration_mode = saved_fraction(t, total_duration);
                let m = machine_time_to_reach(&dur.union_curve, target);
                row.resource_saved_duration_mode = saved_fraction(m, total_machine);
            }
            if let Some(res) = matrix_get(matrix, &app, tool, RunMode::TaoptResource) {
                let t = time_to_reach(&res.union_curve, target).map(|t| t.since(VirtualTime::ZERO));
                row.duration_saved_resource_mode = saved_fraction(t, total_duration);
                let m = machine_time_to_reach(&res.union_curve, target);
                row.resource_saved_resource_mode = saved_fraction(m, total_machine);
            }
            rows.push(row);
        }
    }
    rows
}

/// RQ5 behaviour preservation: Jaccard between the baseline's and TaOPT's
/// union covered sets, plus the fraction of baseline methods TaOPT missed.
#[derive(Debug, Clone)]
pub struct BehaviorRow {
    /// Tool.
    pub tool: ToolKind,
    /// Mode compared against baseline.
    pub mode: RunMode,
    /// Mean Jaccard(baseline, TaOPT) across apps.
    pub jaccard: f64,
    /// Mean fraction of baseline-covered methods missed by TaOPT.
    pub missed_fraction: f64,
}

/// Behaviour-preservation rows for both TaOPT modes.
pub fn behavior_rows(matrix: &[RunSummary]) -> Vec<BehaviorRow> {
    let mut rows = Vec::new();
    for tool in ToolKind::ALL {
        for mode in [RunMode::TaoptDuration, RunMode::TaoptResource] {
            let mut jacc = Vec::new();
            let mut missed = Vec::new();
            let mut apps: Vec<String> = matrix.iter().map(|r| r.app.clone()).collect();
            apps.sort();
            apps.dedup();
            for app in &apps {
                let (Some(base), Some(taopt)) = (
                    matrix_get(matrix, app, tool, RunMode::Baseline),
                    matrix_get(matrix, app, tool, mode),
                ) else {
                    continue;
                };
                jacc.push(jaccard(&base.union_covered, &taopt.union_covered));
                let missing = base.union_covered.difference(&taopt.union_covered).count();
                if !base.union_covered.is_empty() {
                    missed.push(missing as f64 / base.union_covered.len() as f64);
                }
            }
            if !jacc.is_empty() {
                rows.push(BehaviorRow {
                    tool,
                    mode,
                    jaccard: jacc.iter().sum::<f64>() / jacc.len() as f64,
                    missed_fraction: missed.iter().sum::<f64>() / missed.len().max(1) as f64,
                });
            }
        }
    }
    rows
}

/// Mean and (population) standard deviation of a sample.
fn mean_sd(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// One row of a multi-seed replication: the per-tool coverage gain of a
/// TaOPT mode over baseline, replicated across seeds.
#[derive(Debug, Clone)]
pub struct ReplicationRow {
    /// Tool.
    pub tool: ToolKind,
    /// Mode compared against baseline.
    pub mode: RunMode,
    /// Mean relative coverage gain across seeds.
    pub mean_gain: f64,
    /// Standard deviation of the gain across seeds.
    pub sd_gain: f64,
    /// Per-seed gains, in seed order.
    pub gains: Vec<f64>,
}

/// Replicates the headline coverage comparison across several seeds and
/// reports mean ± sd per (tool, mode) — the robustness check behind the
/// single-seed tables (each seed reruns the full matrix).
pub fn replicate_gains(
    apps: &[(String, Arc<App>)],
    scale: &ExperimentScale,
    seeds: &[u64],
) -> Vec<ReplicationRow> {
    let mut per_cell: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
    for seed in seeds {
        let matrix = evaluation_matrix(apps, scale, *seed);
        for (ti, tool) in ToolKind::ALL.into_iter().enumerate() {
            for (mi, mode) in [RunMode::TaoptDuration, RunMode::TaoptResource]
                .into_iter()
                .enumerate()
            {
                let mut base = 0usize;
                let mut taopt = 0usize;
                for (name, _) in apps {
                    base += matrix_get(&matrix, name, tool, RunMode::Baseline)
                        .map(|r| r.union_coverage)
                        .unwrap_or(0);
                    taopt += matrix_get(&matrix, name, tool, mode)
                        .map(|r| r.union_coverage)
                        .unwrap_or(0);
                }
                per_cell
                    .entry((ti, mi))
                    .or_default()
                    .push(taopt as f64 / base.max(1) as f64 - 1.0);
            }
        }
    }
    let mut rows = Vec::new();
    for ((ti, mi), gains) in per_cell {
        let (mean_gain, sd_gain) = mean_sd(&gains);
        rows.push(ReplicationRow {
            tool: ToolKind::ALL[ti],
            mode: [RunMode::TaoptDuration, RunMode::TaoptResource][mi],
            mean_gain,
            sd_gain,
            gains,
        });
    }
    rows
}

/// The RQ4 discussion's non-parallel control: one instance running for the
/// whole machine budget (`d_max × l_p`). Returns its final coverage.
pub fn non_parallel_control(
    app: Arc<App>,
    tool: ToolKind,
    scale: &ExperimentScale,
    seed: u64,
) -> usize {
    let mut cfg = scale.session_config(tool, RunMode::Baseline, seed);
    cfg.instances = 1;
    cfg.duration = scale.duration * scale.instances as u64;
    ParallelSession::run(app, &cfg).union_coverage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    fn tiny_apps(n: usize) -> Vec<(String, Arc<App>)> {
        (0..n)
            .map(|i| {
                let name = format!("app{i}");
                let app =
                    Arc::new(generate_app(&GeneratorConfig::small(&name, i as u64 + 1)).unwrap());
                (name, app)
            })
            .collect()
    }

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            instances: 2,
            duration: VirtualDuration::from_mins(4),
            tick: VirtualDuration::from_secs(10),
            stall_timeout: VirtualDuration::from_secs(40),
            l_min_short: VirtualDuration::from_secs(30),
            l_min_long: VirtualDuration::from_secs(60),
            grid_points: 4,
        }
    }

    #[test]
    fn matrix_covers_all_cells() {
        let apps = tiny_apps(2);
        let matrix = evaluation_matrix(&apps, &tiny_scale(), 7);
        assert_eq!(matrix.len(), 2 * 3 * 3);
        for (name, _) in &apps {
            for tool in ToolKind::ALL {
                for mode in EVAL_MODES {
                    assert!(matrix_get(&matrix, name, tool, mode).is_some());
                }
            }
        }
    }

    #[test]
    fn fig3_rows_have_full_grids() {
        let apps = tiny_apps(1);
        let scale = tiny_scale();
        let matrix = evaluation_matrix(&apps, &scale, 3);
        let rows = fig3_rows(&matrix);
        assert_eq!(rows.len(), 3);
        for (_, curve) in rows {
            assert_eq!(curve.len(), scale.grid_points);
            for (_, ajs) in curve {
                assert!((0.0..=1.0).contains(&ajs));
            }
        }
    }

    #[test]
    fn table_rows_are_complete() {
        let apps = tiny_apps(1);
        let scale = tiny_scale();
        let matrix = evaluation_matrix(&apps, &scale, 5);
        assert_eq!(table4_rows(&matrix).len(), 1);
        assert_eq!(table6_rows(&matrix).len(), 1);
        let savings = savings_rows(&matrix, &scale);
        assert_eq!(savings.len(), 3);
        for s in &savings {
            for v in [
                s.duration_saved_duration_mode,
                s.duration_saved_resource_mode,
                s.resource_saved_duration_mode,
                s.resource_saved_resource_mode,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        let behavior = behavior_rows(&matrix);
        assert_eq!(behavior.len(), 6);
        for b in behavior {
            assert!((0.0..=1.0).contains(&b.jaccard));
            assert!((0.0..=1.0).contains(&b.missed_fraction));
        }
    }

    #[test]
    fn table2_reports_baseline_and_partitioned() {
        let apps = tiny_apps(1);
        let rows = table2_rows(&apps, &tiny_scale(), 2);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].baseline > 0);
        assert!(rows[0].parallel > 0);
    }
}
