//! The sampling machinery of Theorem 1 (§4.2).
//!
//! Theorem 1: let `G1`, `G2` be n-complete graphs joined by one cross edge
//! `c` whose selection probability `1/(αn)` is far below the internal
//! `1/n`. After `N ≥ C·n²·log n` online samples, the empirical frequency
//! of every internal edge exceeds that of the cross edge with high
//! probability, so comparing frequencies separates the two subgraphs.
//!
//! This module builds the clique-pair instance, runs the random walk, and
//! checks the separation predicate — the experimental counterpart of the
//! proof's Chernoff argument, exercised by property tests.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Theorem-1 instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CliquePairConfig {
    /// Vertices per clique (`n ≥ 2`).
    pub n: usize,
    /// Cross-edge damping: the cross edge has probability `1/(α·n)`.
    pub alpha: f64,
}

impl Default for CliquePairConfig {
    fn default() -> Self {
        CliquePairConfig { n: 8, alpha: 16.0 }
    }
}

/// The sample budget `C·n²·ln n` prescribed by the theorem.
pub fn required_samples(n: usize, c: f64) -> u64 {
    let nf = n as f64;
    (c * nf * nf * nf.ln().max(1.0)).ceil() as u64
}

/// Outcome of one separation trial.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationOutcome {
    /// Minimum empirical frequency over internal edges of `G1` that were
    /// sampled at least once from a visited vertex.
    pub min_internal_freq: f64,
    /// Empirical frequency of the cross edge.
    pub cross_freq: f64,
    /// Whether the internal minimum strictly exceeds the cross frequency.
    pub separated: bool,
}

/// Runs one random-walk trial on the clique pair and evaluates the
/// separation predicate of Theorem 1.
///
/// Vertices `0..n` form `G1`, `n..2n` form `G2`; the cross edge links
/// vertex `0` to vertex `n`. At each step, from vertex `v` every internal
/// edge is selected with probability `1/n` and the cross edge (if at its
/// endpoint) with probability `1/(αn)`; leftover mass stays put (models
/// non-navigating interactions).
pub fn separation_trial(config: &CliquePairConfig, samples: u64, seed: u64) -> SeparationOutcome {
    let n = config.n.max(2);
    let alpha = config.alpha.max(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let p_internal = 1.0 / n as f64;
    let p_cross = 1.0 / (alpha * n as f64);

    let mut visits: Vec<u64> = vec![0; 2 * n];
    let mut edge_counts: HashMap<(usize, usize), u64> = HashMap::new();
    let mut cross_count = 0u64;
    let mut v = 0usize; // start in G1
    for _ in 0..samples {
        visits[v] += 1;
        let clique_base = if v < n { 0 } else { n };
        let r: f64 = rng.gen();
        // n-1 internal neighbours, each probability 1/n.
        let internal_mass = (n - 1) as f64 * p_internal;
        if r < internal_mass {
            let k = (r / p_internal) as usize;
            // Map k to the k-th neighbour ≠ v within the clique.
            let local = v - clique_base;
            let neighbour = if k < local { k } else { k + 1 };
            let to = clique_base + neighbour.min(n - 1);
            *edge_counts.entry((v, to)).or_insert(0) += 1;
            v = to;
        } else if (v == 0 || v == n) && r < internal_mass + p_cross {
            cross_count += 1;
            v = if v == 0 { n } else { 0 };
        }
        // Otherwise: stay (non-navigating event).
    }

    // Empirical frequency of edge e=(u,w): count(e) / visits(u). Every
    // internal edge of G1 whose source was visited counts — an edge never
    // selected has frequency 0, which is exactly how starved sampling
    // fails the theorem's predicate.
    let mut min_internal = f64::MAX;
    #[allow(clippy::needless_range_loop)]
    for u in 0..n {
        if visits[u] == 0 {
            continue;
        }
        for w in 0..n {
            if w == u {
                continue;
            }
            let c = edge_counts.get(&(u, w)).copied().unwrap_or(0);
            min_internal = min_internal.min(c as f64 / visits[u] as f64);
        }
    }
    if min_internal == f64::MAX {
        min_internal = 0.0;
    }
    let cross_freq = if visits[0] > 0 {
        cross_count as f64 / (visits[0] + visits[n]) as f64
    } else {
        0.0
    };
    SeparationOutcome {
        min_internal_freq: min_internal,
        cross_freq,
        separated: min_internal > cross_freq,
    }
}

/// Fraction of `trials` in which separation succeeded.
pub fn separation_success_rate(
    config: &CliquePairConfig,
    samples: u64,
    trials: u32,
    seed: u64,
) -> f64 {
    let ok = (0..trials)
        .filter(|i| separation_trial(config, samples, seed.wrapping_add(*i as u64)).separated)
        .count();
    ok as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_samples_grows_quadratically() {
        let a = required_samples(8, 1.0);
        let b = required_samples(16, 1.0);
        assert!(b > 3 * a, "n² log n growth: {a} vs {b}");
    }

    #[test]
    fn sufficient_samples_separate_with_high_probability() {
        let cfg = CliquePairConfig { n: 8, alpha: 16.0 };
        let n_samples = required_samples(cfg.n, 24.0);
        let rate = separation_success_rate(&cfg, n_samples, 20, 42);
        assert!(rate >= 0.9, "success rate {rate} too low at N = C·n²·log n");
    }

    #[test]
    fn starved_sampling_often_fails() {
        // With a handful of samples most internal edges are unseen, so the
        // minimum internal frequency is 0 and separation fails.
        let cfg = CliquePairConfig { n: 10, alpha: 16.0 };
        let rate = separation_success_rate(&cfg, 30, 20, 7);
        assert!(rate < 0.9, "rate {rate} suspiciously high for 30 samples");
    }

    #[test]
    fn frequencies_approach_theory() {
        let cfg = CliquePairConfig { n: 6, alpha: 12.0 };
        let out = separation_trial(&cfg, 2_000_000, 1);
        // Internal ≈ 1/n, cross ≈ 1/(αn).
        assert!((out.min_internal_freq - 1.0 / 6.0).abs() < 0.05, "{out:?}");
        assert!(out.cross_freq < 2.0 / (12.0 * 6.0), "{out:?}");
        assert!(out.separated);
    }
}
