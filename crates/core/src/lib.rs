//! # TaOPT — Tool-Agnostic Optimization of Parallelized Automated Mobile UI Testing
//!
//! This crate implements the paper's contribution (Ran et al., ASPLOS'25)
//! on top of the simulated substrates in the sibling crates:
//!
//! * [`findspace`] — **Algorithm 1 (`FindSpace`)**: online identification
//!   of loosely coupled UI subspaces from a single instance's UI transition
//!   trace, via screen abstraction, tree-similarity overlap scoring and a
//!   purity term;
//! * [`analyzer`] — the **on-the-fly trace analyzer**: runs `FindSpace`
//!   periodically per instance, deduplicates/merges subspace reports across
//!   instances, and applies the paper's confirmation policy
//!   (`l_min^long = 5 min` accepted at once; `l_min^short = 1 min` needs
//!   two independent reports);
//! * [`mod@conductance`] — the weighted-directed **conductance** of Eq. (2)
//!   and the MC-GPP partition objective of Eq. (3);
//! * [`partition`] — the conservative **offline subspace partitioner**
//!   used by the preliminary study (Table 1);
//! * [`theorem`] — the sampling machinery of **Theorem 1** (two n-cliques
//!   joined by a weak edge; `N ≥ C·n²·log n` samples separate them with
//!   high probability);
//! * [`coordinator`] — the **test coordinator**: duration-constrained and
//!   resource-constrained scheduling, subspace dedication, entrypoint
//!   broadcast and stall-based deallocation;
//! * [`session`] — end-to-end **parallel sessions** wiring devices, tools,
//!   the Toller shim and the coordinator together, including the two
//!   baselines (uncoordinated parallelism; ParaAim-style activity
//!   partitioning);
//! * [`metrics`] — Jaccard/AJS coverage-overlap, UI-screen overlap
//!   (Table 6) and coverage-curve utilities;
//! * [`experiments`] — runnable reproductions of every table and figure
//!   in the paper's evaluation;
//! * [`campaign`] — the **layered runtime**: the round-based
//!   [`SessionStep`] engine every driver shares, the device / bus /
//!   enforcement seam layers ([`StepLayers`]), and multi-app campaign
//!   scheduling over a shared farm (optionally fault-injected via a
//!   `FaultPlan`);
//! * [`chaos_session`] + [`resilience`] — chaos-mode single sessions
//!   ([`run_with_chaos`]) and the self-healing machinery (replacement
//!   queues, enforcement broadcast with retry).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use taopt::session::{ParallelSession, RunMode, SessionConfig};
//! use taopt_app_sim::{generate_app, GeneratorConfig};
//! use taopt_tools::ToolKind;
//! use taopt_ui_model::VirtualDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = Arc::new(generate_app(&GeneratorConfig::small("demo", 1))?);
//! let config = SessionConfig {
//!     instances: 3,
//!     duration: VirtualDuration::from_mins(5),
//!     ..SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration)
//! };
//! let result = ParallelSession::run(app, &config);
//! println!(
//!     "covered {} methods, found {} subspaces",
//!     result.union_coverage(),
//!     result.subspaces.len()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod campaign;
pub mod chaos_session;
pub mod conductance;
pub mod coordinator;
pub mod error;
pub mod experiments;
pub mod findspace;
pub mod metrics;
pub mod offline;
pub mod partition;
pub mod report;
pub mod resilience;
pub mod session;
pub mod streaming;
pub mod theorem;
pub mod warmstart;

pub use analyzer::{AnalyzerConfig, OnlineTraceAnalyzer, SubspaceId, SubspaceInfo};
pub use campaign::{
    run_campaign, run_campaign_sequence, AppReport, BusTransport, Campaign, CampaignApp,
    CampaignConfig, CampaignDigest, CampaignResult, CampaignSequence, ComputePool,
    DirectEnforcement, Enforcement, EvolutionAppReport, EvolutionReport, FaultyBus, InertBus,
    KillEvent, SessionStep, StepLayers, StepProgress, VersionOutcome,
};
pub use chaos_session::{run_with_chaos, ChaosReport};
pub use conductance::{conductance, partition_score};
pub use coordinator::{CoordinatorEvent, TestCoordinator};
pub use error::TaoptError;
pub use findspace::{find_space, FindSpaceConfig, SplitCandidate};
pub use resilience::{BroadcastEnforcement, EnforcementBroadcaster, ReplacementQueue, RetryPolicy};
pub use session::{ParallelSession, RunMode, SessionConfig, SessionResult};
pub use streaming::{StreamStats, StreamingAnalyzer};
pub use warmstart::{WarmReuse, WarmStart, WarmSubspace};
