//! Evaluation metrics: coverage overlap (Jaccard/AJS), UI-screen overlap,
//! and coverage-curve utilities.

pub mod curves;
pub mod jaccard;
pub mod overlap;

pub use curves::{coverage_at, coverage_auc, time_to_fraction, time_to_reach, CurvePoint};
pub use jaccard::{average_jaccard, jaccard};
pub use overlap::{average_ui_occurrences, subspace_overlap_histogram};
