//! Jaccard similarity and the Average Jaccard Similarity (AJS) of Eq. (1).

use std::collections::BTreeSet;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two sets.
///
/// Returns 1.0 for two empty sets (identical).
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// The paper's Average Jaccard Similarity (Eq. 1): the mean pairwise
/// Jaccard similarity over all `C(n,2)` pairs of instance coverage sets.
///
/// Returns 0.0 for fewer than two sets.
pub fn average_jaccard<T: Ord>(sets: &[BTreeSet<T>]) -> f64 {
    let n = sets.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += jaccard(&sets[i], &sets[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> BTreeSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[1, 2])), 1.0);
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[3, 4])), 0.0);
        assert!((jaccard(&set(&[1, 2, 3]), &set(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard::<u32>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&[1]), &set(&[])), 0.0);
    }

    #[test]
    fn ajs_averages_all_pairs() {
        let sets = vec![set(&[1, 2]), set(&[1, 2]), set(&[3, 4])];
        // Pairs: (0,1)=1.0, (0,2)=0.0, (1,2)=0.0 → mean 1/3.
        assert!((average_jaccard(&sets) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ajs_degenerate_inputs() {
        assert_eq!(average_jaccard::<u32>(&[]), 0.0);
        assert_eq!(average_jaccard(&[set(&[1])]), 0.0);
    }

    #[test]
    fn paper_example_91_percent_overlap() {
        // §3.2: two instances covering 100 methods each with Jaccard 0.84
        // share ~91 methods. Verify the arithmetic: |A∩B| = 0.84·|A∪B|,
        // |A|=|B|=100 ⇒ inter = 0.84·(200−inter) ⇒ inter ≈ 91.3.
        let inter: f64 = 0.84 * 200.0 / 1.84;
        assert!((inter - 91.3).abs() < 0.1);
    }
}
