//! Overlapping-exploration metrics (Table 1, Table 6).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use taopt_ui_model::{AbstractScreenId, Trace};

/// Table 6's metric: the mean, over distinct abstract UI screens, of the
/// total number of occurrences of that screen across all instances'
/// traces.
///
/// High values mean instances keep revisiting the same screens (redundant
/// exploration); TaOPT drives the value down by dedicating subspaces.
pub fn average_ui_occurrences(traces: &[&Trace]) -> f64 {
    let mut counts: HashMap<AbstractScreenId, usize> = HashMap::new();
    for t in traces {
        for e in t.events() {
            *counts.entry(e.abstract_id).or_insert(0) += 1;
        }
    }
    if counts.is_empty() {
        return 0.0;
    }
    counts.values().sum::<usize>() as f64 / counts.len() as f64
}

/// Table 1's metric: for each subspace (a set of abstract screens), count
/// how many instances explored it (visited at least `min_hits` of its
/// screens), and histogram the counts.
///
/// Returns a map `instances-that-explored → number of subspaces`.
pub fn subspace_overlap_histogram(
    subspaces: &[BTreeSet<AbstractScreenId>],
    traces: &[&Trace],
    min_hits: usize,
) -> BTreeMap<usize, usize> {
    let visited: Vec<BTreeSet<AbstractScreenId>> = traces
        .iter()
        .map(|t| t.events().iter().map(|e| e.abstract_id).collect())
        .collect();
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for sub in subspaces {
        let explorers = visited
            .iter()
            .filter(|v| v.intersection(sub).count() >= min_hits.min(sub.len()))
            .count();
        if explorers > 0 {
            *histogram.entry(explorers).or_insert(0) += 1;
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findspace::tests::ev;

    fn trace_of(labels: &[&str]) -> Trace {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| ev(i as u64, l))
            .collect()
    }

    #[test]
    fn occurrences_average_over_distinct_screens() {
        let t1 = trace_of(&["a", "a", "b"]);
        let t2 = trace_of(&["a", "c"]);
        // Occurrences: a=3, b=1, c=1 → mean 5/3.
        let avg = average_ui_occurrences(&[&t1, &t2]);
        assert!((avg - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_ui_occurrences(&[]), 0.0);
    }

    #[test]
    fn histogram_counts_explorers_per_subspace() {
        let t1 = trace_of(&["a", "b", "x"]);
        let t2 = trace_of(&["a", "b"]);
        let t3 = trace_of(&["x", "y"]);
        let sub_ab: BTreeSet<_> = trace_of(&["a", "b"])
            .events()
            .iter()
            .map(|e| e.abstract_id)
            .collect();
        let sub_xy: BTreeSet<_> = trace_of(&["x", "y"])
            .events()
            .iter()
            .map(|e| e.abstract_id)
            .collect();
        let h = subspace_overlap_histogram(&[sub_ab, sub_xy], &[&t1, &t2, &t3], 1);
        // a/b explored by t1+t2 (2 instances); x/y by t1 (x only) + t3.
        assert_eq!(h.get(&2), Some(&2));
    }

    #[test]
    fn min_hits_filters_grazing_visits() {
        let t1 = trace_of(&["a", "b", "c"]);
        let t2 = trace_of(&["a", "z"]);
        let sub_abc: BTreeSet<_> = trace_of(&["a", "b", "c"])
            .events()
            .iter()
            .map(|e| e.abstract_id)
            .collect();
        // With min_hits 2, t2 (only "a") does not count as exploring.
        let h = subspace_overlap_histogram(&[sub_abc], &[&t1, &t2], 2);
        assert_eq!(h.get(&1), Some(&1));
    }
}
